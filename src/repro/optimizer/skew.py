"""Run-time skew handling (Section V).

The analytical model assumes records spread uniformly over cube space.
When they do not, the optimizer's plan can overload one reducer.  The
counter-measures implemented here mirror the paper's:

* **Simulated dispatch** -- mappers sample their input, push the sample
  through the candidate scheme's key generation, and tally the load each
  reducer would receive; the coordinator picks the candidate with the
  smallest maximum (:func:`simulate_dispatch`, :func:`pick_by_sampling`).
* **Minimum-blocks heuristic** -- refuse plans expected to give a reducer
  fewer than X blocks, bounding the damage a single huge block can do
  (enforced by the optimizer through ``min_blocks_per_reducer``).
* **Key reuse** -- a :class:`KeyCache` remembers keys that balanced well
  before; any cached key that is feasible for a new query (the covering
  relation) can be reused without re-optimization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.cube.records import Record
from repro.mapreduce.engine import default_partitioner
from repro.query.workflow import Workflow
from repro.distribution.clustering import BlockScheme
from repro.distribution.derive import minimal_feasible_key
from repro.distribution.keys import DistributionKey


def sample_records(
    records: Sequence[Record], size: int, seed: int = 13
) -> list[Record]:
    """A uniform sample without replacement (the mappers' sampling step)."""
    if size >= len(records):
        return list(records)
    rng = random.Random(seed)
    return rng.sample(list(records), size)


def sample_file_records(file, size: int, seed: int = 13) -> list[Record]:
    """Uniform sample from a DistributedFile without copying the file.

    Index-based: draws ``size`` positions, then reads only the blocks
    containing them -- O(size) record touches instead of materializing
    the whole dataset into a Python list first.
    """
    total = file.num_records
    if size >= total:
        return list(file.records())
    rng = random.Random(seed)
    wanted = sorted(rng.sample(range(total), size))
    sample: list[Record] = []
    offset = 0
    cursor = 0
    for block in file.blocks:
        end = offset + len(block.records)
        while cursor < len(wanted) and wanted[cursor] < end:
            sample.append(block.records[wanted[cursor] - offset])
            cursor += 1
        if cursor >= len(wanted):
            break
        offset = end
    return sample


def simulate_dispatch(
    scheme: BlockScheme,
    sample: Sequence[Record],
    num_reducers: int,
    partitioner: Callable = default_partitioner,
    key_prefix: tuple = (),
    columnar: bool = True,
) -> list[int]:
    """Records each reducer would receive if *sample* were dispatched.

    *key_prefix* must match what the executor prepends to block keys
    (the workflow-component index) -- reducer assignment is by hash, so
    predicting loads requires hashing the exact keys execution will use.

    With *columnar* (the default) the sample is routed as one batched
    call through the scheme's vectorized router; samples that cannot be
    represented as an integer batch fall back to the per-record mapper.
    The tallies are identical either way.
    """
    loads = [0] * num_reducers
    if columnar:
        from repro.cube.batches import RecordBatch

        batch = RecordBatch.from_records(scheme.key.schema, sample)
        if batch is not None and batch.routable():
            for block_key, rows in scheme.make_batch_router()(batch):
                loads[partitioner(key_prefix + block_key, num_reducers)] += (
                    len(rows)
                )
            return loads
    mapper = scheme.make_mapper()
    for record in sample:
        for block_key in mapper(record):
            loads[partitioner(key_prefix + block_key, num_reducers)] += 1
    return loads


def scale_loads(
    loads: Sequence[int], sample_size: int, population: int
) -> list[float]:
    """Extrapolate sampled loads to the full dataset."""
    if sample_size <= 0:
        return [0.0] * len(loads)
    factor = population / sample_size
    return [load * factor for load in loads]


def load_imbalance(loads: Sequence[float]) -> float:
    """Max load over the ideal (all-reducer mean) share; 1.0 is balanced.

    Idle reducers count toward the mean: a plan that funnels everything
    into one reducer is exactly what this ratio must expose, whether the
    cause is skewed data or a block count too small for the cluster.
    """
    if len(loads) <= 1 or not any(loads):
        return 1.0
    return max(loads) / (sum(loads) / len(loads))


def detect_skew(loads: Sequence[float], threshold: float = 2.0) -> bool:
    """Flag imbalance: :func:`load_imbalance` above *threshold*."""
    return load_imbalance(loads) > threshold


def sampled_dispatch_table(
    schemes: Sequence[BlockScheme],
    sample: Sequence[Record],
    num_reducers: int,
    partitioner: Callable = default_partitioner,
    key_prefix: tuple = (),
    columnar: bool = True,
) -> list[tuple[BlockScheme, list[int]]]:
    """Simulated-dispatch loads for *every* candidate scheme.

    The full table behind :func:`pick_by_sampling` -- one ``(scheme,
    per-reducer loads)`` row per candidate, in input order.  The
    optimizer records it into the plan's decision trail so ``repro
    explain`` can show why each candidate lost, not just who won.
    """
    return [
        (
            scheme,
            simulate_dispatch(
                scheme, sample, num_reducers, partitioner, key_prefix,
                columnar=columnar,
            ),
        )
        for scheme in schemes
    ]


def pick_by_sampling(
    schemes: Sequence[BlockScheme],
    sample: Sequence[Record],
    num_reducers: int,
    partitioner: Callable = default_partitioner,
    key_prefix: tuple = (),
    columnar: bool = True,
) -> tuple[BlockScheme, list[int]]:
    """The candidate with the smallest simulated maximum load."""
    if not schemes:
        raise ValueError("no candidate schemes to sample")
    table = sampled_dispatch_table(
        schemes, sample, num_reducers, partitioner, key_prefix,
        columnar=columnar,
    )
    best_scheme, best_loads, best_max = None, None, None
    for scheme, loads in table:
        worst = max(loads, default=0)
        if best_max is None or worst < best_max:
            best_scheme, best_loads, best_max = scheme, loads, worst
    return best_scheme, best_loads


def diversify_schemes(schemes: Iterable[BlockScheme]) -> list[BlockScheme]:
    """Widen a candidate list with significantly different cluster factors.

    The paper's sampling-based selection works best when the candidates
    "have significantly different values of the clustering factor"; this
    adds a geometric ladder of cf variants around each optimizer
    suggestion (deduplicated).
    """
    out: list[BlockScheme] = []
    seen: set = set()
    for scheme in schemes:
        variants = [scheme]
        for attr, cf in scheme.clustering_factors.items():
            ladder = {max(1, cf // 4), max(1, cf // 2), cf * 2, cf * 4}
            for variant_cf in ladder:
                if variant_cf != cf:
                    factors = dict(scheme.clustering_factors)
                    factors[attr] = variant_cf
                    variants.append(BlockScheme(scheme.key, factors))
        for variant in variants:
            identity = (
                variant.key,
                tuple(sorted(variant.clustering_factors.items())),
            )
            if identity not in seen:
                seen.add(identity)
                out.append(variant)
    return out


@dataclass
class KeyCache:
    """Remembers distribution keys that balanced well before.

    A key's quality is a property of the *data distribution*, not of any
    particular query: as long as a cached key is feasible for the new
    query (it covers the new minimal key), it can be reused directly.
    """

    keys: list[DistributionKey] = field(default_factory=list)

    def store(self, key: DistributionKey) -> None:
        if key not in self.keys:
            self.keys.append(key)

    def find(self, workflow: Workflow) -> DistributionKey | None:
        """The first cached key feasible for *workflow*, if any.

        Keys learned on other schemas are skipped (a cache may serve a
        whole session spanning several datasets).
        """
        minimal = minimal_feasible_key(workflow)
        for key in self.keys:
            if key.schema == minimal.schema and key.covers(minimal):
                return key
        return None

    def __len__(self) -> int:
        return len(self.keys)
