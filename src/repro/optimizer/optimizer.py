"""The distribution-scheme optimizer (Section IV).

Given a workflow, the optimizer derives the minimal feasible key,
enumerates the candidate keys (one annotated attribute kept at a time,
plus the non-overlapping fallback), picks each candidate's clustering
factor from the analytical model, and returns the plan minimizing the
predicted heaviest reducer load.  Optional run-time refinements:

* ``min_blocks_per_reducer`` -- the skew heuristic capping ``cf`` so that
  every reducer is expected to receive at least X blocks;
* sampling -- when a record sample is supplied and sampling is enabled,
  the diversified candidates are judged by simulated dispatch instead of
  the model (Section V);
* a :class:`~repro.optimizer.skew.KeyCache` -- previously good keys are
  reused when still feasible.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cube.records import Record
from repro.obs.tracer import NULL_TRACER
from repro.query.workflow import Workflow, connected_components
from repro.distribution.clustering import BlockScheme
from repro.distribution.derive import (
    candidate_keys_annotated,
    minimal_feasible_key,
)
from repro.distribution.keys import DistributionKey
from repro.optimizer.costmodel import (
    expected_max_load,
    expected_max_load_overlap,
    optimal_clustering_factor,
)
from repro.optimizer.decisions import (
    CandidateDecision,
    ComponentDecision,
    QueryDecision,
    SamplingDecision,
)
from repro.optimizer.skew import (
    KeyCache,
    diversify_schemes,
    sample_records,
    sampled_dispatch_table,
    scale_loads,
)


logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class OptimizerConfig:
    """Tunables of the plan search.

    *objective* selects what the search minimizes: ``"response_time"``
    (the paper's target -- the heaviest reducer's load, Formulae 2/4) or
    ``"total_work"`` (bytes shipped and processed across the cluster --
    batch-oriented; picks the largest clustering factor that still gives
    every reducer at least ``max(1, min_blocks_per_reducer)`` blocks).
    """

    min_blocks_per_reducer: int = 0
    use_sampling: bool = False
    sample_size: int = 2000
    sample_seed: int = 13
    objective: str = "response_time"
    #: Batched (vectorized) routing for sampling-based plan selection:
    #: ``None``/``True`` push the sample through the columnar block
    #: router (falling back per sample when it is not integer-batchable),
    #: ``False`` forces the per-record mapper.  Load tallies -- and thus
    #: the chosen plan -- are identical in every mode.
    columnar: Optional[bool] = None

    def __post_init__(self):
        if self.objective not in ("response_time", "total_work"):
            raise ValueError(
                f"unknown objective {self.objective!r}; choose "
                "'response_time' or 'total_work'"
            )
        if self.objective == "total_work" and self.use_sampling:
            # Sampled dispatch ranks candidates by max reducer load --
            # the response-time criterion -- which would silently
            # override the total-work objective.
            raise ValueError(
                "objective='total_work' cannot be combined with "
                "use_sampling (sampling ranks by max load)"
            )


@dataclass
class Plan:
    """A chosen distribution scheme plus the optimizer's expectations."""

    scheme: BlockScheme
    num_reducers: int
    predicted_max_load: float
    strategy: str
    candidates_considered: int = 0
    sampled_loads: Optional[list[float]] = None
    alternatives: list[tuple[BlockScheme, float]] = field(default_factory=list)
    #: The structured decision trail behind this plan (every candidate
    #: considered, why each lost, the sampling tallies) -- what ``repro
    #: explain`` renders.  Always recorded by :class:`Optimizer`.
    decision: Optional[ComponentDecision] = None

    @property
    def key(self) -> DistributionKey:
        return self.scheme.key

    def describe(self) -> str:
        factors = self.scheme.clustering_factors
        cf_text = (
            ", ".join(f"{attr}: cf={cf}" for attr, cf in sorted(factors.items()))
            or "non-overlapping"
        )
        return (
            f"key {self.scheme.key!r} ({cf_text}), "
            f"{self.scheme.num_blocks()} blocks over "
            f"{self.num_reducers} reducers, predicted max load "
            f"{self.predicted_max_load:.0f} records [{self.strategy}]"
        )


@dataclass
class QueryPlan:
    """One plan per weakly connected component of the query workflow.

    Independent measure families do not constrain each other's keys, so
    the evaluator redistributes each component under its own scheme
    within a single job; records are shipped once per component.
    """

    subplans: list[tuple[Workflow, Plan]]

    def __post_init__(self):
        if not self.subplans:
            raise ValueError("a query plan needs at least one component")

    @property
    def num_reducers(self) -> int:
        return self.subplans[0][1].num_reducers

    @property
    def predicted_max_load(self) -> float:
        """Loads add up: every reducer serves blocks of every component."""
        return sum(plan.predicted_max_load for _wf, plan in self.subplans)

    @property
    def decision(self) -> QueryDecision:
        """The per-component decision trails, as one structured record."""
        return QueryDecision(
            [
                plan.decision
                for _wf, plan in self.subplans
                if plan.decision is not None
            ]
        )

    @property
    def single(self) -> Plan:
        """The sole component's plan; errors for multi-component queries."""
        if len(self.subplans) != 1:
            raise ValueError(
                f"query has {len(self.subplans)} components; inspect "
                ".subplans instead"
            )
        return self.subplans[0][1]

    @property
    def scheme(self):
        return self.single.scheme

    @property
    def key(self):
        return self.single.scheme.key

    def describe(self) -> str:
        if len(self.subplans) == 1:
            return self.single.describe()
        lines = [f"{len(self.subplans)} independent components:"]
        for component, plan in self.subplans:
            lines.append(f"  {list(component.names)}: {plan.describe()}")
        return "\n".join(lines)


class Optimizer:
    """Searches for the scheme minimizing the heaviest reducer load.

    *tracer* (a :class:`repro.obs.Tracer`, disabled by default) records
    one ``plan-component`` span per search, carrying every candidate's
    predicted load and the chosen scheme.
    """

    def __init__(self, config: OptimizerConfig | None = None, tracer=None):
        self.config = config or OptimizerConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- per-candidate costing ---------------------------------------------------

    def _max_cf(self, n_regions: int, num_reducers: int) -> Optional[int]:
        """Cap on cf from the minimum-blocks-per-reducer heuristic."""
        floor_blocks = self.config.min_blocks_per_reducer
        if floor_blocks <= 0:
            return None
        return max(1, n_regions // (num_reducers * floor_blocks))

    def cost_candidate(
        self,
        key: DistributionKey,
        n_records: int,
        num_reducers: int,
    ) -> tuple[BlockScheme, float]:
        """Best scheme for one candidate key and its predicted max load."""
        n_regions = key.granularity.region_count()
        annotated = key.annotated_attributes()
        if not annotated:
            if self.config.objective == "total_work":
                load = float(n_records)  # no duplication at all
            else:
                load = expected_max_load(n_records, n_regions, num_reducers)
            return BlockScheme(key), load
        if len(annotated) != 1:
            raise ValueError(
                "candidate keys must have at most one annotated attribute; "
                f"got {annotated}"
            )
        attr = annotated[0]
        span = key.component(attr).span
        if self.config.objective == "total_work":
            # Duplication is (span + cf) / cf: monotone decreasing in cf,
            # so take the largest cf keeping every reducer supplied.
            floor_blocks = max(1, self.config.min_blocks_per_reducer)
            cf = max(1, n_regions // (num_reducers * floor_blocks))
            load = n_records * (span + cf) / cf  # total shipped records
            return BlockScheme(key, {attr: cf}), load
        cf = optimal_clustering_factor(
            n_records,
            n_regions,
            num_reducers,
            span,
            max_cf=self._max_cf(n_regions, num_reducers),
        )
        load = expected_max_load_overlap(
            n_records, n_regions, num_reducers, span, cf
        )
        return BlockScheme(key, {attr: cf}), load

    # -- whole-plan search ------------------------------------------------------------

    def plan(
        self,
        workflow: Workflow,
        n_records: int,
        num_reducers: int,
        records: Optional[Sequence[Record]] = None,
        key_cache: Optional[KeyCache] = None,
        component_index: int = 0,
    ) -> Plan:
        """Choose the distribution scheme for *workflow*.

        *records* is only consulted when sampling is enabled; *key_cache*
        short-circuits the search when it holds a feasible key.
        *component_index* is the position of this workflow among the
        query's connected components -- the executor prefixes block keys
        with it, and simulated dispatch must hash the same keys.
        """
        if num_reducers <= 0:
            raise ValueError("num_reducers must be positive")

        with self.tracer.span(
            "plan-component",
            component=component_index,
            n_records=n_records,
            num_reducers=num_reducers,
        ) as span:
            plan = self._plan_traced(
                workflow, n_records, num_reducers, records, key_cache,
                component_index, span,
            )
        return plan

    def _candidate_decision(
        self,
        scheme: BlockScheme,
        load: float,
        provenance: str,
        floor_blocks: int,
    ) -> CandidateDecision:
        """One candidate's scorecard (chosen/rejection filled in later)."""
        key = scheme.key
        annotated = key.annotated_attributes()
        span = key.component(annotated[0]).span if annotated else 0
        blocks = scheme.num_blocks()
        return CandidateDecision(
            key=repr(key),
            provenance=provenance,
            n_regions=key.granularity.region_count(),
            span=span,
            clustering_factors=dict(scheme.clustering_factors),
            num_blocks=blocks,
            predicted_max_load=load,
            meets_min_blocks=(
                blocks >= floor_blocks if floor_blocks > 0 else None
            ),
        )

    def _score_scheme(
        self, scheme: BlockScheme, n_records: int, num_reducers: int
    ) -> float:
        """Formula 2/4 prediction for a scheme whose cf is already fixed."""
        key = scheme.key
        n_regions = key.granularity.region_count()
        annotated = key.annotated_attributes()
        if not annotated:
            return expected_max_load(n_records, n_regions, num_reducers)
        attr = annotated[0]
        return expected_max_load_overlap(
            n_records,
            n_regions,
            num_reducers,
            key.component(attr).span,
            scheme.clustering_factors.get(attr, 1),
        )

    def _plan_traced(
        self,
        workflow: Workflow,
        n_records: int,
        num_reducers: int,
        records: Optional[Sequence[Record]],
        key_cache: Optional[KeyCache],
        component_index: int,
        span,
    ) -> Plan:
        """The search body of :meth:`plan`, annotating *span* as it goes."""
        decision = ComponentDecision(
            component=component_index,
            measures=list(workflow.names),
            minimal_key=repr(minimal_feasible_key(workflow)),
            strategy="model",
            n_records=n_records,
            num_reducers=num_reducers,
            min_blocks_per_reducer=self.config.min_blocks_per_reducer,
        )
        floor_blocks = self.config.min_blocks_per_reducer * num_reducers

        cached = key_cache.find(workflow) if key_cache else None
        if cached is not None:
            scheme, load = self.cost_candidate(
                cached, n_records, num_reducers
            )
            decision.strategy = "cache"
            decision.notes.append(
                f"key cache hit: {cached!r} balanced a previous query and "
                "is feasible here, so the search was skipped"
            )
            candidate = self._candidate_decision(
                scheme, load, "reused from the key cache", floor_blocks
            )
            candidate.chosen = True
            decision.candidates.append(candidate)
            decision.chosen_key = repr(scheme.key)
            decision.chosen_clustering_factors = dict(
                scheme.clustering_factors
            )
            decision.predicted_max_load = load
            plan = Plan(
                scheme,
                num_reducers,
                load,
                strategy="cache",
                candidates_considered=1,
                decision=decision,
            )
            span.set(
                strategy="cache",
                chosen_key=repr(scheme.key),
                predicted_max_load=load,
                decision=decision.to_dict(),
            )
            return plan

        annotated_candidates = candidate_keys_annotated(workflow)
        provenance_of: dict[DistributionKey, str] = {}
        scored = []
        for key, provenance in annotated_candidates:
            scheme, load = self.cost_candidate(key, n_records, num_reducers)
            provenance_of[scheme.key] = provenance
            scored.append((scheme, load))
        filtered_out: list[tuple[BlockScheme, float]] = []
        if self.config.min_blocks_per_reducer > 0:
            # Prefer candidates meeting the minimum-blocks rule; only
            # when none does may the rule be violated.
            satisfying = [
                (scheme, load)
                for scheme, load in scored
                if scheme.num_blocks() >= floor_blocks
            ]
            if satisfying:
                kept = {id(scheme) for scheme, _load in satisfying}
                filtered_out = [
                    (scheme, load)
                    for scheme, load in scored
                    if id(scheme) not in kept
                ]
                scored = satisfying
            else:
                decision.notes.append(
                    f"no candidate reaches {floor_blocks} blocks "
                    f"({num_reducers} reducers x "
                    f"{self.config.min_blocks_per_reducer} "
                    "min-blocks-per-reducer); the rule was waived"
                )

        if self.config.use_sampling and records is not None:
            plan = self._plan_by_sampling(
                scored, provenance_of, decision, n_records, num_reducers,
                floor_blocks, records, component_index,
            )
        else:
            scheme, load = min(scored, key=lambda pair: pair[1])
            for cand_scheme, cand_load in scored:
                candidate = self._candidate_decision(
                    cand_scheme,
                    cand_load,
                    provenance_of.get(cand_scheme.key, ""),
                    floor_blocks,
                )
                if cand_scheme is scheme:
                    candidate.chosen = True
                elif cand_load > load:
                    candidate.rejection = (
                        f"predicted max load {cand_load:.0f} exceeds the "
                        f"winner's {load:.0f}"
                    )
                else:
                    candidate.rejection = (
                        f"predicted max load ties the winner's {load:.0f}; "
                        "the earlier candidate wins"
                    )
                decision.candidates.append(candidate)
            plan = Plan(
                scheme,
                num_reducers,
                load,
                strategy="model",
                candidates_considered=len(scored),
                alternatives=scored,
                decision=decision,
            )

        for cand_scheme, cand_load in filtered_out:
            candidate = self._candidate_decision(
                cand_scheme,
                cand_load,
                provenance_of.get(cand_scheme.key, ""),
                floor_blocks,
            )
            candidate.rejection = (
                f"violates the minimum-blocks rule: {candidate.num_blocks} "
                f"blocks < {floor_blocks} ({num_reducers} reducers x "
                f"{self.config.min_blocks_per_reducer})"
            )
            decision.candidates.append(candidate)

        decision.strategy = plan.strategy
        decision.chosen_key = repr(plan.scheme.key)
        decision.chosen_clustering_factors = dict(
            plan.scheme.clustering_factors
        )
        decision.predicted_max_load = plan.predicted_max_load

        if key_cache is not None:
            key_cache.store(plan.scheme.key)
        span.set(
            strategy=plan.strategy,
            chosen_key=repr(plan.scheme.key),
            clustering_factors=dict(plan.scheme.clustering_factors),
            predicted_max_load=plan.predicted_max_load,
            candidates=[
                {"key": repr(scheme.key), "predicted_max_load": load}
                for scheme, load in scored
            ],
            decision=decision.to_dict(),
        )
        logger.debug(
            "planned %s over %d candidates: %s",
            list(workflow.names),
            plan.candidates_considered,
            plan.describe(),
        )
        return plan

    def _plan_by_sampling(
        self,
        scored: list[tuple[BlockScheme, float]],
        provenance_of: dict[DistributionKey, str],
        decision: ComponentDecision,
        n_records: int,
        num_reducers: int,
        floor_blocks: int,
        records: Sequence[Record],
        component_index: int,
    ) -> Plan:
        """Sampling-based selection, recording every candidate's tally."""
        sample = sample_records(
            records, self.config.sample_size, self.config.sample_seed
        )
        model_factors = {
            scheme.key: dict(scheme.clustering_factors)
            for scheme, _load in scored
        }
        diversified = diversify_schemes(scheme for scheme, _ in scored)
        if self.config.min_blocks_per_reducer > 0:
            # cf variants must not sidestep the minimum-blocks rule
            # the model-based candidates were filtered by.
            bounded = [
                scheme
                for scheme in diversified
                if scheme.num_blocks() >= floor_blocks
            ]
            if bounded:
                diversified = bounded
        table = sampled_dispatch_table(
            diversified, sample, num_reducers,
            key_prefix=(component_index,),
            columnar=self.config.columnar is not False,
        )
        chosen, chosen_loads, best_max = None, None, None
        for scheme, loads in table:
            worst = max(loads, default=0)
            if best_max is None or worst < best_max:
                chosen, chosen_loads, best_max = scheme, loads, worst
        scaled = scale_loads(chosen_loads, len(sample), n_records)
        chosen_sampled_max = max(scaled, default=0.0)

        for scheme, loads in table:
            provenance = provenance_of.get(scheme.key, "")
            if scheme.clustering_factors != model_factors.get(scheme.key):
                provenance = (
                    (provenance + "; " if provenance else "")
                    + "cf variant from the diversification ladder "
                    f"(model suggested {model_factors.get(scheme.key)})"
                )
            candidate = self._candidate_decision(
                scheme,
                self._score_scheme(scheme, n_records, num_reducers),
                provenance,
                floor_blocks,
            )
            sampled = scale_loads(loads, len(sample), n_records)
            candidate.sampled_max_load = max(sampled, default=0.0)
            if scheme is chosen:
                candidate.chosen = True
            elif candidate.sampled_max_load > chosen_sampled_max:
                candidate.rejection = (
                    "sampled dispatch predicts max load "
                    f"{candidate.sampled_max_load:.0f}, above the winner's "
                    f"{chosen_sampled_max:.0f}"
                )
            else:
                candidate.rejection = (
                    "sampled dispatch ties the winner's max load "
                    f"{chosen_sampled_max:.0f}; the earlier candidate wins"
                )
            decision.candidates.append(candidate)
        decision.sampling = SamplingDecision(
            sample_size=len(sample),
            sample_seed=self.config.sample_seed,
            candidates_sampled=len(diversified),
            chosen_loads=scaled,
        )
        return Plan(
            chosen,
            num_reducers,
            chosen_sampled_max,
            strategy="sampling",
            candidates_considered=len(diversified),
            sampled_loads=scaled,
            alternatives=scored,
            decision=decision,
        )


    def plan_query(
        self,
        workflow: Workflow,
        n_records: int,
        num_reducers: int,
        records: Optional[Sequence[Record]] = None,
        key_cache: Optional[KeyCache] = None,
    ) -> QueryPlan:
        """Plan a whole query: one scheme per connected component."""
        return QueryPlan(
            [
                (
                    component,
                    self.plan(
                        component,
                        n_records,
                        num_reducers,
                        records=records,
                        key_cache=key_cache,
                        component_index=index,
                    ),
                )
                for index, component in enumerate(
                    connected_components(workflow)
                )
            ]
        )

