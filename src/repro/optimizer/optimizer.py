"""The distribution-scheme optimizer (Section IV).

Given a workflow, the optimizer derives the minimal feasible key,
enumerates the candidate keys (one annotated attribute kept at a time,
plus the non-overlapping fallback), picks each candidate's clustering
factor from the analytical model, and returns the plan minimizing the
predicted heaviest reducer load.  Optional run-time refinements:

* ``min_blocks_per_reducer`` -- the skew heuristic capping ``cf`` so that
  every reducer is expected to receive at least X blocks;
* sampling -- when a record sample is supplied and sampling is enabled,
  the diversified candidates are judged by simulated dispatch instead of
  the model (Section V);
* a :class:`~repro.optimizer.skew.KeyCache` -- previously good keys are
  reused when still feasible.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cube.records import Record
from repro.obs.tracer import NULL_TRACER
from repro.query.workflow import Workflow, connected_components
from repro.distribution.clustering import BlockScheme
from repro.distribution.derive import candidate_keys
from repro.distribution.keys import DistributionKey
from repro.optimizer.costmodel import (
    expected_max_load,
    expected_max_load_overlap,
    optimal_clustering_factor,
)
from repro.optimizer.skew import (
    KeyCache,
    diversify_schemes,
    pick_by_sampling,
    sample_records,
    scale_loads,
)


logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class OptimizerConfig:
    """Tunables of the plan search.

    *objective* selects what the search minimizes: ``"response_time"``
    (the paper's target -- the heaviest reducer's load, Formulae 2/4) or
    ``"total_work"`` (bytes shipped and processed across the cluster --
    batch-oriented; picks the largest clustering factor that still gives
    every reducer at least ``max(1, min_blocks_per_reducer)`` blocks).
    """

    min_blocks_per_reducer: int = 0
    use_sampling: bool = False
    sample_size: int = 2000
    sample_seed: int = 13
    objective: str = "response_time"
    #: Batched (vectorized) routing for sampling-based plan selection:
    #: ``None``/``True`` push the sample through the columnar block
    #: router (falling back per sample when it is not integer-batchable),
    #: ``False`` forces the per-record mapper.  Load tallies -- and thus
    #: the chosen plan -- are identical in every mode.
    columnar: Optional[bool] = None

    def __post_init__(self):
        if self.objective not in ("response_time", "total_work"):
            raise ValueError(
                f"unknown objective {self.objective!r}; choose "
                "'response_time' or 'total_work'"
            )
        if self.objective == "total_work" and self.use_sampling:
            # Sampled dispatch ranks candidates by max reducer load --
            # the response-time criterion -- which would silently
            # override the total-work objective.
            raise ValueError(
                "objective='total_work' cannot be combined with "
                "use_sampling (sampling ranks by max load)"
            )


@dataclass
class Plan:
    """A chosen distribution scheme plus the optimizer's expectations."""

    scheme: BlockScheme
    num_reducers: int
    predicted_max_load: float
    strategy: str
    candidates_considered: int = 0
    sampled_loads: Optional[list[float]] = None
    alternatives: list[tuple[BlockScheme, float]] = field(default_factory=list)

    @property
    def key(self) -> DistributionKey:
        return self.scheme.key

    def describe(self) -> str:
        factors = self.scheme.clustering_factors
        cf_text = (
            ", ".join(f"{attr}: cf={cf}" for attr, cf in sorted(factors.items()))
            or "non-overlapping"
        )
        return (
            f"key {self.scheme.key!r} ({cf_text}), "
            f"{self.scheme.num_blocks()} blocks over "
            f"{self.num_reducers} reducers, predicted max load "
            f"{self.predicted_max_load:.0f} records [{self.strategy}]"
        )


@dataclass
class QueryPlan:
    """One plan per weakly connected component of the query workflow.

    Independent measure families do not constrain each other's keys, so
    the evaluator redistributes each component under its own scheme
    within a single job; records are shipped once per component.
    """

    subplans: list[tuple[Workflow, Plan]]

    def __post_init__(self):
        if not self.subplans:
            raise ValueError("a query plan needs at least one component")

    @property
    def num_reducers(self) -> int:
        return self.subplans[0][1].num_reducers

    @property
    def predicted_max_load(self) -> float:
        """Loads add up: every reducer serves blocks of every component."""
        return sum(plan.predicted_max_load for _wf, plan in self.subplans)

    @property
    def single(self) -> Plan:
        """The sole component's plan; errors for multi-component queries."""
        if len(self.subplans) != 1:
            raise ValueError(
                f"query has {len(self.subplans)} components; inspect "
                ".subplans instead"
            )
        return self.subplans[0][1]

    @property
    def scheme(self):
        return self.single.scheme

    @property
    def key(self):
        return self.single.scheme.key

    def describe(self) -> str:
        if len(self.subplans) == 1:
            return self.single.describe()
        lines = [f"{len(self.subplans)} independent components:"]
        for component, plan in self.subplans:
            lines.append(f"  {list(component.names)}: {plan.describe()}")
        return "\n".join(lines)


class Optimizer:
    """Searches for the scheme minimizing the heaviest reducer load.

    *tracer* (a :class:`repro.obs.Tracer`, disabled by default) records
    one ``plan-component`` span per search, carrying every candidate's
    predicted load and the chosen scheme.
    """

    def __init__(self, config: OptimizerConfig | None = None, tracer=None):
        self.config = config or OptimizerConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- per-candidate costing ---------------------------------------------------

    def _max_cf(self, n_regions: int, num_reducers: int) -> Optional[int]:
        """Cap on cf from the minimum-blocks-per-reducer heuristic."""
        floor_blocks = self.config.min_blocks_per_reducer
        if floor_blocks <= 0:
            return None
        return max(1, n_regions // (num_reducers * floor_blocks))

    def cost_candidate(
        self,
        key: DistributionKey,
        n_records: int,
        num_reducers: int,
    ) -> tuple[BlockScheme, float]:
        """Best scheme for one candidate key and its predicted max load."""
        n_regions = key.granularity.region_count()
        annotated = key.annotated_attributes()
        if not annotated:
            if self.config.objective == "total_work":
                load = float(n_records)  # no duplication at all
            else:
                load = expected_max_load(n_records, n_regions, num_reducers)
            return BlockScheme(key), load
        if len(annotated) != 1:
            raise ValueError(
                "candidate keys must have at most one annotated attribute; "
                f"got {annotated}"
            )
        attr = annotated[0]
        span = key.component(attr).span
        if self.config.objective == "total_work":
            # Duplication is (span + cf) / cf: monotone decreasing in cf,
            # so take the largest cf keeping every reducer supplied.
            floor_blocks = max(1, self.config.min_blocks_per_reducer)
            cf = max(1, n_regions // (num_reducers * floor_blocks))
            load = n_records * (span + cf) / cf  # total shipped records
            return BlockScheme(key, {attr: cf}), load
        cf = optimal_clustering_factor(
            n_records,
            n_regions,
            num_reducers,
            span,
            max_cf=self._max_cf(n_regions, num_reducers),
        )
        load = expected_max_load_overlap(
            n_records, n_regions, num_reducers, span, cf
        )
        return BlockScheme(key, {attr: cf}), load

    # -- whole-plan search ------------------------------------------------------------

    def plan(
        self,
        workflow: Workflow,
        n_records: int,
        num_reducers: int,
        records: Optional[Sequence[Record]] = None,
        key_cache: Optional[KeyCache] = None,
        component_index: int = 0,
    ) -> Plan:
        """Choose the distribution scheme for *workflow*.

        *records* is only consulted when sampling is enabled; *key_cache*
        short-circuits the search when it holds a feasible key.
        *component_index* is the position of this workflow among the
        query's connected components -- the executor prefixes block keys
        with it, and simulated dispatch must hash the same keys.
        """
        if num_reducers <= 0:
            raise ValueError("num_reducers must be positive")

        with self.tracer.span(
            "plan-component",
            component=component_index,
            n_records=n_records,
            num_reducers=num_reducers,
        ) as span:
            plan = self._plan_traced(
                workflow, n_records, num_reducers, records, key_cache,
                component_index, span,
            )
        return plan

    def _plan_traced(
        self,
        workflow: Workflow,
        n_records: int,
        num_reducers: int,
        records: Optional[Sequence[Record]],
        key_cache: Optional[KeyCache],
        component_index: int,
        span,
    ) -> Plan:
        """The search body of :meth:`plan`, annotating *span* as it goes."""
        cached = key_cache.find(workflow) if key_cache else None
        if cached is not None:
            scheme, load = self.cost_candidate(
                cached, n_records, num_reducers
            )
            plan = Plan(
                scheme,
                num_reducers,
                load,
                strategy="cache",
                candidates_considered=1,
            )
            span.set(
                strategy="cache",
                chosen_key=repr(scheme.key),
                predicted_max_load=load,
            )
            return plan

        scored = [
            self.cost_candidate(key, n_records, num_reducers)
            for key in candidate_keys(workflow)
        ]
        if self.config.min_blocks_per_reducer > 0:
            # Prefer candidates meeting the minimum-blocks rule; only
            # when none does may the rule be violated.
            floor_blocks = self.config.min_blocks_per_reducer * num_reducers
            satisfying = [
                (scheme, load)
                for scheme, load in scored
                if scheme.num_blocks() >= floor_blocks
            ]
            if satisfying:
                scored = satisfying

        if self.config.use_sampling and records is not None:
            sample = sample_records(
                records, self.config.sample_size, self.config.sample_seed
            )
            diversified = diversify_schemes(scheme for scheme, _ in scored)
            if self.config.min_blocks_per_reducer > 0:
                # cf variants must not sidestep the minimum-blocks rule
                # the model-based candidates were filtered by.
                floor_blocks = (
                    self.config.min_blocks_per_reducer * num_reducers
                )
                bounded = [
                    scheme
                    for scheme in diversified
                    if scheme.num_blocks() >= floor_blocks
                ]
                if bounded:
                    diversified = bounded
            chosen, loads = pick_by_sampling(
                diversified, sample, num_reducers,
                key_prefix=(component_index,),
                columnar=self.config.columnar is not False,
            )
            scaled = scale_loads(loads, len(sample), n_records)
            plan = Plan(
                chosen,
                num_reducers,
                max(scaled, default=0.0),
                strategy="sampling",
                candidates_considered=len(diversified),
                sampled_loads=scaled,
                alternatives=scored,
            )
        else:
            scheme, load = min(scored, key=lambda pair: pair[1])
            plan = Plan(
                scheme,
                num_reducers,
                load,
                strategy="model",
                candidates_considered=len(scored),
                alternatives=scored,
            )

        if key_cache is not None:
            key_cache.store(plan.scheme.key)
        span.set(
            strategy=plan.strategy,
            chosen_key=repr(plan.scheme.key),
            clustering_factors=dict(plan.scheme.clustering_factors),
            predicted_max_load=plan.predicted_max_load,
            candidates=[
                {"key": repr(scheme.key), "predicted_max_load": load}
                for scheme, load in scored
            ],
        )
        logger.debug(
            "planned %s over %d candidates: %s",
            list(workflow.names),
            plan.candidates_considered,
            plan.describe(),
        )
        return plan


    def plan_query(
        self,
        workflow: Workflow,
        n_records: int,
        num_reducers: int,
        records: Optional[Sequence[Record]] = None,
        key_cache: Optional[KeyCache] = None,
    ) -> QueryPlan:
        """Plan a whole query: one scheme per connected component."""
        return QueryPlan(
            [
                (
                    component,
                    self.plan(
                        component,
                        n_records,
                        num_reducers,
                        records=records,
                        key_cache=key_cache,
                        component_index=index,
                    ),
                )
                for index, component in enumerate(
                    connected_components(workflow)
                )
            ]
        )

