"""Cost model, plan search, and run-time skew handling."""

from repro.optimizer.costmodel import (
    EULER_GAMMA,
    exhaustive_clustering_factor,
    expected_max_load,
    expected_max_load_overlap,
    expected_normal_max,
    optimal_clustering_factor,
)
from repro.optimizer.optimizer import (
    Optimizer,
    OptimizerConfig,
    Plan,
    QueryPlan,
)
from repro.optimizer.skew import (
    KeyCache,
    detect_skew,
    diversify_schemes,
    pick_by_sampling,
    sample_records,
    scale_loads,
    simulate_dispatch,
)

__all__ = [
    "EULER_GAMMA",
    "KeyCache",
    "Optimizer",
    "OptimizerConfig",
    "Plan",
    "QueryPlan",
    "detect_skew",
    "diversify_schemes",
    "exhaustive_clustering_factor",
    "expected_max_load",
    "expected_max_load_overlap",
    "expected_normal_max",
    "optimal_clustering_factor",
    "pick_by_sampling",
    "sample_records",
    "scale_loads",
    "simulate_dispatch",
]
