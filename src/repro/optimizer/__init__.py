"""Cost model, plan search, and run-time skew handling."""

from repro.optimizer.costmodel import (
    EULER_GAMMA,
    clustering_cost_curve,
    exhaustive_clustering_factor,
    expected_max_load,
    expected_max_load_overlap,
    expected_normal_max,
    optimal_clustering_factor,
)
from repro.optimizer.decisions import (
    CandidateDecision,
    ComponentDecision,
    QueryDecision,
    SamplingDecision,
)
from repro.optimizer.optimizer import (
    Optimizer,
    OptimizerConfig,
    Plan,
    QueryPlan,
)
from repro.optimizer.skew import (
    KeyCache,
    detect_skew,
    diversify_schemes,
    pick_by_sampling,
    sample_records,
    sampled_dispatch_table,
    scale_loads,
    simulate_dispatch,
)

__all__ = [
    "EULER_GAMMA",
    "CandidateDecision",
    "ComponentDecision",
    "KeyCache",
    "Optimizer",
    "OptimizerConfig",
    "Plan",
    "QueryDecision",
    "QueryPlan",
    "SamplingDecision",
    "clustering_cost_curve",
    "detect_skew",
    "diversify_schemes",
    "exhaustive_clustering_factor",
    "expected_max_load",
    "expected_max_load_overlap",
    "expected_normal_max",
    "optimal_clustering_factor",
    "pick_by_sampling",
    "sample_records",
    "sampled_dispatch_table",
    "scale_loads",
    "simulate_dispatch",
]
