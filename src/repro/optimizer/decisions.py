"""Structured records of the optimizer's decision trail.

The plan search used to return only its winner; everything it rejected
-- and why -- lived in transient locals.  These dataclasses capture the
full trail as plain data: per connected component, every candidate key
considered (with the provenance of its construction, its clustering
factor, predicted load, and a rejection reason when it lost), the
strategy that settled the choice (model, sampling, or key cache), and
the sampled-dispatch tallies when sampling ran.

:class:`~repro.optimizer.optimizer.Optimizer` attaches one
:class:`ComponentDecision` to every :class:`~repro.optimizer.optimizer.Plan`
it produces and mirrors it into the ``plan-component`` tracer span, so
the trail is available programmatically, in traces, and to
``repro explain`` (:mod:`repro.obs.explain`) without re-running the
search.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = [
    "CandidateDecision",
    "ComponentDecision",
    "QueryDecision",
    "SamplingDecision",
]


@dataclass
class CandidateDecision:
    """One candidate key's complete scorecard in the plan search."""

    #: ``repr()`` of the candidate :class:`DistributionKey`.
    key: str
    #: How the candidate was constructed from the minimal feasible key
    #: (e.g. which annotated attribute it kept).
    provenance: str
    #: Regions the key splits the cube into (before clustering).
    n_regions: int
    #: The paper's ``d`` -- annotation width of the kept attribute
    #: (0 for non-overlapping candidates).
    span: int
    #: Chosen clustering factor per annotated attribute.
    clustering_factors: dict[str, int] = field(default_factory=dict)
    #: Blocks of the resulting scheme (regions / cf, per attribute).
    num_blocks: int = 0
    #: Formula 2/4 prediction of the heaviest reducer load, in records.
    predicted_max_load: float = 0.0
    #: Whether the scheme satisfies the minimum-blocks-per-reducer rule
    #: (``None`` when the rule is disabled).
    meets_min_blocks: Optional[bool] = None
    #: Max sampled-dispatch load (scaled to the full dataset) when the
    #: sampling strategy judged this candidate; ``None`` otherwise.
    sampled_max_load: Optional[float] = None
    #: Whether this candidate won the search.
    chosen: bool = False
    #: Why the candidate lost (``None`` for the winner).
    rejection: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SamplingDecision:
    """The skew handler's sampled-dispatch run, when sampling was on."""

    sample_size: int
    sample_seed: int
    #: Candidates judged by simulated dispatch (after cf diversification).
    candidates_sampled: int
    #: Scaled per-reducer loads of the winning scheme.
    chosen_loads: list[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class ComponentDecision:
    """The full decision trail for one connected component's plan."""

    component: int
    #: Measure names of the component, in workflow order.
    measures: list[str]
    #: ``repr()`` of the derived minimal feasible key (Theorems 1-2).
    minimal_key: str
    strategy: str
    n_records: int
    num_reducers: int
    min_blocks_per_reducer: int
    candidates: list[CandidateDecision] = field(default_factory=list)
    chosen_key: str = ""
    chosen_clustering_factors: dict[str, int] = field(default_factory=dict)
    predicted_max_load: float = 0.0
    sampling: Optional[SamplingDecision] = None
    #: Free-form annotations of search-wide events (cache hits, the
    #: min-blocks filter discarding every candidate, ...).
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)

    def chosen_candidate(self) -> Optional[CandidateDecision]:
        """The winning candidate's scorecard, if any was recorded."""
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        return None

    def rejected_candidates(self) -> list[CandidateDecision]:
        """Every candidate that lost, with its rejection reason."""
        return [c for c in self.candidates if not c.chosen]


@dataclass
class QueryDecision:
    """One :class:`ComponentDecision` per connected component."""

    components: list[ComponentDecision] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"components": [c.to_dict() for c in self.components]}

    @property
    def predicted_max_load(self) -> float:
        """Loads add up: every reducer serves every component's blocks."""
        return sum(c.predicted_max_load for c in self.components)
