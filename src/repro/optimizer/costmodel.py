"""The analytical cost model (Section IV).

Response time is dominated by the heaviest reducer: transferring and
processing the records of every block assigned to it.  With blocks
assigned to ``m`` reducers uniformly at random and records spread evenly
over ``n_G`` regions, the heaviest load is the maximum of a multinomial
-- approximated through the first moment of the largest order statistic
of ``m`` (near-)normal variables (Owen & Steck; the paper's Formula 2):

    E[max load] ~ N/m + N * sqrt((1 - 1/m) / (n_G * m)) * e(m)

    e(m) = sqrt(2 ln m) - (ln ln m + ln 4*pi - 2*alpha) / (2 sqrt(2 ln m))

with ``alpha`` Euler's constant.  The overlapping variant (Formula 4)
substitutes the replicated data volume ``N (d + cf) / cf`` for ``N`` and
the merged block count ``n_G / cf`` for ``n_G``.  Its minimizer in ``cf``
solves a cubic equation; :func:`optimal_clustering_factor` finds the real
positive root and rounds to the better of floor/ceiling, exactly as the
paper prescribes.
"""

from __future__ import annotations

import math

import numpy as np

#: Euler-Mascheroni constant (the paper's alpha = 0.5772).
EULER_GAMMA = 0.5772156649015329


def expected_normal_max(m: int) -> float:
    """First moment of the max of *m* independent standard normals.

    Uses the classic extreme-value expansion for ``m >= 3`` and exact
    values for the tiny cases the expansion cannot handle: the max of
    one standard normal has mean 0, of two has mean ``1/sqrt(pi)``.
    ``m = 0`` (no variables at all) also yields 0 -- callers treat it
    like the degenerate single-reducer case -- and negative *m* is a
    caller bug, rejected loudly rather than fed into ``log``.
    """
    if m < 0:
        raise ValueError(f"m must be non-negative, got {m}")
    if m <= 1:
        # Guarded explicitly: the expansion below needs log(m) and
        # log(log(m)), both undefined or degenerate here.
        return 0.0
    if m == 2:
        return 1.0 / math.sqrt(math.pi)
    root = math.sqrt(2.0 * math.log(m))
    correction = (
        math.log(math.log(m)) + math.log(4.0 * math.pi) - 2.0 * EULER_GAMMA
    ) / (2.0 * root)
    return root - correction


def expected_max_load(n_records: float, n_regions: float, m: int) -> float:
    """Formula 2: expected heaviest reducer load, in records.

    *n_records* records spread evenly over *n_regions* regions, regions
    assigned uniformly at random to *m* reducers.  Monotonically
    decreasing in *n_regions*: finer keys balance better.
    """
    if n_records <= 0:
        return 0.0
    if m <= 1:
        return float(n_records)
    if n_regions <= 0:
        raise ValueError("n_regions must be positive")
    mean = n_records / m
    sigma = n_records * math.sqrt((1.0 - 1.0 / m) / (n_regions * m))
    # Regions are atomic: whichever reducer draws a region gets all of
    # it, so the heaviest load is never below one region's size.  The
    # normal approximation loses this once n_regions drops near (or
    # below) m; the floor keeps the model honest in that regime.
    return max(mean + sigma * expected_normal_max(m), n_records / n_regions)


def expected_max_load_overlap(
    n_records: float,
    n_regions: float,
    m: int,
    span: int,
    cf: float,
) -> float:
    """Formula 4: heaviest load under an overlapping key with factor *cf*.

    *span* is ``d``, the annotation width (``high - low``); each merged
    block holds ``span + cf`` regions of which it owns ``cf``, so the
    shipped volume inflates by ``(span + cf) / cf`` while the block count
    shrinks to ``n_regions / cf``.
    """
    if cf < 1:
        raise ValueError("clustering factor must be >= 1")
    if span < 0:
        raise ValueError("annotation span must be >= 0")
    inflated = n_records * (span + cf) / cf
    blocks = max(1.0, n_regions / cf)
    return expected_max_load(inflated, blocks, m)


def _cubic_root_cf(n_records: float, n_regions: float, m: int, span: int):
    """Real positive root of the derivative cubic, in sqrt(cf) space.

    Writing Formula 4 as ``c1 (d + cf)/cf + c2 (d + cf)/sqrt(cf)`` with
    ``c1 = N/m`` and ``c2 = N e(m) sqrt((1-1/m)/(n_G m))`` and setting
    the derivative to zero yields, for ``u = sqrt(cf)``:

        (c2/2) u^3 - (c2 d / 2) u - c1 d = 0
    """
    if m <= 1:
        return None
    c1 = n_records / m
    c2 = (
        n_records
        * expected_normal_max(m)
        * math.sqrt((1.0 - 1.0 / m) / (n_regions * m))
    )
    if c2 <= 0 or span == 0:
        return None
    roots = np.roots([c2 / 2.0, 0.0, -c2 * span / 2.0, -c1 * span])
    real = [
        float(r.real)
        for r in roots
        if abs(r.imag) < 1e-9 and r.real > 0
    ]
    if not real:
        return None
    return max(real) ** 2


def optimal_clustering_factor(
    n_records: float,
    n_regions: float,
    m: int,
    span: int,
    max_cf: int | None = None,
) -> int:
    """The integer *cf* minimizing Formula 4.

    Solves the derivative cubic and compares floor/ceiling plus a coarse
    geometric scan -- the scan covers the regime where the atomic-block
    floor of :func:`expected_max_load` (not the smooth formula) is
    binding.  *max_cf* caps the factor (e.g. the skew handler's
    minimum-blocks-per-reducer rule).
    """
    upper = int(max(1, n_regions))
    if max_cf is not None:
        upper = min(upper, max(1, max_cf))
    if span == 0 or upper == 1:
        return 1

    def cost(cf: int) -> float:
        return expected_max_load_overlap(n_records, n_regions, m, span, cf)

    candidates = {1, upper}
    root = _cubic_root_cf(n_records, n_regions, m, span)
    if root is not None:
        for value in (math.floor(root), math.ceil(root)):
            if 1 <= value <= upper:
                candidates.add(int(value))
    # The objective is max(smooth unimodal, increasing floor), which is
    # unimodal, so integer ternary search nails the optimum exactly.
    lo, hi = 1, upper
    while hi - lo > 3:
        m1 = lo + (hi - lo) // 3
        m2 = hi - (hi - lo) // 3
        if cost(m1) < cost(m2):
            hi = m2
        else:
            lo = m1
    candidates.update(range(lo, hi + 1))
    return min(candidates, key=cost)


def clustering_cost_curve(
    n_records: float,
    n_regions: float,
    m: int,
    span: int,
    max_cf: int | None = None,
    max_points: int = 64,
) -> list[tuple[int, float]]:
    """The Formula-4 cost curve over *cf*, downsampled for display.

    Returns ``(cf, predicted max load)`` pairs covering ``1 ..
    min(n_regions, max_cf)``: every integer while the range is small,
    a geometric ladder once it is not, and always the minimizers found
    by both :func:`optimal_clustering_factor` (the cubic) and
    :func:`exhaustive_clustering_factor` (the scan) so the curve shows
    where each lands.  This is what ``repro explain`` plots; it is
    never on the planning hot path.
    """
    upper = int(max(1, n_regions))
    if max_cf is not None:
        upper = min(upper, max(1, max_cf))
    cfs = set()
    if upper <= max_points:
        cfs.update(range(1, upper + 1))
    else:
        # Geometric ladder: even coverage in log space ends up denser
        # where the curve actually bends (small cf).
        ratio = upper ** (1.0 / (max_points - 1))
        value = 1.0
        for _ in range(max_points):
            cfs.add(min(upper, max(1, round(value))))
            value *= ratio
        cfs.add(upper)
    cfs.add(optimal_clustering_factor(n_records, n_regions, m, span, max_cf))
    cfs.add(
        exhaustive_clustering_factor(n_records, n_regions, m, span, max_cf)
    )
    return [
        (cf, expected_max_load_overlap(n_records, n_regions, m, span, cf))
        for cf in sorted(cfs)
    ]


def exhaustive_clustering_factor(
    n_records: float,
    n_regions: float,
    m: int,
    span: int,
    max_cf: int | None = None,
) -> int:
    """Integer-scan minimizer of Formula 4 (test oracle for the cubic)."""
    upper = int(max(1, n_regions))
    if max_cf is not None:
        upper = min(upper, max(1, max_cf))
    best_cf, best_cost = 1, math.inf
    for cf in range(1, upper + 1):
        cost = expected_max_load_overlap(n_records, n_regions, m, span, cf)
        if cost < best_cost:
            best_cf, best_cost = cf, cost
    return best_cf
