"""Interactive analysis sessions.

The paper optimizes *response time* because the target workload is
interactive analysis: an analyst firing a sequence of related composite
queries at the same data.  :class:`Session` packages that workflow:

* datasets are registered once (stored in the cluster's DFS);
* queries arrive as workflow objects or query-language scripts;
* plans flow through one shared :class:`~repro.optimizer.skew.KeyCache`,
  so a distribution key that balanced well for an earlier query is
  reused when feasible (Section V's key-reuse idea);
* every run is recorded in a history with its plan and simulated cost.

Example::

    session = Session(machines=20)
    session.register("logs", weblog_schema(days=1), records)
    outcome = session.query("logs", WEBLOG_SCRIPT)
    print(session.summary())
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cube.records import Record, Schema
from repro.local.measure_table import ResultSet
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.timing import ClusterConfig
from repro.optimizer.skew import KeyCache
from repro.query.functions import Expression
from repro.query.parser import parse_workflow
from repro.query.workflow import Workflow
from repro.parallel.executor import ExecutionConfig, ParallelEvaluator
from repro.parallel.report import ParallelResult


__all__ = [
    "Dataset",
    "QueryRecord",
    "Session",
    "SessionError",
    "quick_session",
]

logger = logging.getLogger(__name__)


class SessionError(ValueError):
    """Unknown dataset names or mismatched schemas."""


@dataclass(frozen=True)
class Dataset:
    """A registered dataset: name, schema, DFS-backed records."""

    name: str
    schema: Schema
    num_records: int


@dataclass
class QueryRecord:
    """One history entry."""

    index: int
    dataset: str
    measures: tuple[str, ...]
    plan_summary: str
    strategy: str
    response_time: float
    rows: int

    def describe(self) -> str:
        return (
            f"#{self.index} on {self.dataset!r}: "
            f"{', '.join(self.measures)} -> {self.rows} rows in "
            f"{self.response_time:.4f}s [{self.strategy}] via "
            f"{self.plan_summary}"
        )


class Session:
    """A cluster, a dataset catalog, a key cache, and a query history."""

    def __init__(
        self,
        machines: int = 20,
        config: ExecutionConfig | None = None,
        cluster: SimulatedCluster | None = None,
        expressions: Optional[dict[str, Expression]] = None,
    ):
        self.cluster = cluster or SimulatedCluster(
            ClusterConfig(machines=machines)
        )
        self.evaluator = ParallelEvaluator(self.cluster, config)
        self.key_cache = KeyCache()
        self.expressions = expressions or {}
        self._datasets: dict[str, Dataset] = {}
        self.history: list[QueryRecord] = []

    # -- dataset catalog ------------------------------------------------------

    def register(
        self, name: str, schema: Schema, records: Sequence[Record]
    ) -> Dataset:
        """Store *records* in the cluster's DFS under *name*."""
        records = list(records)
        for record in records[:16]:
            schema.validate_record(record)
        self.cluster.write_file(f"dataset:{name}", records)
        dataset = Dataset(name, schema, len(records))
        self._datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise SessionError(
                f"no dataset {name!r}; registered: {sorted(self._datasets)}"
            ) from None

    def datasets(self) -> tuple[Dataset, ...]:
        return tuple(self._datasets.values())

    # -- querying ------------------------------------------------------------------

    def _resolve_workflow(self, dataset: Dataset, query) -> Workflow:
        if isinstance(query, Workflow):
            if query.schema != dataset.schema:
                raise SessionError(
                    f"workflow schema does not match dataset "
                    f"{dataset.name!r}"
                )
            return query
        return parse_workflow(
            query, dataset.schema, expressions=self.expressions
        )

    def query(self, dataset_name: str, query) -> ParallelResult:
        """Evaluate *query* (a Workflow or script text) over a dataset.

        Plans consult the session's key cache; the run is appended to
        the history.
        """
        dataset = self.dataset(dataset_name)
        workflow = self._resolve_workflow(dataset, query)
        handle = self.cluster.dfs.open(f"dataset:{dataset.name}")
        outcome = self.evaluator.evaluate(
            workflow, handle, key_cache=self.key_cache
        )
        strategies = {plan.strategy for _wf, plan in outcome.plan.subplans}
        logger.info(
            "query #%d on %r: %s",
            len(self.history),
            dataset.name,
            outcome.job.summary(),
        )
        self.history.append(
            QueryRecord(
                index=len(self.history),
                dataset=dataset.name,
                measures=workflow.names,
                plan_summary=repr(
                    [plan.scheme.key for _wf, plan in outcome.plan.subplans]
                ),
                strategy=",".join(sorted(strategies)),
                response_time=outcome.response_time,
                rows=outcome.result.total_rows(),
            )
        )
        return outcome

    # -- reporting -------------------------------------------------------------------

    @property
    def total_simulated_time(self) -> float:
        return sum(entry.response_time for entry in self.history)

    def summary(self) -> str:
        lines = [
            f"session: {self.cluster.config.machines} machines, "
            f"{len(self._datasets)} datasets, {len(self.history)} queries, "
            f"{self.total_simulated_time:.4f}s simulated total, "
            f"{len(self.key_cache)} cached keys"
        ]
        lines.extend("  " + entry.describe() for entry in self.history)
        return "\n".join(lines)


def quick_session(machines: int = 10) -> tuple[Session, ResultSet]:
    """The weblog example wrapped in a session (used by docs and demos)."""
    from repro.workload.weblog import (
        generate_sessions,
        weblog_query,
        weblog_schema,
    )

    schema = weblog_schema(days=1)
    session = Session(machines=machines)
    session.register("weblog", schema, generate_sessions(schema, 20_000))
    outcome = session.query("weblog", weblog_query(schema))
    return session, outcome.result
