"""The one-round parallel evaluator (Section III).

One MapReduce job evaluates the whole composite query:

1. the workflow is split into weakly connected components (independent
   measure families need not share a key) and the optimizer picks a
   feasible distribution key and clustering factor per component;
2. mappers replicate each record into every block whose extended range
   needs it, once per component (overlapping redistribution);
3. each reducer runs the local sort/scan algorithm per block and filters
   its outputs to the block's owned region range, so
4. the final answer is the plain union of local results -- no combination
   step, and any duplicate is a hard error.

With ``early_aggregation`` enabled (and every basic measure distributive
or algebraic), mappers pre-aggregate their share of each block into
partial accumulator states and ship those instead of raw records
(Section III-D); reducers merge states and evaluate composites on top.
Partial aggregation folds values in a different order than the
centralized scan, so float-valued aggregates may differ from the
non-early run by floating-point rounding; integer aggregates stay
bit-identical.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from itertools import repeat
from typing import Optional, Sequence

import numpy as np

from repro import kernels
from repro.cube.batches import RecordBatch
from repro.cube.records import Record, estimated_record_bytes
from repro.local.measure_table import MeasureTable, ResultSet
from repro.local.sortscan import BlockEvaluator, LocalStats
from repro.local.vectorized import (
    batched_partial_states,
    vectorized_supports,
)
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.dfs import DistributedFile
from repro.mapreduce.engine import KEY_BYTES, MapBatchOutput, MapReduceJob
from repro.optimizer.optimizer import (
    Optimizer,
    OptimizerConfig,
    Plan,
    QueryPlan,
)
from repro.obs.calibration import CalibrationReport
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.skew import KeyCache
from repro.query.workflow import Workflow, connected_components
from repro.parallel.cancel import CancellationToken
from repro.parallel.report import ColumnarStats, ParallelResult

#: Tag marking early-aggregation partial states in the value stream.
_PARTIAL = "__partial__"

#: Charged size of one partial accumulator state: the region coordinates
#: plus a fixed-size accumulator come out at about one record's width.
_PARTIAL_STATE_BYTES = 64


logger = logging.getLogger(__name__)


class DuplicateResultError(RuntimeError):
    """Two blocks output the same measure region: the scheme is broken."""


@dataclass(frozen=True)
class ExecutionConfig:
    """Knobs of the parallel evaluation.

    *partitioner* assigns blocks to reducers: ``"hash"`` (the random
    assignment the paper's cost model assumes) or ``"round_robin"``
    (consecutive blocks to consecutive reducers -- better balanced when
    block sizes are uniform, which the hash/model view treats as the
    pessimistic random case).

    *columnar* selects the batched map side (vectorized block routing
    and, with early aggregation, the reduceat-based combiner).  The
    default ``None`` auto-enables it when every basic measure has a
    vectorized implementation; ``True``/``False`` force it on or off.
    Even when on, map tasks whose records cannot be represented as an
    integer batch fall back to the scalar path per task, so results are
    identical in every mode.

    *kernels* is the compiled-kernel tri-state (see
    :mod:`repro.kernels`): ``"auto"`` uses the numba backend when
    installed, ``"on"`` requires it, ``"off"`` forces the NumPy
    fallback.  Both backends are bit-identical; the knob only trades
    speed.  ``None`` leaves the process-wide mode untouched.
    """

    num_reducers: Optional[int] = None
    early_aggregation: bool = False
    combined_sort: bool = False
    partitioner: str = "hash"
    columnar: Optional[bool] = None
    kernels: Optional[str] = None
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)

    def __post_init__(self):
        if self.partitioner not in ("hash", "round_robin"):
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; choose "
                "'hash' or 'round_robin'"
            )
        if self.kernels is not None and self.kernels not in (
            kernels.KERNEL_MODES
        ):
            raise ValueError(
                f"unknown kernels mode {self.kernels!r}; choose one of "
                f"{kernels.KERNEL_MODES}"
            )
        if self.partitioner != "hash" and self.optimizer.use_sampling:
            # Simulated dispatch predicts loads under hash assignment;
            # letting it pick a plan that will execute under a different
            # partitioner would measure the wrong thing.
            raise ValueError(
                "sampling-based planning assumes the hash partitioner; "
                "use partitioner='hash' together with sampling"
            )


class ParallelEvaluator:
    """Evaluates workflows on a simulated cluster, one job per query.

    *tracer* (a :class:`repro.obs.Tracer`) records the evaluation's
    span tree -- optimize, map, shuffle, sort, evaluate, per-slot task
    placements -- and *metrics* (a
    :class:`repro.obs.MetricsRegistry`) receives job counters, reducer
    loads, and the optimizer's predicted-versus-actual max load.
    *telemetry* (a :class:`repro.obs.telemetry.TelemetryRegistry`)
    receives live phase progress, throughput rates and streaming load
    distributions while the job runs.  All default to disabled no-ops.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExecutionConfig | None = None,
        tracer=None,
        metrics=None,
        telemetry=None,
    ):
        self.cluster = cluster
        self.config = config or ExecutionConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.optimizer = Optimizer(self.config.optimizer, tracer=self.tracer)

    # -- input handling -------------------------------------------------------------

    def _resolve_input(
        self, data: Sequence[Record] | DistributedFile
    ) -> DistributedFile:
        if isinstance(data, DistributedFile):
            return data
        return self.cluster.dfs.write("query-input", list(data))

    def _resolve_plan(
        self,
        workflow: Workflow,
        input_file: DistributedFile,
        plan: QueryPlan | Plan | None,
        key_cache: KeyCache | None,
    ) -> QueryPlan:
        components = connected_components(workflow)
        if isinstance(plan, QueryPlan):
            # A pre-built plan may group several weakly-connected
            # components under one shared subplan (batch co-evaluation),
            # so validate measure coverage rather than component count.
            plan_names = sorted(
                name
                for subplan_workflow, _plan in plan.subplans
                for name in subplan_workflow.names
            )
            if plan_names != sorted(workflow.names):
                raise ValueError(
                    f"plan covers measures {plan_names}, query has "
                    f"{sorted(workflow.names)}"
                )
            return plan
        if isinstance(plan, Plan):
            if len(components) != 1:
                raise ValueError(
                    "a bare Plan only fits a single-component query; "
                    "pass a QueryPlan"
                )
            return QueryPlan([(components[0], plan)])
        num_reducers = self.config.num_reducers or self.cluster.reduce_slots
        sample_source = None
        if self.config.optimizer.use_sampling:
            from repro.optimizer.skew import sample_file_records

            # Draw only the sample, not a full copy of the dataset; the
            # optimizer samples from this pre-drawn pool.
            sample_source = sample_file_records(
                input_file,
                self.config.optimizer.sample_size,
                self.config.optimizer.sample_seed,
            )
        return self.optimizer.plan_query(
            workflow,
            n_records=input_file.num_records,
            num_reducers=num_reducers,
            records=sample_source,
            key_cache=key_cache,
        )

    # -- map/reduce closures -----------------------------------------------------------

    @staticmethod
    def _make_mapper(plan: QueryPlan):
        """Record -> tagged block keys, one family per component."""
        component_mappers = [
            (index, subplan.scheme.make_mapper())
            for index, (_wf, subplan) in enumerate(plan.subplans)
        ]

        def mapper(record: Record):
            pairs = []
            for index, blocks_of in component_mappers:
                pairs.extend(
                    ((index,) + block_key, record)
                    for block_key in blocks_of(record)
                )
            return pairs

        return mapper

    @staticmethod
    def _component_basics(component: Workflow):
        schema = component.schema
        return [
            (
                local_index,
                measure,
                measure.granularity.coordinate_mapper(),
                schema.field_index(measure.field),
            )
            for local_index, measure in enumerate(component.basic_measures())
        ]

    def _make_combiner(self, plan: QueryPlan):
        """Early aggregation: records -> per-region partial states."""
        basics_by_component = [
            self._component_basics(component)
            for component, _plan in plan.subplans
        ]

        def combiner(block_key, records):
            basics = basics_by_component[block_key[0]]
            states: dict[tuple[int, tuple], object] = {}
            for record in records:
                for local_index, measure, mapper, field_index in basics:
                    slot = (local_index, mapper(record))
                    acc = states.get(slot)
                    if acc is None:
                        acc = measure.aggregate.create()
                    states[slot] = measure.aggregate.add(
                        acc, record[field_index]
                    )
            for (local_index, coords), state in states.items():
                yield (block_key, (_PARTIAL, local_index, coords, state))

        return combiner

    def _make_map_batch(
        self,
        plan: QueryPlan,
        record_bytes: int,
        stats: ColumnarStats,
    ):
        """Columnar map side: whole tasks routed and combined in batch.

        Returns the engine's ``map_batch`` hook.  Per task it builds one
        :class:`RecordBatch`, routes it through every component's
        vectorized block router, and -- under early aggregation --
        produces the partial states with grouped reduceat aggregation,
        falling back to the scalar combiner for components it cannot
        compute bit-identically.  Tasks whose records are not
        integer-columnar return ``None``, which the engine answers with
        the scalar mapper path.
        """
        schema = plan.subplans[0][0].schema
        routers = [
            subplan.scheme.make_batch_router()
            for _wf, subplan in plan.subplans
        ]
        components = [component for component, _plan in plan.subplans]
        early = self.config.early_aggregation
        scalar_combiner = self._make_combiner(plan) if early else None

        def map_batch(records) -> MapBatchOutput | None:
            batch = RecordBatch.from_records(schema, records)
            if batch is None or not batch.routable():
                # No batch at all, or typed dimension columns that the
                # hierarchy level arrays cannot map: scalar mapper path.
                stats.fallback_tasks += 1
                stats.fallback_records += len(records)
                return None
            stats.batch_tasks += 1
            stats.batch_records += len(batch)
            pairs: list = []
            emitted = 0
            for index, router in enumerate(routers):
                if not early:
                    for full_key, rows in router(batch, (index,)):
                        emitted += len(rows)
                        pairs.extend(
                            [(full_key, records[i]) for i in rows.tolist()]
                        )
                    continue
                raw_keys, raw_rows, varying = router(
                    batch, (index,), raw=True
                )
                emitted += len(raw_rows)
                if not len(raw_rows):
                    continue
                fused = batched_partial_states(
                    components[index], batch.matrix, raw_keys, raw_rows,
                    varying,
                )
                if fused is None:
                    # Scalar-combiner fallback (unsupported aggregate or
                    # overflow risk): re-route grouped, per-block lists.
                    full_keys, flat_rows, counts = router(
                        batch, (index,), flat=True
                    )
                    stats.scalar_groups += len(full_keys)
                    offsets = np.append(0, np.cumsum(counts)).tolist()
                    row_list = flat_rows.tolist()
                    for block_id, full_key in enumerate(full_keys):
                        members = [
                            records[i]
                            for i in row_list[
                                offsets[block_id]:offsets[block_id + 1]
                            ]
                        ]
                        pairs.extend(scalar_combiner(full_key, members))
                else:
                    full_keys, partials = fused
                    stats.vector_groups += len(full_keys)
                    # Pure C-level assembly: zip() builds the value and
                    # pair tuples, map() resolves block keys -- no
                    # bytecode runs per partial.
                    for local_index, ids, regions, states in partials:
                        pairs.extend(
                            zip(
                                map(full_keys.__getitem__, ids),
                                zip(
                                    repeat(_PARTIAL),
                                    repeat(local_index),
                                    regions,
                                    states,
                                ),
                            )
                        )
            if early:
                return MapBatchOutput(
                    pairs=pairs,
                    emitted_pairs=emitted,
                    combine_inputs=emitted,
                    combine_bytes=emitted * (KEY_BYTES + record_bytes),
                    combined=True,
                )
            return MapBatchOutput(pairs=pairs, emitted_pairs=emitted)

        return map_batch

    def _make_partitioner(self, plan: QueryPlan):
        """Block -> reducer assignment per ExecutionConfig.partitioner."""
        if self.config.partitioner == "hash":
            from repro.mapreduce.engine import default_partitioner

            return default_partitioner

        # Round-robin over the per-component linearized block grids;
        # components are offset so their blocks interleave fairly.
        schemes = [subplan.scheme for _wf, subplan in plan.subplans]
        offsets = []
        total = 0
        for scheme in schemes:
            offsets.append(total)
            total += scheme.num_blocks()

        def partitioner(block_key, num_reducers: int) -> int:
            component_index = block_key[0]
            scheme = schemes[component_index]
            linear = scheme.linear_index(block_key[1:])
            return (offsets[component_index] + linear) % num_reducers

        return partitioner

    def _make_reducer(
        self,
        plan: QueryPlan,
        record_bytes: int,
        local_stats: LocalStats,
        served_blocks: set,
    ):
        evaluators = []
        filters = []
        basics_by_component = []
        for component, subplan in plan.subplans:
            evaluators.append(BlockEvaluator(component, tracer=self.tracer))
            filters.append(
                {
                    measure.name: subplan.scheme.make_result_filter(
                        measure.granularity
                    )
                    for measure in component.measures
                }
            )
            basics_by_component.append(list(component.basic_measures()))
        early = self.config.early_aggregation

        def reducer(block_key, values, ctx):
            # A set, not a counter: fault-tolerant retries may re-run a
            # block, but it still counts once toward calibration.
            served_blocks.add(block_key)
            component_index = block_key[0]
            component_block = block_key[1:]
            evaluator = evaluators[component_index]
            stats = LocalStats()
            if early:
                tables = _merge_partials(
                    basics_by_component[component_index], values
                )
                ctx.charge_sort(
                    len(values), len(values) * _PARTIAL_STATE_BYTES
                )
                result = evaluator.evaluate(basic_tables=tables, stats=stats)
                ctx.charge_eval(len(values))
            else:
                ctx.charge_sort(len(values), len(values) * record_bytes)
                result = evaluator.evaluate(values, stats=stats)
                ctx.charge_eval(stats.records + stats.output_rows)
            local_stats.merge(stats)

            component_filters = filters[component_index]
            for name, table in result.items():
                keep = component_filters[name](component_block)
                for coords, value in table.items():
                    if keep(coords):
                        yield (name, coords, value)

        return reducer

    # -- whole query ----------------------------------------------------------------------

    def evaluate(
        self,
        workflow: Workflow,
        data: Sequence[Record] | DistributedFile,
        plan: QueryPlan | Plan | None = None,
        key_cache: KeyCache | None = None,
        cancel: CancellationToken | None = None,
    ) -> ParallelResult:
        """Evaluate *workflow* over *data*; returns results and the trace.

        A pre-built *plan* bypasses the optimizer (used by benchmarks to
        sweep clustering factors); otherwise the optimizer plans with the
        configured strategy, consulting *key_cache* when given.

        *cancel* (a :class:`repro.parallel.cancel.CancellationToken`)
        makes the evaluation cooperative: the token is checked before
        planning, per map task, and per reduced block, and a tripped
        token unwinds the run with
        :class:`~repro.parallel.cancel.DeadlineExceededError`.
        """
        if self.config.early_aggregation and not (
            workflow.supports_early_aggregation()
        ):
            raise ValueError(
                "this workflow does not support early aggregation: every "
                "basic measure must be distributive or algebraic, and "
                "every parent/child-only composite needs a finer basic "
                "measure in its component to anchor its regions"
            )

        if cancel is not None:
            cancel.check()
        if self.config.kernels is not None:
            # The kernels mode is process-wide (worker dispatch tables
            # are module state); restore the caller's mode on exit so
            # one evaluator's knob cannot leak into another's run.
            previous_mode = kernels.kernels_mode()
            kernels.set_kernels_mode(self.config.kernels)
            try:
                return self._evaluate(workflow, data, plan, key_cache, cancel)
            finally:
                kernels.set_kernels_mode(previous_mode)
        return self._evaluate(workflow, data, plan, key_cache, cancel)

    def _evaluate(
        self,
        workflow: Workflow,
        data: Sequence[Record] | DistributedFile,
        plan: QueryPlan | Plan | None,
        key_cache: KeyCache | None,
        cancel: CancellationToken | None,
    ) -> ParallelResult:
        """The evaluation body; runs under the resolved kernels mode."""
        with self.tracer.span(
            "evaluate-query", measures=len(workflow)
        ) as root:
            input_file = self._resolve_input(data)
            with self.tracer.span("optimize") as optimize_span:
                query_plan = self._resolve_plan(
                    workflow, input_file, plan, key_cache
                )
                optimize_span.set(
                    components=len(query_plan.subplans),
                    predicted_max_load=query_plan.predicted_max_load,
                    plan=query_plan.describe(),
                )

            record_bytes = estimated_record_bytes(workflow.schema)
            local_stats = LocalStats()
            served_blocks: set = set()
            use_columnar = self.config.columnar
            if use_columnar is None:
                use_columnar = vectorized_supports(workflow)
            columnar_stats = (
                ColumnarStats(kernels_backend=kernels.kernels_backend())
                if use_columnar
                else None
            )
            mapper = self._make_mapper(query_plan)
            reducer = self._make_reducer(
                query_plan, record_bytes, local_stats, served_blocks
            )
            map_batch = (
                self._make_map_batch(
                    query_plan, record_bytes, columnar_stats
                )
                if use_columnar
                else None
            )
            if cancel is not None:
                cancel.check()
                mapper = _cancellable(mapper, cancel)
                reducer = _cancellable(reducer, cancel)
                if map_batch is not None:
                    map_batch = _cancellable(map_batch, cancel)
            job = MapReduceJob(
                mapper=mapper,
                reducer=reducer,
                num_reducers=query_plan.num_reducers,
                combiner=(
                    self._make_combiner(query_plan)
                    if self.config.early_aggregation
                    else None
                ),
                partitioner=self._make_partitioner(query_plan),
                map_batch=map_batch,
                record_bytes=record_bytes,
                value_bytes=_value_bytes(record_bytes),
                combined_sort=self.config.combined_sort,
                name="composite-query",
            )
            logger.info(
                "evaluating %d measures over %d records: %s",
                len(workflow),
                input_file.num_records,
                query_plan.describe(),
            )
            job_result = job.run(
                input_file,
                self.cluster,
                tracer=self.tracer,
                telemetry=self.telemetry,
            )
            logger.info("job finished: %s", job_result.report.summary())

            result = union_outputs(workflow, job_result.outputs)
            calibration = CalibrationReport.from_run(
                query_plan,
                job_result.report,
                record_bytes=record_bytes,
                key_bytes=KEY_BYTES,
                early_aggregation=self.config.early_aggregation,
                actual_blocks=len(served_blocks),
            )
            root.set_sim(0.0, job_result.report.response_time)
            root.set(rows=result.total_rows())
            root.set(calibration_error=calibration.max_load_error)
            if columnar_stats is not None:
                root.set(columnar=columnar_stats.to_dict())
        if self.metrics is not None:
            self._record_metrics(query_plan, job_result.report, calibration)
            if columnar_stats is not None:
                for name, value in columnar_stats.to_dict().items():
                    if isinstance(value, (int, float)):
                        self.metrics.inc(f"columnar.{name}", value)
        for load in job_result.report.reducer_loads:
            self.telemetry.observe("job.reducer_load", load)
        self.telemetry.set_gauge(
            "job.response_time", job_result.report.response_time
        )
        self.telemetry.inc("job.completed")
        return ParallelResult(
            result=result,
            plan=query_plan,
            job=job_result.report,
            local_stats=local_stats,
            columnar=columnar_stats,
            calibration=calibration,
        )

    def _record_metrics(
        self, query_plan: QueryPlan, report, calibration=None
    ) -> None:
        """Feed one job's outcome into the attached metrics registry."""
        metrics = self.metrics
        metrics.record_job_counters(report.counters)
        if calibration is not None:
            for name in (
                "max_load_error",
                "shipped_records_error",
                "shuffle_bytes_error",
                "blocks_error",
            ):
                value = getattr(calibration, name)
                if value is not None:
                    metrics.set_gauge(f"calibration.{name}", value)
        for load in report.reducer_loads:
            metrics.observe("job.reducer_load", load)
        metrics.set_gauge("job.response_time", report.response_time)
        metrics.set_gauge("job.map_makespan", report.map_makespan)
        metrics.set_gauge("job.reduce_makespan", report.reduce_makespan)
        metrics.set_gauge("job.load_imbalance", report.load_imbalance)
        metrics.set_gauge("job.actual_max_load", report.max_reducer_load)
        metrics.set_gauge(
            "optimizer.predicted_max_load", query_plan.predicted_max_load
        )
        for index, (_component, subplan) in enumerate(query_plan.subplans):
            prefix = f"optimizer.component{index}."
            metrics.set_gauge(
                prefix + "predicted_max_load", subplan.predicted_max_load
            )
            metrics.set_gauge(prefix + "blocks", subplan.scheme.num_blocks())
            metrics.inc(
                prefix + "candidates_considered",
                subplan.candidates_considered,
            )
            for attr, cf in subplan.scheme.clustering_factors.items():
                metrics.set_gauge(prefix + f"cf.{attr}", cf)


def _cancellable(fn, cancel: CancellationToken):
    """Check *cancel* before every call into *fn* (map task, block)."""

    def guarded(*args, **kwargs):
        cancel.check()
        return fn(*args, **kwargs)

    return guarded


def _merge_partials(basics, values) -> dict[str, MeasureTable]:
    """Merge shipped accumulator states into basic measure tables.

    States merge in sorted (measure, region) order so results are
    deterministic regardless of shuffle arrival order.  For float-valued
    algebraic aggregates the merge order still differs from the
    centralized per-record fold, so values may differ from a non-early
    run by floating-point rounding -- an inherent property of partial
    aggregation, not of this implementation.
    """
    merged: list[dict[tuple, object]] = [{} for _ in basics]
    for value in sorted(values, key=lambda v: (v[1], v[2])):
        tag, index, coords, state = value
        if tag != _PARTIAL:
            raise ValueError(
                "early aggregation reducer received a raw record; "
                "the combiner did not run"
            )
        measure = basics[index]
        existing = merged[index].get(coords)
        merged[index][coords] = (
            state
            if existing is None
            else measure.aggregate.merge(existing, state)
        )
    return {
        measure.name: MeasureTable(
            measure.granularity,
            {
                coords: measure.aggregate.finalize(state)
                for coords, state in merged[index].items()
            },
        )
        for index, measure in enumerate(basics)
    }


def _value_bytes(record_bytes: int):
    def size(value) -> int:
        if isinstance(value, tuple) and value and value[0] == _PARTIAL:
            return _PARTIAL_STATE_BYTES
        return record_bytes

    return size


def union_outputs(workflow: Workflow, outputs) -> ResultSet:
    """Union per-block ``(measure, coords, value)`` rows.

    Fails loudly on any duplicated region -- the invariant a feasible
    distribution scheme guarantees.  Shared by every backend that
    gathers per-block results.
    """
    tables = {
        measure.name: MeasureTable(measure.granularity)
        for measure in workflow.measures
    }
    for name, coords, value in outputs:
        table = tables[name]
        if coords in table:
            raise DuplicateResultError(
                f"measure {name!r} produced region {coords!r} from two "
                "different blocks; the distribution scheme is not feasible"
            )
        table[coords] = value
    return ResultSet(tables)
