"""Parallel evaluation: one-round executor, baselines, adaptivity."""

from repro.parallel.adaptive import (
    AdaptiveDecision,
    AdaptiveEvaluator,
    AdaptiveResult,
)
from repro.parallel.cancel import (
    CancellationToken,
    DeadlineExceededError,
)
from repro.parallel.executor import (
    DuplicateResultError,
    ExecutionConfig,
    ParallelEvaluator,
)
from repro.parallel.multiprocess import (
    MultiprocessEvaluator,
    MultiprocessReport,
)
from repro.parallel.naive import NaiveEvaluator
from repro.parallel.report import MultiJobResult, ParallelResult

__all__ = [
    "AdaptiveDecision",
    "AdaptiveEvaluator",
    "AdaptiveResult",
    "CancellationToken",
    "DeadlineExceededError",
    "DuplicateResultError",
    "ExecutionConfig",
    "MultiJobResult",
    "MultiprocessEvaluator",
    "MultiprocessReport",
    "NaiveEvaluator",
    "ParallelEvaluator",
    "ParallelResult",
]
