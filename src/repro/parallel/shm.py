"""Zero-copy shared-memory transport for the multiprocess shuffle.

The pickle transport serializes every bucket's column buffers, deflates
them, ships the bytes through the pool's IPC pipe, and inflates them
in the worker -- four copies of data that both sides could simply map.
This module replaces that path with POSIX shared memory
(:mod:`multiprocessing.shared_memory`): the driver writes each bucket's
arrays **once** into a segment, the worker attaches and builds
``np.ndarray`` views directly over the mapping, and only a tiny
:class:`ShmBucket` descriptor (segment name plus array offsets) crosses
the pipe.

Segments store arrays in their *evaluation* dtypes (int64 matrices,
float64 measures) rather than the compacted wire dtypes: a segment is
memory, not a network link, so the bytes saved by narrowing would be
repaid immediately with an up-cast copy in every worker.  Laying out
the int plane as one contiguous 2-D array means the worker's batch *is*
the mapping -- no per-column assembly at all.

Lifecycle discipline is the hard part of shm, so it is centralized
here:

* every segment is created through a :class:`SegmentRegistry`, which
  ref-counts in-flight attempts per task and guarantees ``unlink`` on
  success, failure, and chaos (``unlink_all`` runs in the evaluator's
  ``finally``, covering BrokenProcessPool rebuilds, worker kills,
  cancellation and degradation);
* the driver ``close()``\\ s its own mapping right after writing, so
  the only reference keeping the memory alive is the name -- and the
  registry owns the name;
* pool workers share the driver's ``resource_tracker`` (the tracker fd
  is inherited under fork and spawn alike), so a worker attach merely
  duplicates the driver's registration and the driver's ``unlink``
  clears it once -- and if the driver dies without unlinking, the
  tracker unlinks every registered segment at shutdown, the crash
  backstop of last resort;
* on Linux, unlinking while workers are still mapped is safe -- the
  kernel frees the memory when the last mapping goes away -- so the
  driver can release a task's segment the moment its result arrives,
  even if a speculative duplicate is still running.

:func:`leaked_segments` scans ``/dev/shm`` for this process family's
name prefix; the chaos harness asserts it returns nothing after every
fault scenario.
"""

from __future__ import annotations

import logging
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.cube.batches import Column, RecordBatch
from repro.cube.records import Schema

logger = logging.getLogger(__name__)

#: Every segment name starts with this; the leak scanner keys on it.
SEGMENT_PREFIX = "repro-shm"

#: Where POSIX shared memory surfaces as files (Linux).
_SHM_DIR = Path("/dev/shm")


def shm_available() -> bool:
    """Whether POSIX shared memory actually works on this platform."""
    try:
        probe = shared_memory.SharedMemory(create=True, size=8)
    except (OSError, ValueError, ImportError):
        return False
    probe.close()
    probe.unlink()
    return True


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of segments with our prefix still present in ``/dev/shm``.

    The chaos harness calls this after worker kills, pool rebuilds and
    SIGTERM drains: a non-empty answer means some path dropped a
    segment without unlinking it.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry.name
        for entry in _SHM_DIR.iterdir()
        if entry.name.startswith(prefix)
    )


def _aligned(nbytes: int) -> int:
    """Round a byte count up to an 8-byte boundary."""
    return -(-nbytes // 8) * 8


class _Layout:
    """Accumulates arrays into one contiguous 8-byte-aligned layout."""

    def __init__(self):
        self.entries: list[tuple[int, np.ndarray]] = []
        self.nbytes = 0

    def add(self, array: np.ndarray) -> int:
        """Reserve space for *array*; returns its segment offset."""
        array = np.ascontiguousarray(array)
        offset = self.nbytes
        self.entries.append((offset, array))
        self.nbytes += _aligned(array.nbytes)
        return offset

    def write(self, buf) -> None:
        view = np.frombuffer(buf, dtype=np.uint8)
        for offset, array in self.entries:
            flat = array.reshape(-1).view(np.uint8)
            view[offset:offset + flat.nbytes] = flat


class SegmentRegistry:
    """Driver-side owner of every shared-memory segment of one run.

    ``release`` unlinks a segment the moment its task's result arrives
    -- safe on Linux even while a speculative duplicate still has the
    mapping, and a duplicate that had not yet attached fails its
    attempt against an already-completed task, which the gather loop
    discards.  ``unlink_all`` (always run, via ``finally``) reclaims
    whatever chaos left behind: BrokenProcessPool rebuilds, worker
    kills, cancellation, degradation.  Both are idempotent -- double
    release and release-after-unlink_all are no-ops.
    """

    def __init__(self, prefix: str = SEGMENT_PREFIX):
        token = secrets.token_hex(4)
        self.prefix = f"{prefix}-{os.getpid()}-{token}"
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._serial = 0
        self.created_bytes = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """A fresh tracked segment (caller writes, then closes its map)."""
        self._serial += 1
        segment = shared_memory.SharedMemory(
            name=f"{self.prefix}-{self._serial}",
            create=True,
            size=max(1, nbytes),
        )
        self._segments[segment.name] = segment
        self.created_bytes += max(1, nbytes)
        return segment

    def release(self, name: str) -> None:
        """Unlink one segment; safe while workers are still mapped."""
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - driver views alive
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def unlink_all(self) -> None:
        """Reclaim every remaining segment (the ``finally`` backstop)."""
        for name in list(self._segments):
            self.release(name)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach that leaves ownership with the driver.

    CPython's ``SharedMemory`` registers the name with the
    ``resource_tracker`` even on attach -- but pool workers (fork and
    spawn alike) inherit the *driver's* tracker, whose name cache is a
    set: the worker's register collapses into the driver's original
    entry, and the driver's eventual ``unlink`` clears it exactly once.
    Unregistering here would strip that shared entry out from under the
    driver.  (The tracker doubles as the crash backstop: if the driver
    dies without unlinking, the tracker unlinks every registered
    segment at shutdown.)
    """
    return shared_memory.SharedMemory(name=name, create=False)


#: Array-slot codes: (dtype, element size) per stored plane.
_CODES = {"i8": np.int64, "f8": np.float64, "u1": np.uint8}


@dataclass(frozen=True)
class ShmBucket:
    """Picklable handle to one gather task's bucket in shared memory.

    Mirrors ``_ColumnarBucket`` structurally -- payload, block-key
    matrix, per-block counts and row indices -- but every array lives
    in the named segment at a recorded offset instead of in pickled
    buffers.  ``matrix`` describes the int plane as one 2-D array;
    typed payloads (float measures, dictionary strings, nulls) ship
    per-column slots instead.
    """

    segment: str
    nbytes: int
    length: int
    #: int plane: ``(rows, cols, offset)`` of one 2-D int64 array.
    matrix: tuple | None
    #: typed plane: per-column ``(code, offset)`` slots.
    columns: tuple = ()
    dictionaries: tuple = ()
    #: per-column validity: ``None`` or the offset of a uint8 array.
    validity: tuple = ()
    keys: tuple = (0, 0, 0)
    counts: tuple = (0, 0)
    indices: tuple = (0, 0)

    @staticmethod
    def build(
        registry: SegmentRegistry,
        batch: RecordBatch,
        bucket_blocks: list,
        row_maps: np.ndarray,
    ) -> "ShmBucket":
        """Write one bucket's arrays into a fresh segment.

        *batch* holds the bucket's deduplicated records,
        *bucket_blocks* its ``(block_key, payload row indices)``
        entries and *row_maps* the concatenated per-block indices into
        the payload (same shapes ``_ColumnarBucket.build`` takes).
        """
        layout = _Layout()
        matrix = batch.matrix
        columns_meta: list = []
        dictionaries: list = []
        validity_meta: list = []
        if matrix is not None:
            matrix = np.ascontiguousarray(matrix, dtype=np.int64)
            matrix_meta = (
                matrix.shape[0], matrix.shape[1], layout.add(matrix)
            )
        else:
            matrix_meta = None
            for index in range(batch.schema.width):
                column = batch.column_typed(index)
                code = (
                    "f8"
                    if np.issubdtype(column.values.dtype, np.floating)
                    else "i8"
                )
                offset = layout.add(
                    column.values.astype(_CODES[code], copy=False)
                )
                columns_meta.append((code, offset))
                dictionaries.append(column.dictionary)
                validity_meta.append(
                    None
                    if column.validity is None
                    else layout.add(column.validity.astype(np.uint8))
                )
        keys_matrix = np.ascontiguousarray(
            [key for key, _rows in bucket_blocks], dtype=np.int64
        )
        if keys_matrix.ndim == 1:  # pragma: no cover - no blocks
            keys_matrix = keys_matrix.reshape(0, 0)
        keys_meta = (
            keys_matrix.shape[0], keys_matrix.shape[1],
            layout.add(keys_matrix),
        )
        counts = np.asarray(
            [len(rows) for _key, rows in bucket_blocks], dtype=np.int64
        )
        counts_meta = (layout.add(counts), len(counts))
        indices = np.ascontiguousarray(row_maps, dtype=np.int64)
        indices_meta = (layout.add(indices), len(indices))

        segment = registry.create(layout.nbytes)
        try:
            layout.write(segment.buf)
        finally:
            # Drop the driver's mapping immediately: from here on the
            # registry owns the segment by name alone.
            segment.close()
        return ShmBucket(
            segment=segment.name,
            nbytes=layout.nbytes,
            length=len(batch),
            matrix=matrix_meta,
            columns=tuple(columns_meta),
            dictionaries=tuple(dictionaries),
            validity=tuple(validity_meta),
            keys=keys_meta,
            counts=counts_meta,
            indices=indices_meta,
        )

    def attach(self) -> "ShmBucketView":
        """Map the segment and build zero-copy array views (worker side)."""
        return ShmBucketView(self)


class ShmBucketView:
    """A worker's live view of a :class:`ShmBucket`.

    All arrays are views straight into the shared mapping -- nothing is
    copied until the evaluator fancy-indexes per-block slices.  Close
    **after** dropping every derived array: a mapping with live views
    cannot be unmapped, and :meth:`close` falls back to leaking the map
    (reclaimed at worker exit) rather than failing the task.
    """

    def __init__(self, bucket: ShmBucket):
        self.bucket = bucket
        self._segment = attach_segment(bucket.segment)

    def _array(self, code: str, offset: int, count: int) -> np.ndarray:
        return np.frombuffer(
            self._segment.buf, dtype=_CODES[code], count=count,
            offset=offset,
        )

    def batch(self, schema: Schema) -> RecordBatch:
        """The payload records as a zero-copy :class:`RecordBatch`."""
        bucket = self.bucket
        if bucket.matrix is not None:
            rows, cols, offset = bucket.matrix
            matrix = self._array("i8", offset, rows * cols).reshape(
                rows, cols
            )
            return RecordBatch(schema, matrix)
        columns = []
        for index, (code, offset) in enumerate(bucket.columns):
            values = self._array(code, offset, bucket.length)
            validity_offset = bucket.validity[index]
            validity = (
                None
                if validity_offset is None
                else self._array(
                    "u1", validity_offset, bucket.length
                ).view(bool)
            )
            columns.append(
                Column(values, bucket.dictionaries[index], validity)
            )
        return RecordBatch(schema, tuple(columns), length=bucket.length)

    def blocks(self) -> list:
        """The ``(block_key, row index array)`` entries (key tuples copy,
        index arrays stay views)."""
        rows, cols, offset = self.bucket.keys
        keys = self._array("i8", offset, rows * cols).reshape(rows, cols)
        counts_offset, num_blocks = self.bucket.counts
        counts = self._array("i8", counts_offset, num_blocks)
        indices_offset, total = self.bucket.indices
        indices = self._array("i8", indices_offset, total)
        offsets = np.zeros(num_blocks + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return [
            (
                tuple(int(value) for value in keys[i]),
                indices[offsets[i]:offsets[i + 1]],
            )
            for i in range(num_blocks)
        ]

    def close(self) -> None:
        """Unmap the segment; never raises into the task."""
        try:
            self._segment.close()
        except BufferError:  # views still alive: leak until worker exit
            logger.warning(
                "shm segment %s still referenced at close; "
                "unmapping deferred to process exit",
                self.bucket.segment,
            )
