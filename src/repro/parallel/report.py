"""Execution reports returned by the parallel and naive evaluators."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.local.measure_table import ResultSet
from repro.local.sortscan import LocalStats
from repro.mapreduce.counters import JobReport, PhaseBreakdown
from repro.obs.calibration import CalibrationReport
from repro.optimizer.optimizer import QueryPlan


@dataclass
class ColumnarStats:
    """Map-side columnar accounting for one parallel evaluation.

    ``batch_tasks``/``fallback_tasks`` count whole map tasks routed
    through the columnar fast path versus ones whose records could not
    be represented as an integer batch; ``vector_groups``/
    ``scalar_groups`` split the early-aggregation block groups between
    the reduceat-based combiner and its per-record scalar fallback.
    ``kernels_backend`` names the compiled-kernel backend the evaluation
    resolved to (``"numba"`` or ``"numpy"``) under the run's tri-state
    kernels mode.
    """

    batch_tasks: int = 0
    batch_records: int = 0
    fallback_tasks: int = 0
    fallback_records: int = 0
    vector_groups: int = 0
    scalar_groups: int = 0
    kernels_backend: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class ParallelResult:
    """Result and full execution trace of one parallel evaluation."""

    result: ResultSet
    plan: QueryPlan
    job: JobReport
    local_stats: LocalStats
    columnar: ColumnarStats | None = None
    #: Cost-model audit: Formula 2/4 predictions joined against this
    #: run's measured loads (attached by the parallel executor).
    calibration: CalibrationReport | None = None

    @property
    def response_time(self) -> float:
        """Simulated end-to-end response time, in seconds."""
        return self.job.response_time

    @property
    def breakdown(self) -> PhaseBreakdown:
        return self.job.breakdown

    def describe(self) -> str:
        return (
            f"plan: {self.plan.describe()}\n"
            f"job:  {self.job.summary()}\n"
            f"rows: {self.result.total_rows()} across "
            f"{len(self.result.tables)} measures"
        )


@dataclass
class MultiJobResult:
    """Result of a multi-job (naive) evaluation plan."""

    result: ResultSet
    jobs: list[JobReport] = field(default_factory=list)

    @property
    def response_time(self) -> float:
        """Jobs run back to back; the response time is their sum."""
        return sum(job.response_time for job in self.jobs)

    @property
    def total_shuffled_bytes(self) -> int:
        return sum(job.counters.shuffle_bytes for job in self.jobs)

    def describe(self) -> str:
        lines = [
            f"{len(self.jobs)} jobs, {self.response_time:.3f}s simulated total"
        ]
        lines.extend("  " + job.summary() for job in self.jobs)
        return "\n".join(lines)
