"""A process-parallel local backend with real fault tolerance.

The simulated cluster measures *what the paper measured*; this backend
demonstrates the paper's closing remark that the algorithm "can be
implemented in any OLAP system which supports scatter-and-gather": the
same plan -- feasible key, clustering factor, per-block local sort/scan,
owned-region filtering -- executed across real OS processes with
:mod:`concurrent.futures`.

Unlike a plain ``pool.map``, the gather side survives real failures the
way a MapReduce master does:

* a task attempt that raises is retried with exponential backoff and
  deterministic jitter, up to :class:`~repro.faults.RetryPolicy.
  max_attempts`;
* an attempt that outlives ``straggler_timeout`` earns a speculative
  duplicate; the first result wins and the loser is ignored, so the
  final union stays duplicate-free (owned-region filtering already
  guarantees block-disjoint outputs);
* a worker process dying (``BrokenProcessPool``) rebuilds the pool and
  re-runs only the unfinished blocks;
* an attempt exceeding ``task_timeout`` is abandoned and re-dispatched;
* when a block exhausts its budget the evaluator degrades gracefully:
  it falls back to :func:`repro.local.evaluate_centralized`, so the
  answer never changes -- only the speedup is lost.

Chaos is injected through the same :class:`~repro.faults.FaultPlan`
the simulator uses (see :func:`repro.faults.apply_chaos`): seeded
worker kills, injected failures, and stragglers exercise every one of
those recovery paths deterministically.

Workers rebuild the workflow from its serialized form (see
:mod:`repro.io`), so measures must use registry aggregates and *named*
combine expressions; anonymous lambdas cannot cross process boundaries.
Parameterized aggregates (quantiles, sketches) re-register themselves in
each worker through the factory list passed at pool start.

The result is bit-identical to :func:`repro.local.evaluate_centralized`
-- asserted by the test suite, including under chaos -- because the plan
machinery is shared with the simulated executor; only the transport (and
what can go wrong with it) differs.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_module
import time
from collections import defaultdict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.cube.batches import (
    ColumnPayload,
    RecordBatch,
    compact_array,
    decode_buffer,
    encode_buffer,
    estimated_pickle_bytes,
)
from repro.cube.records import Record, Schema
from repro import kernels
from repro.faults.inject import apply_chaos
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.io.serialize import workflow_from_dict, workflow_to_dict
from repro.local.measure_table import ResultSet
from repro.local.sortscan import BlockEvaluator, evaluate_centralized
from repro.local.vectorized import (
    VectorizedBlockEvaluator,
    vectorized_supports,
)
from repro.mapreduce.engine import stable_hash
from repro.obs.telemetry import NULL_TELEMETRY, sample_resources
from repro.obs.tracectx import (
    SpanCollector,
    TraceContext,
    fork_context,
    wire_span,
)
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.query.functions import Expression
from repro.query.workflow import Workflow, connected_components
from repro.parallel.cancel import CancellationToken
from repro.parallel.executor import union_outputs
from repro.parallel.shm import (
    SegmentRegistry,
    ShmBucket,
    shm_available,
)

#: Valid values of the transport knob.
TRANSPORT_MODES = ("auto", "shm", "pickle")

logger = logging.getLogger(__name__)

#: How often the gather loop wakes to check retries/stragglers (seconds).
_POLL_SECONDS = 0.02

# Worker-process state, set up once per pool by _init_worker.
_WORKER: dict = {}


#: Codec applied to every columnar wire buffer shipped to workers.
#: Block keys and sorted row indices are highly repetitive, so deflate
#: roughly halves the shipped bytes on top of dtype compaction.
_WIRE_CODEC = "zlib"


@dataclass(frozen=True)
class _ColumnarBucket:
    """One reducer's blocks in compact columnar wire form.

    The payload holds each record the bucket needs exactly once (blocks
    within a bucket overlap heavily under annotated keys).  The block
    structure itself is columnar too -- the block-key matrix travels as
    a :class:`ColumnPayload` (each key column in its smallest covering
    dtype), next to one per-block count array and one concatenated
    row-index buffer -- so a bucket of thousands of small blocks
    pickles as a handful of byte buffers instead of thousands of
    per-block tuples and lists.
    """

    payload: ColumnPayload
    keys: ColumnPayload
    counts_dtype: str
    counts: bytes
    index_dtype: str
    indices: bytes
    codec: str = "raw"

    @staticmethod
    def build(
        payload: ColumnPayload,
        bucket_blocks: list,
        row_maps: np.ndarray,
        codec: str = "raw",
    ) -> "_ColumnarBucket":
        """Pack ``(block_key, payload row indices)`` entries for the wire."""
        keys_matrix = np.asarray(
            [key for key, _rows in bucket_blocks], dtype=np.int64
        )
        counts = np.asarray(
            [len(rows) for _key, rows in bucket_blocks], dtype=np.int64
        )
        counts_dtype, counts_bytes = compact_array(counts)
        index_dtype, indices = compact_array(row_maps)
        return _ColumnarBucket(
            payload=payload,
            keys=ColumnPayload.from_matrix(keys_matrix, codec=codec),
            counts_dtype=counts_dtype,
            counts=encode_buffer(counts_bytes, codec),
            index_dtype=index_dtype,
            indices=encode_buffer(indices, codec),
            codec=codec,
        )

    def unpack(self) -> list:
        """Rebuild the ``(block_key, row index array)`` entries."""
        keys = self.keys.to_matrix()
        counts = np.frombuffer(
            decode_buffer(self.counts, self.codec),
            dtype=np.dtype(self.counts_dtype),
        )
        indices = np.frombuffer(
            decode_buffer(self.indices, self.codec),
            dtype=np.dtype(self.index_dtype),
        )
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return [
            (
                tuple(int(value) for value in keys[i]),
                indices[offsets[i]:offsets[i + 1]],
            )
            for i in range(self.keys.length)
        ]


def _init_worker(
    workflow_data: dict,
    schema: Schema,
    scheme_specs: list,
    expressions: Optional[Mapping[str, Expression]],
    function_factories: Sequence[tuple],
    telemetry_queue=None,
    kernels_mode: str = "auto",
    trace_ctx: Optional[dict] = None,
) -> None:
    """Rebuild the workflow, evaluators and filters inside a worker."""
    # The driver's kernels knob must cross the process boundary: a
    # forced mode ("on"/"off") applies to worker evaluation too.
    kernels.set_kernels_mode(kernels_mode)
    for factory_path, args in function_factories:
        module_name, _, attr = factory_path.rpartition(".")
        module = __import__(module_name, fromlist=[attr])
        getattr(module, attr)(*args)

    workflow = workflow_from_dict(workflow_data, schema, expressions)
    from repro.distribution.clustering import BlockScheme
    from repro.distribution.keys import DistributionKey, KeyComponent

    # Serialization may reorder measures (topological emit), so the
    # rebuilt components can come back in a different order than the
    # driver enumerated them; match by measure-name set, never by
    # position -- block keys carry the DRIVER's component indices.
    by_names = {
        frozenset(component.names): component
        for component in connected_components(workflow)
    }
    evaluators = []
    vector_evaluators = []
    filters = []
    for names, key_spec, factors in scheme_specs:
        component = by_names[frozenset(names)]
        key = DistributionKey(
            schema, tuple(KeyComponent(*spec) for spec in key_spec)
        )
        scheme = BlockScheme(key, dict(factors))
        evaluators.append(BlockEvaluator(component))
        vector_evaluators.append(VectorizedBlockEvaluator(component))
        filters.append(
            {
                measure.name: scheme.make_result_filter(measure.granularity)
                for measure in component.measures
            }
        )
    _WORKER["schema"] = schema
    _WORKER["evaluators"] = evaluators
    _WORKER["vector_evaluators"] = vector_evaluators
    _WORKER["filters"] = filters
    # Telemetry channel: cumulative totals since worker start, flushed
    # with a monotone sequence number after every finished task.
    _WORKER["telemetry_queue"] = telemetry_queue
    _WORKER["telemetry_seq"] = 0
    _WORKER["telemetry_counters"] = {"tasks": 0, "rows": 0, "blocks": 0}
    # Trace propagation: the driver's execution-span context, received
    # on the wire.  Task-attempt spans parent under it and ride the
    # telemetry channel inside a bounded ring (the worker-side flight
    # recorder) as (seq, span) pairs, so redelivery dedups cleanly.
    _WORKER["trace_ctx"] = trace_ctx
    _WORKER["trace_spans"] = deque(maxlen=128)
    _WORKER["trace_seq"] = 0


def _flush_worker_telemetry() -> None:
    """Push this worker's cumulative totals to the driver, best-effort.

    Totals (never increments) ride with a per-worker sequence number,
    so the driver's merge is idempotent: a flush delivered twice or a
    worker killed before its next flush can neither double-count nor
    corrupt what was already acknowledged -- at worst the final window
    of a dead worker goes unreported.  Queue trouble (driver gone,
    shutdown races) is swallowed: telemetry must never fail a task.
    """
    channel = _WORKER.get("telemetry_queue")
    if channel is None:
        return
    _WORKER["telemetry_seq"] += 1
    delta = {
        "worker": f"w{os.getpid()}",
        "seq": _WORKER["telemetry_seq"],
        "counters": dict(_WORKER["telemetry_counters"]),
        "resources": sample_resources().to_dict(),
    }
    ring = _WORKER.get("trace_spans")
    if ring:
        # The whole recent window every flush: at-least-once delivery,
        # deduplicated driver-side by per-span sequence number.
        delta["spans"] = list(ring)
    try:
        channel.put_nowait(delta)
    except Exception:
        pass


def _record_task_span(task: int, attempt: int, started: float,
                      **attributes) -> None:
    """Ring one finished (or failed) task attempt as a context span."""
    ctx = _WORKER.get("trace_ctx")
    ring = _WORKER.get("trace_spans")
    if ctx is None or ring is None:
        return
    _WORKER["trace_seq"] += 1
    span = wire_span(
        ctx,
        "mp-task",
        started,
        time.time(),
        process=f"w{os.getpid()}",
        task=task,
        attempt=attempt,
        **attributes,
    )
    ring.append((_WORKER["trace_seq"], span))


def _reduce_bucket(bucket) -> list:
    """Evaluate one reducer's blocks; runs inside a worker process."""
    if isinstance(bucket, ShmBucket):
        return _reduce_shm_bucket(bucket)
    if isinstance(bucket, _ColumnarBucket):
        return _reduce_columnar_bucket(bucket)
    rows = []
    for block_key, records in bucket:
        component_index = block_key[0]
        evaluator = _WORKER["evaluators"][component_index]
        component_filters = _WORKER["filters"][component_index]
        result = evaluator.evaluate(records)
        for name, table in result.items():
            keep = component_filters[name](block_key[1:])
            rows.extend(
                (name, coords, value)
                for coords, value in table.items()
                if keep(coords)
            )
    return rows


def _reduce_columnar_bucket(bucket: _ColumnarBucket) -> list:
    """Evaluate one columnar bucket: rebuild columns, slice per block.

    The batch deserializes with one ``frombuffer`` per column; each
    block is a fancy-indexed slice handed to the vectorized evaluator,
    which falls back to the scalar path internally whenever it cannot
    produce bit-identical results.
    """
    batch = bucket.payload.to_batch(_WORKER["schema"])
    rows = []
    for block_key, block_rows in bucket.unpack():
        component_index = block_key[0]
        evaluator = _WORKER["vector_evaluators"][component_index]
        component_filters = _WORKER["filters"][component_index]
        result = evaluator.evaluate(batch.take(block_rows))
        for name, table in result.items():
            keep = component_filters[name](block_key[1:])
            rows.extend(
                (name, coords, value)
                for coords, value in table.items()
                if keep(coords)
            )
    return rows


def _evaluate_shm_view(view) -> list:
    """Evaluate every block of an attached shm bucket.

    Separated from :func:`_reduce_shm_bucket` so that when this frame
    returns, every array view into the shared mapping is dead and the
    caller's ``close()`` can actually unmap the segment.
    """
    batch = view.batch(_WORKER["schema"])
    rows = []
    for block_key, block_rows in view.blocks():
        component_index = block_key[0]
        evaluator = _WORKER["vector_evaluators"][component_index]
        component_filters = _WORKER["filters"][component_index]
        result = evaluator.evaluate(batch.take(block_rows))
        for name, table in result.items():
            keep = component_filters[name](block_key[1:])
            rows.extend(
                (name, coords, value)
                for coords, value in table.items()
                if keep(coords)
            )
    return rows


def _reduce_shm_bucket(bucket: ShmBucket) -> list:
    """Evaluate one shm bucket: attach, view, evaluate, unmap.

    The segment is driver-owned; this side only maps it.  Per-block
    evaluation is byte-for-byte the columnar-pickle path -- the batch
    merely arrives as views over the shared mapping instead of arrays
    inflated from pickled buffers.
    """
    view = bucket.attach()
    try:
        return _evaluate_shm_view(view)
    finally:
        view.close()


def _bucket_block_count(bucket) -> int:
    """How many blocks one gather bucket carries (any transport)."""
    if isinstance(bucket, ShmBucket):
        return bucket.counts[1]
    if isinstance(bucket, _ColumnarBucket):
        return bucket.keys.length
    return len(bucket)


def _run_task(
    task: int,
    attempt: int,
    bucket: list,
    plan: Optional[FaultPlan],
) -> tuple[int, list]:
    """One task attempt inside a worker: inject chaos, then evaluate."""
    tracing = _WORKER.get("trace_ctx") is not None
    started = time.time() if tracing else 0.0
    try:
        if plan is not None:
            apply_chaos(plan, task, attempt)
        rows = _reduce_bucket(bucket)
    except BaseException as exc:
        # A failed attempt still leaves a span behind -- best effort:
        # the flush may not land before the process dies, but a chaos
        # *exception* (as opposed to a kill) usually gets through.
        if tracing:
            _record_task_span(task, attempt, started, error=repr(exc))
            _flush_worker_telemetry()
        raise
    if tracing:
        _record_task_span(task, attempt, started, rows=len(rows))
    counters = _WORKER.get("telemetry_counters")
    if _WORKER.get("telemetry_queue") is not None:
        if counters is not None:
            counters["tasks"] += 1
            counters["rows"] += len(rows)
            counters["blocks"] += _bucket_block_count(bucket)
        _flush_worker_telemetry()
    return task, rows


@dataclass
class MultiprocessReport:
    """What the process-parallel run actually did, recovery included."""

    processes: int
    partitions: int
    blocks: int
    replicated_records: int
    transport: str = "records"
    shipped_bytes: int = 0
    #: Bytes written into shared-memory segments (0 on pickle paths);
    #: the descriptors that still cross the pipe count as
    #: ``shipped_bytes``.
    shm_bytes: int = 0
    #: Driver wall seconds spent materializing the transport (pickling
    #: buckets, or writing shm segments).
    transport_seconds: float = 0.0
    tasks: int = 0
    attempts: int = 0
    retries: int = 0
    injected_failures: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    degraded: bool = False
    #: Wall seconds of retry backoff the driver sat out -- the latency
    #: ledger's ``retry_overhead`` phase.
    retry_wall_seconds: float = 0.0
    attempts_per_task: dict = field(default_factory=dict)
    #: Context-tagged span dicts for this run (the driver's execution
    #: span, retry events, and worker task attempts collected over the
    #: telemetry channel); empty unless a trace context was passed.
    trace_spans: list = field(default_factory=list)
    #: Per-worker telemetry sections (cumulative counters + final
    #: resource odometer), merged from the telemetry channel; empty
    #: when telemetry was off.  Shape matches
    #: :meth:`repro.obs.telemetry.TelemetryRegistry.worker_totals`.
    workers: dict = field(default_factory=dict)

    @property
    def transport_bytes(self) -> int:
        """Total bytes the scatter materialized (pipe + shm)."""
        return self.shipped_bytes + self.shm_bytes

    @property
    def transport_bytes_per_second(self) -> float:
        """Scatter throughput: transport bytes over driver wall time."""
        if self.transport_seconds <= 0:
            return 0.0
        return self.transport_bytes / self.transport_seconds

    def fault_summary(self) -> dict:
        """Recovery accounting in the shape run manifests record."""
        return {
            "tasks": self.tasks,
            "attempts": self.attempts,
            "retries": self.retries,
            "failures": self.injected_failures,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "speculative_launched": self.speculative_launched,
            "speculative_wins": self.speculative_wins,
            "degraded": self.degraded,
            "attempts_per_task": {
                str(task): count
                for task, count in sorted(self.attempts_per_task.items())
            },
        }


@dataclass
class _TaskState:
    """Driver-side bookkeeping for one gather task."""

    bucket: list
    failures: int = 0
    next_attempt: int = 0
    inflight: int = 0
    done: bool = False
    rows: Optional[list] = None


class MultiprocessEvaluator:
    """Evaluates workflows across OS processes (no simulation).

    Args:
        processes: Worker pool size; defaults to the CPU count.
        optimizer: Plan-search configuration (shared with the simulated
            executor -- the plan is identical, only execution differs).
        expressions: Named combine expressions needed to rebuild the
            workflow in workers (beyond the built-ins).
        function_factories: For parameterized registry aggregates
            (quantiles, sketches), ``("module.factory", (args,))`` pairs
            re-run in every worker so lookups by name succeed there.
        retry_policy: Retry/backoff/speculation knobs (wall-clock
            semantics); defaults to :class:`~repro.faults.RetryPolicy`.
        fault_plan: Optional chaos to inject into worker attempts --
            seeded kills, failures, stragglers (see
            :func:`repro.faults.apply_chaos`).
        tracer: Optional :class:`repro.obs.Tracer`; receives dispatch
            and recovery spans on the wall clock.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; receives
            attempt/retry/speculation counters.
        telemetry: Optional
            :class:`repro.obs.telemetry.TelemetryRegistry`; turns on
            the worker->driver channel -- workers flush cumulative
            counters and resource samples after every task, the gather
            loop merges them live, and the report/manifest gain a
            per-worker section.  Defaults to the no-op
            :data:`~repro.obs.telemetry.NULL_TELEMETRY`.
        transport: How columnar buckets reach workers: ``"auto"``
            (shared memory when the platform supports it, else
            deflated pickles), ``"shm"`` (require shared memory; raise
            when unavailable), or ``"pickle"`` (force the
            deflated-pickle path).  Record-list buckets always travel
            by pickle.
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        optimizer: OptimizerConfig | None = None,
        expressions: Optional[Mapping[str, Expression]] = None,
        function_factories: Sequence[tuple] = (),
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
        metrics=None,
        telemetry=None,
        transport: str = "auto",
    ):
        if transport not in TRANSPORT_MODES:
            raise ValueError(
                f"unknown transport {transport!r}; choose one of "
                f"{TRANSPORT_MODES}"
            )
        self.transport = transport
        self.processes = processes or os.cpu_count() or 2
        self.optimizer = Optimizer(optimizer or OptimizerConfig())
        self.expressions = expressions
        self.function_factories = tuple(function_factories)
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        #: Live span collector for the current traced run; the gather
        #: loop's telemetry drain feeds it worker span deliveries.
        self._span_collector: Optional[SpanCollector] = None

    def evaluate(
        self,
        workflow: Workflow,
        records: Sequence[Record],
        num_partitions: Optional[int] = None,
        columnar: Optional[bool] = None,
        cancel: CancellationToken | None = None,
        trace: Optional[TraceContext] = None,
    ) -> tuple[ResultSet, MultiprocessReport]:
        """Run the one-round plan over *records* with real processes.

        *columnar* selects the compact column-buffer transport for the
        scatter (default ``None`` auto-enables it when the workflow has
        vectorized aggregate support); data that cannot be represented
        as an integer batch falls back to record-list transport either
        way.

        *cancel* (a :class:`repro.parallel.cancel.CancellationToken`)
        is checked before the scatter and on every poll of the gather
        loop; a tripped token abandons the outstanding attempts (worker
        processes cannot be interrupted mid-task, so their results are
        simply ignored) and raises
        :class:`~repro.parallel.cancel.DeadlineExceededError`.

        *trace* (a :class:`repro.obs.tracectx.TraceContext`) propagates
        a query trace across the process boundary: the run records an
        execution span under it, workers tag every task attempt with
        the same trace id, and the collected spans come back on
        :attr:`MultiprocessReport.trace_spans`.
        """
        if cancel is not None:
            cancel.check()
        records = list(records)
        partitions = num_partitions or self.processes * 4
        sample = None
        if self.optimizer.config.use_sampling:
            from repro.optimizer.skew import sample_records

            sample = sample_records(
                records,
                self.optimizer.config.sample_size,
                self.optimizer.config.sample_seed,
            )
        plan = self.optimizer.plan_query(
            workflow, len(records), num_reducers=partitions, records=sample
        )
        logger.info(
            "dispatching %d records over %d processes: %s",
            len(records),
            self.processes,
            plan.describe(),
        )

        # Scatter: replicate records into blocks (driver side), then
        # group blocks into per-partition buckets by stable hash.
        use_columnar = (
            columnar
            if columnar is not None
            else vectorized_supports(workflow)
        )
        batch = (
            RecordBatch.from_records(workflow.schema, records)
            if use_columnar
            else None
        )
        if batch is not None and not batch.routable():
            # Typed dimension columns (strings/nulls) cannot be mapped
            # through hierarchy level arrays; ship record lists instead.
            batch = None
        if self.transport == "shm" and not shm_available():
            raise RuntimeError(
                "transport='shm' requested but POSIX shared memory is "
                "unavailable on this platform; use 'auto' or 'pickle'"
            )
        registry = None
        if batch is not None and self.transport != "pickle" and (
            self.transport == "shm" or shm_available()
        ):
            registry = SegmentRegistry()
        try:
            return self._evaluate_scattered(
                workflow, records, batch, plan, partitions, registry,
                cancel, trace,
            )
        finally:
            if registry is not None:
                registry.unlink_all()

    def _evaluate_scattered(
        self,
        workflow: Workflow,
        records: list,
        batch: Optional[RecordBatch],
        plan,
        partitions: int,
        registry: Optional[SegmentRegistry],
        cancel: CancellationToken | None,
        trace: Optional[TraceContext] = None,
    ) -> tuple[ResultSet, MultiprocessReport]:
        """Scatter into buckets, gather resiliently, union the answer.

        *registry*, when given, selects shared-memory transport for the
        columnar buckets; the caller guarantees ``unlink_all`` runs
        whatever happens here.
        """
        if batch is not None:
            buckets, num_blocks, replicated, transport_seconds = (
                self._scatter_columnar(batch, plan, partitions, registry)
            )
            transport = "shm" if registry is not None else "columnar"
        else:
            blocks: dict[tuple, list] = defaultdict(list)
            for index, (_component, subplan) in enumerate(plan.subplans):
                mapper = subplan.scheme.make_mapper()
                for record in records:
                    for block_key in mapper(record):
                        blocks[(index,) + block_key].append(record)
            buckets = [[] for _ in range(partitions)]
            replicated = 0
            for block_key, block_records in blocks.items():
                replicated += len(block_records)
                buckets[stable_hash(block_key) % partitions].append(
                    (block_key, block_records)
                )
            num_blocks = len(blocks)
            transport = "records"
            transport_seconds = None

        scheme_specs = [
            (
                tuple(component.names),
                tuple(
                    (c.level, c.low, c.high)
                    for c in subplan.scheme.key.components
                ),
                tuple(sorted(subplan.scheme.clustering_factors.items())),
            )
            for component, subplan in plan.subplans
        ]
        # Telemetry channel: a managed queue is picklable into worker
        # initargs (a plain multiprocessing.Queue is not); the manager
        # process only exists while telemetry or tracing is on (worker
        # spans ride the same channel as counters).
        manager = None
        telemetry_queue = None
        if self.telemetry.enabled or trace is not None:
            manager = multiprocessing.Manager()
            telemetry_queue = manager.Queue()

        exec_ctx = None
        collector = None
        if trace is not None:
            exec_ctx = fork_context(trace)
            collector = SpanCollector()
            self._span_collector = collector
        exec_start = time.time()

        init_args = (
            workflow_to_dict(workflow, expressions=self.expressions),
            workflow.schema,
            scheme_specs,
            self.expressions,
            self.function_factories,
            telemetry_queue,
            kernels.kernels_mode(),
            exec_ctx.to_wire() if exec_ctx is not None else None,
        )

        # Gather: one task per non-empty bucket, with retries,
        # speculation, pool rebuilds and a centralized fallback.
        work = [bucket for bucket in buckets if bucket]
        measure_started = time.perf_counter()
        shipped_bytes = sum(
            estimated_pickle_bytes(bucket) for bucket in work
        )
        if transport_seconds is None:
            # Record-list transport: serializing the buckets IS the
            # materialization cost, so the measurement doubles as it.
            transport_seconds = time.perf_counter() - measure_started
        report = MultiprocessReport(
            processes=self.processes,
            partitions=partitions,
            blocks=num_blocks,
            replicated_records=replicated,
            transport=transport,
            shipped_bytes=shipped_bytes,
            shm_bytes=registry.created_bytes if registry else 0,
            transport_seconds=transport_seconds,
            tasks=len(work),
        )
        self.telemetry.phase("mp-tasks", 0, len(work))
        self.telemetry.set_gauge("mp.shipped_bytes", report.shipped_bytes)
        self.telemetry.set_gauge("mp.shm_bytes", report.shm_bytes)
        self.telemetry.set_gauge(
            "mp.transport_bytes_per_s", report.transport_bytes_per_second
        )

        def release_bucket(bucket) -> None:
            # Eager reclamation: the moment a task's result is in, its
            # segment can go -- Linux keeps the memory alive for any
            # straggling duplicate that already mapped it.
            if registry is not None and isinstance(bucket, ShmBucket):
                registry.release(bucket.segment)

        try:
            with self.tracer.span(
                "mp-evaluate", tasks=len(work), processes=self.processes
            ):
                row_lists = self._gather_resilient(
                    work, init_args, report,
                    telemetry_queue=telemetry_queue,
                    cancel=cancel,
                    release=release_bucket,
                    trace_ctx=exec_ctx,
                )
                self._drain_telemetry(telemetry_queue)
                report.workers = self.telemetry.worker_totals()
                if row_lists is None:
                    # Graceful degradation: some block exhausted its
                    # retry budget.  The centralized oracle computes
                    # the same answer -- we lose the speedup, never
                    # the result.
                    logger.warning(
                        "multiprocess gather degraded after %d retries; "
                        "falling back to centralized evaluation",
                        report.retries,
                    )
                    report.degraded = True
                    with self.tracer.span(
                        "mp-degrade", retries=report.retries
                    ):
                        result = evaluate_centralized(workflow, records)
                    self._record_metrics(report)
                    return result, report
        finally:
            if exec_ctx is not None:
                # The run's execution span closes AS the forked context
                # (id = exec_ctx.span_id), so worker task spans -- its
                # children -- attach whatever path returned above.
                report.trace_spans.extend(collector.spans)
                report.trace_spans.append({
                    "name": "mp-evaluate",
                    "trace_id": exec_ctx.trace_id,
                    "span_id": exec_ctx.span_id,
                    "parent_id": exec_ctx.parent_id,
                    "wall_start": exec_start,
                    "wall_end": time.time(),
                    "process": f"pid{os.getpid()}",
                    "links": [list(link) for link in exec_ctx.links],
                    "attributes": {
                        "tasks": len(work),
                        "processes": self.processes,
                        "retries": report.retries,
                        "degraded": report.degraded,
                    },
                })
                self._span_collector = None
            if manager is not None:
                manager.shutdown()

        result = union_outputs(
            workflow, (row for rows in row_lists for row in rows)
        )
        self._record_metrics(report)
        return result, report

    # -- columnar scatter ----------------------------------------------------------

    @staticmethod
    def _scatter_columnar(
        batch: RecordBatch,
        plan,
        partitions: int,
        registry: Optional[SegmentRegistry] = None,
    ) -> tuple[list, int, int, float]:
        """Route one batch into per-partition columnar buckets.

        Returns ``(buckets, num_blocks, replicated_records,
        materialize_seconds)``.  Each non-empty bucket ships every
        record it needs exactly once (its blocks overlap under
        annotated keys) with per-block row indices into that payload --
        as deflated column buffers when *registry* is ``None``, or
        written once into a shared-memory segment otherwise (only the
        :class:`ShmBucket` descriptor then crosses the pipe).
        ``materialize_seconds`` is the wall time spent building the
        transport form, excluding the routing shared by both.
        """
        block_rows: dict[tuple, np.ndarray] = {}
        for index, (_component, subplan) in enumerate(plan.subplans):
            router = subplan.scheme.make_batch_router()
            for block_key, rows in router(batch, (index,)):
                block_rows[block_key] = rows

        grouped: list[list] = [[] for _ in range(partitions)]
        replicated = 0
        for block_key, rows in block_rows.items():
            replicated += len(rows)
            grouped[stable_hash(block_key) % partitions].append(
                (block_key, rows)
            )

        buckets: list = []
        materialize_seconds = 0.0
        for bucket_blocks in grouped:
            if not bucket_blocks:
                buckets.append([])
                continue
            all_rows = np.concatenate(
                [rows for _key, rows in bucket_blocks]
            )
            unique_rows = np.unique(all_rows)
            row_maps = np.searchsorted(unique_rows, all_rows)
            started = time.perf_counter()
            sub_batch = batch.take(unique_rows)
            if registry is not None:
                buckets.append(
                    ShmBucket.build(
                        registry, sub_batch, bucket_blocks, row_maps
                    )
                )
            else:
                buckets.append(
                    _ColumnarBucket.build(
                        sub_batch.to_payload(codec=_WIRE_CODEC),
                        bucket_blocks,
                        row_maps,
                        codec=_WIRE_CODEC,
                    )
                )
            materialize_seconds += time.perf_counter() - started
        return buckets, len(block_rows), replicated, materialize_seconds

    # -- resilient gather loop ---------------------------------------------------

    def _gather_resilient(
        self,
        work: Sequence[list],
        init_args: tuple,
        report: MultiprocessReport,
        telemetry_queue=None,
        cancel: CancellationToken | None = None,
        release=None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> Optional[list[list]]:
        """Run every bucket to completion; ``None`` means degrade.

        The loop mirrors a MapReduce master: dispatch, watch, retry
        with backoff, speculate on stragglers, rebuild the pool when a
        worker dies, and give up (gracefully) only when a task's whole
        budget is spent.
        """
        if not work:
            return []
        policy = self.retry_policy
        plan = self.fault_plan
        seed = plan.seed if plan is not None else 0
        tasks = {index: _TaskState(bucket) for index, bucket in
                 enumerate(work)}
        pool = self._new_pool(init_args)
        futures: dict = {}  # future -> (task, attempt, submitted_at, backup)
        retry_at: dict[int, float] = {}  # task -> wall deadline
        unfinished = set(tasks)

        def submit(task: int, *, backup: bool = False) -> None:
            state = tasks[task]
            attempt = state.next_attempt
            state.next_attempt += 1
            state.inflight += 1
            report.attempts += 1
            report.attempts_per_task[task] = (
                report.attempts_per_task.get(task, 0) + 1
            )
            future = pool.submit(
                _run_task, task, attempt, state.bucket, plan
            )
            futures[future] = (task, attempt, time.monotonic(), backup)

        def register_failure(task: int, why: str) -> bool:
            """Count a failure; ``False`` means the budget is spent."""
            state = tasks[task]
            state.failures += 1
            if state.failures >= policy.max_attempts:
                logger.error(
                    "task %d exhausted %d attempts (last: %s)",
                    task, state.failures, why,
                )
                return False
            delay = policy.backoff(
                state.failures, seed, salt=f"mp:{task}"
            )
            report.retries += 1
            report.retry_wall_seconds += delay
            retry_at[task] = time.monotonic() + delay
            with self.tracer.span(
                "mp-retry", task=task, failures=state.failures,
                backoff=delay, error=why,
            ):
                pass
            if trace_ctx is not None:
                now_wall = time.time()
                report.trace_spans.append(wire_span(
                    trace_ctx.to_wire(), "mp-retry", now_wall,
                    now_wall + delay, process=f"pid{os.getpid()}",
                    task=task, failures=state.failures,
                    backoff=round(delay, 6), error=why,
                ))
            logger.warning(
                "task %d failed (%s); retry %d/%d in %.3fs",
                task, why, state.failures, policy.max_attempts - 1, delay,
            )
            return True

        def rebuild_pool() -> None:
            nonlocal pool
            report.pool_rebuilds += 1
            with self.tracer.span(
                "mp-rebuild-pool", rebuilds=report.pool_rebuilds
            ):
                pool.shutdown(wait=False, cancel_futures=True)
                pool = self._new_pool(init_args)
            logger.warning(
                "worker pool broken; rebuilt (%d unfinished tasks)",
                len(unfinished),
            )

        try:
            for task in sorted(unfinished):
                submit(task)
            while unfinished:
                if cancel is not None:
                    # A tripped deadline abandons the gather: the
                    # finally clause tears the pool down without
                    # waiting, so in-flight worker attempts are merely
                    # orphaned, never joined.
                    cancel.check()
                now = time.monotonic()
                for task in [
                    task for task, when in retry_at.items() if when <= now
                ]:
                    del retry_at[task]
                    if task in unfinished:
                        submit(task)
                if not futures:
                    if retry_at:
                        time.sleep(
                            max(
                                _POLL_SECONDS,
                                min(retry_at.values()) - time.monotonic(),
                            )
                        )
                        continue
                    # Nothing running and nothing scheduled: every
                    # remaining task is out of budget.
                    return None
                done, _pending = wait(
                    list(futures),
                    timeout=_POLL_SECONDS,
                    return_when=FIRST_COMPLETED,
                )
                self._drain_telemetry(telemetry_queue)
                broken = False
                for future in done:
                    task, attempt, submitted, backup = futures.pop(future)
                    state = tasks[task]
                    state.inflight -= 1
                    if state.done:
                        continue  # late loser of a speculative race
                    try:
                        _task, rows = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except Exception as exc:  # injected or genuine
                        report.injected_failures += 1
                        self.telemetry.inc("mp.failures")
                        if state.inflight > 0:
                            continue  # a duplicate is still running
                        if not register_failure(task, repr(exc)):
                            return None
                    else:
                        state.done = True
                        state.rows = rows
                        unfinished.discard(task)
                        retry_at.pop(task, None)
                        if release is not None:
                            release(state.bucket)
                        if backup:
                            report.speculative_wins += 1
                        self.telemetry.mark("mp.rows", len(rows))
                        self.telemetry.observe(
                            "mp.task_seconds",
                            time.monotonic() - submitted,
                        )
                        self.telemetry.phase(
                            "mp-tasks",
                            len(tasks) - len(unfinished),
                            len(tasks),
                        )
                if broken:
                    # One dead worker poisons every in-flight future:
                    # drop them all, rebuild, and re-run what's left.
                    for future, (task, _a, _s, _b) in list(futures.items()):
                        tasks[task].inflight -= 1
                    futures.clear()
                    rebuild_pool()
                    for task in sorted(unfinished):
                        if tasks[task].inflight == 0 and task not in retry_at:
                            if not register_failure(task, "worker died"):
                                return None
                    continue
                now = time.monotonic()
                for future, (task, attempt, submitted, backup) in list(
                    futures.items()
                ):
                    state = tasks[task]
                    if state.done or task not in unfinished:
                        continue
                    age = now - submitted
                    if (
                        policy.task_timeout is not None
                        and age > policy.task_timeout
                    ):
                        # Abandon the attempt (workers can't be
                        # interrupted); its eventual result is ignored.
                        futures.pop(future)
                        state.inflight -= 1
                        report.timeouts += 1
                        if state.inflight > 0:
                            continue
                        if not register_failure(task, f"timeout {age:.1f}s"):
                            return None
                    elif (
                        policy.speculation
                        and not backup
                        and age > policy.straggler_timeout
                        and state.inflight == 1
                    ):
                        report.speculative_launched += 1
                        logger.info(
                            "task %d straggling (%.2fs); launching backup",
                            task, age,
                        )
                        submit(task, backup=True)
            return [tasks[task].rows for task in sorted(tasks)]
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def _new_pool(self, init_args: tuple) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=_init_worker,
            initargs=init_args,
        )

    def _drain_telemetry(self, telemetry_queue) -> None:
        """Merge every queued worker flush into the live registry.

        Runs inside the gather poll loop (so in-flight runs are
        inspectable) and once more after the pool drains.  Merge order
        does not matter: flushes are cumulative-with-seq, and
        :meth:`TelemetryRegistry.merge_worker` drops stale or
        duplicate deliveries.
        """
        if telemetry_queue is None:
            return
        while True:
            try:
                delta = telemetry_queue.get_nowait()
            except queue_module.Empty:
                return
            except Exception:  # manager shutting down
                return
            collector = self._span_collector
            if collector is not None and isinstance(delta, dict):
                try:
                    collector.merge(
                        delta.get("worker", "?"), delta.get("spans", ())
                    )
                except (KeyError, TypeError, ValueError):
                    logger.debug("dropping malformed span delivery")
            try:
                self.telemetry.merge_worker(delta)
            except (KeyError, TypeError, ValueError):
                logger.warning("dropped malformed telemetry flush")

    def _record_metrics(self, report: MultiprocessReport) -> None:
        if self.metrics is None:
            return
        self.metrics.inc("mp.attempts", report.attempts)
        self.metrics.inc("mp.retries", report.retries)
        self.metrics.inc("mp.injected_failures", report.injected_failures)
        self.metrics.inc("mp.timeouts", report.timeouts)
        self.metrics.inc("mp.pool_rebuilds", report.pool_rebuilds)
        self.metrics.inc(
            "mp.speculative_launched", report.speculative_launched
        )
        self.metrics.inc("mp.speculative_wins", report.speculative_wins)
        self.metrics.set_gauge("mp.degraded", 1.0 if report.degraded else 0.0)
        self.metrics.set_gauge("mp.shipped_bytes", float(report.shipped_bytes))
        self.metrics.set_gauge("mp.shm_bytes", float(report.shm_bytes))
        self.metrics.set_gauge(
            "mp.transport_bytes_per_s", report.transport_bytes_per_second
        )
        self.metrics.set_gauge(
            "mp.columnar_transport",
            1.0 if report.transport in ("columnar", "shm") else 0.0,
        )
