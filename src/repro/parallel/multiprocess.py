"""A process-parallel local backend.

The simulated cluster measures *what the paper measured*; this backend
demonstrates the paper's closing remark that the algorithm "can be
implemented in any OLAP system which supports scatter-and-gather": the
same plan -- feasible key, clustering factor, per-block local sort/scan,
owned-region filtering -- executed across real OS processes with
:mod:`concurrent.futures`.

Workers rebuild the workflow from its serialized form (see
:mod:`repro.io`), so measures must use registry aggregates and *named*
combine expressions; anonymous lambdas cannot cross process boundaries.
Parameterized aggregates (quantiles, sketches) re-register themselves in
each worker through the factory list passed at pool start.

The result is bit-identical to :func:`repro.local.evaluate_centralized`
-- asserted by the test suite -- because the plan machinery is shared
with the simulated executor; only the transport differs.
"""

from __future__ import annotations

import logging
import os
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.cube.records import Record, Schema
from repro.io.serialize import workflow_from_dict, workflow_to_dict
from repro.local.measure_table import ResultSet
from repro.local.sortscan import BlockEvaluator
from repro.mapreduce.engine import stable_hash
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.query.functions import Expression
from repro.query.workflow import Workflow, connected_components
from repro.parallel.executor import union_outputs

logger = logging.getLogger(__name__)

# Worker-process state, set up once per pool by _init_worker.
_WORKER: dict = {}


def _init_worker(
    workflow_data: dict,
    schema: Schema,
    scheme_specs: list,
    expressions: Optional[Mapping[str, Expression]],
    function_factories: Sequence[tuple],
) -> None:
    """Rebuild the workflow, evaluators and filters inside a worker."""
    for factory_path, args in function_factories:
        module_name, _, attr = factory_path.rpartition(".")
        module = __import__(module_name, fromlist=[attr])
        getattr(module, attr)(*args)

    workflow = workflow_from_dict(workflow_data, schema, expressions)
    from repro.distribution.clustering import BlockScheme
    from repro.distribution.keys import DistributionKey, KeyComponent

    # Serialization may reorder measures (topological emit), so the
    # rebuilt components can come back in a different order than the
    # driver enumerated them; match by measure-name set, never by
    # position -- block keys carry the DRIVER's component indices.
    by_names = {
        frozenset(component.names): component
        for component in connected_components(workflow)
    }
    evaluators = []
    filters = []
    for names, key_spec, factors in scheme_specs:
        component = by_names[frozenset(names)]
        key = DistributionKey(
            schema, tuple(KeyComponent(*spec) for spec in key_spec)
        )
        scheme = BlockScheme(key, dict(factors))
        evaluators.append(BlockEvaluator(component))
        filters.append(
            {
                measure.name: scheme.make_result_filter(measure.granularity)
                for measure in component.measures
            }
        )
    _WORKER["evaluators"] = evaluators
    _WORKER["filters"] = filters


def _reduce_bucket(bucket: list) -> list:
    """Evaluate one reducer's blocks; runs inside a worker process."""
    rows = []
    for block_key, records in bucket:
        component_index = block_key[0]
        evaluator = _WORKER["evaluators"][component_index]
        component_filters = _WORKER["filters"][component_index]
        result = evaluator.evaluate(records)
        for name, table in result.items():
            keep = component_filters[name](block_key[1:])
            rows.extend(
                (name, coords, value)
                for coords, value in table.items()
                if keep(coords)
            )
    return rows


@dataclass
class MultiprocessReport:
    """What the process-parallel run actually did."""

    processes: int
    partitions: int
    blocks: int
    replicated_records: int


class MultiprocessEvaluator:
    """Evaluates workflows across OS processes (no simulation).

    Args:
        processes: Worker pool size; defaults to the CPU count.
        optimizer: Plan-search configuration (shared with the simulated
            executor -- the plan is identical, only execution differs).
        expressions: Named combine expressions needed to rebuild the
            workflow in workers (beyond the built-ins).
        function_factories: For parameterized registry aggregates
            (quantiles, sketches), ``("module.factory", (args,))`` pairs
            re-run in every worker so lookups by name succeed there.
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        optimizer: OptimizerConfig | None = None,
        expressions: Optional[Mapping[str, Expression]] = None,
        function_factories: Sequence[tuple] = (),
    ):
        self.processes = processes or os.cpu_count() or 2
        self.optimizer = Optimizer(optimizer or OptimizerConfig())
        self.expressions = expressions
        self.function_factories = tuple(function_factories)

    def evaluate(
        self,
        workflow: Workflow,
        records: Sequence[Record],
        num_partitions: Optional[int] = None,
    ) -> tuple[ResultSet, MultiprocessReport]:
        """Run the one-round plan over *records* with real processes."""
        records = list(records)
        partitions = num_partitions or self.processes * 4
        sample = None
        if self.optimizer.config.use_sampling:
            from repro.optimizer.skew import sample_records

            sample = sample_records(
                records,
                self.optimizer.config.sample_size,
                self.optimizer.config.sample_seed,
            )
        plan = self.optimizer.plan_query(
            workflow, len(records), num_reducers=partitions, records=sample
        )
        logger.info(
            "dispatching %d records over %d processes: %s",
            len(records),
            self.processes,
            plan.describe(),
        )

        # Scatter: replicate records into blocks (driver side), then
        # group blocks into per-partition buckets by stable hash.
        blocks: dict[tuple, list] = defaultdict(list)
        for index, (_component, subplan) in enumerate(plan.subplans):
            mapper = subplan.scheme.make_mapper()
            for record in records:
                for block_key in mapper(record):
                    blocks[(index,) + block_key].append(record)
        buckets: list[list] = [[] for _ in range(partitions)]
        replicated = 0
        for block_key, block_records in blocks.items():
            replicated += len(block_records)
            buckets[stable_hash(block_key) % partitions].append(
                (block_key, block_records)
            )

        scheme_specs = [
            (
                tuple(component.names),
                tuple(
                    (c.level, c.low, c.high)
                    for c in subplan.scheme.key.components
                ),
                tuple(sorted(subplan.scheme.clustering_factors.items())),
            )
            for component, subplan in plan.subplans
        ]
        init_args = (
            workflow_to_dict(workflow, expressions=self.expressions),
            workflow.schema,
            scheme_specs,
            self.expressions,
            self.function_factories,
        )

        # Gather: one task per non-empty bucket.
        work = [bucket for bucket in buckets if bucket]
        with ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=_init_worker,
            initargs=init_args,
        ) as pool:
            row_lists = list(pool.map(_reduce_bucket, work))

        result = union_outputs(
            workflow, (row for rows in row_lists for row in rows)
        )
        report = MultiprocessReport(
            processes=self.processes,
            partitions=partitions,
            blocks=len(blocks),
            replicated_records=replicated,
        )
        return result, report
