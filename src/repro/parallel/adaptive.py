"""Adaptive evaluation: Section V's detect-then-replan loop, end to end.

The plain executor either trusts the analytical model or always pays for
sampling.  The adaptive evaluator does what the paper describes
operationally:

1. plan with the model (cheap, no data access);
2. run the mappers' *simulated dispatch* on a sample (the Map-Only pass
   Figure 4(d) shows to be a small fraction of the job);
3. if the predicted loads are balanced, run the model plan as-is;
   otherwise re-plan by sampling over diversified candidates and run
   the winner.

The decision, the sampled loads, and which path was taken are reported
so operators can audit why a plan was chosen.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Sequence

from repro.cube.records import Record
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.dfs import DistributedFile
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.optimizer import Optimizer, QueryPlan
from repro.optimizer.skew import (
    detect_skew,
    diversify_schemes,
    load_imbalance,
    pick_by_sampling,
    sample_file_records,
    sample_records,
    simulate_dispatch,
)
from repro.query.workflow import Workflow
from repro.parallel.executor import ExecutionConfig, ParallelEvaluator
from repro.parallel.report import ParallelResult

logger = logging.getLogger(__name__)


@dataclass
class AdaptiveDecision:
    """Audit trail of one adaptive planning round."""

    skew_detected: bool
    sampled_loads: list[int]
    replanned: bool
    imbalance: float

    def describe(self) -> str:
        verdict = "replanned by sampling" if self.replanned else "kept model plan"
        return (
            f"sampled max/mean = {self.imbalance:.2f} -> "
            f"skew {'detected' if self.skew_detected else 'not detected'}; "
            f"{verdict}"
        )


@dataclass
class AdaptiveResult:
    """A parallel result plus the per-component adaptive decisions."""

    outcome: ParallelResult
    decisions: list[AdaptiveDecision]

    @property
    def result(self):
        return self.outcome.result

    @property
    def response_time(self) -> float:
        return self.outcome.response_time

    def describe(self) -> str:
        lines = [self.outcome.describe()]
        lines.extend(
            f"component {index}: {decision.describe()}"
            for index, decision in enumerate(self.decisions)
        )
        return "\n".join(lines)


class AdaptiveEvaluator:
    """Model-first evaluation with sampling only when skew shows up."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExecutionConfig | None = None,
        skew_threshold: float = 2.0,
        sample_size: int = 2000,
        sample_seed: int = 13,
        tracer=None,
    ):
        base = config or ExecutionConfig()
        if base.optimizer.use_sampling:
            raise ValueError(
                "AdaptiveEvaluator decides when to sample; configure it "
                "with a non-sampling OptimizerConfig"
            )
        if base.partitioner != "hash":
            raise ValueError(
                "adaptive re-planning predicts loads under the hash "
                "partitioner; use partitioner='hash'"
            )
        self.cluster = cluster
        self.config = base
        self.skew_threshold = skew_threshold
        self.sample_size = sample_size
        self.sample_seed = sample_seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._executor = ParallelEvaluator(cluster, base, tracer=self.tracer)

    def evaluate(
        self,
        workflow: Workflow,
        data: Sequence[Record] | DistributedFile,
    ) -> AdaptiveResult:
        """Evaluate *workflow*, auto-switching plans on detected skew."""
        if isinstance(data, DistributedFile):
            source: Sequence[Record] | DistributedFile = data
            n_records = data.num_records
            sample = sample_file_records(
                data, self.sample_size, self.sample_seed
            )
        else:
            records = list(data)
            source = records
            n_records = len(records)
            sample = sample_records(records, self.sample_size,
                                    self.sample_seed)

        num_reducers = self.config.num_reducers or self.cluster.reduce_slots
        optimizer = Optimizer(self.config.optimizer)
        model_plan = optimizer.plan_query(workflow, n_records, num_reducers)

        subplans = []
        decisions = []
        for index, (component, plan) in enumerate(model_plan.subplans):
            use_columnar = self.config.optimizer.columnar is not False
            loads = simulate_dispatch(
                plan.scheme, sample, num_reducers, key_prefix=(index,),
                columnar=use_columnar,
            )
            skewed = detect_skew(loads, self.skew_threshold)
            imbalance = load_imbalance(loads)
            if skewed:
                candidates = diversify_schemes([plan.scheme])
                scheme, sampled = pick_by_sampling(
                    candidates, sample, num_reducers, key_prefix=(index,),
                    columnar=use_columnar,
                )
                replanned = scheme is not plan.scheme
                if replanned:
                    plan = _with_scheme(plan, scheme, sampled, n_records,
                                        len(sample))
            else:
                replanned = False
            subplans.append((component, plan))
            decision = AdaptiveDecision(
                skew_detected=skewed,
                sampled_loads=loads,
                replanned=replanned,
                imbalance=imbalance,
            )
            decisions.append(decision)
            logger.info("component %d: %s", index, decision.describe())

        outcome = self._executor.evaluate(
            workflow, source, plan=QueryPlan(subplans)
        )
        return AdaptiveResult(outcome=outcome, decisions=decisions)


def _with_scheme(plan, scheme, sampled_loads, n_records, sample_size):
    from repro.optimizer.optimizer import Plan
    from repro.optimizer.skew import scale_loads

    scaled = scale_loads(sampled_loads, sample_size, n_records)
    return Plan(
        scheme=scheme,
        num_reducers=plan.num_reducers,
        predicted_max_load=max(scaled, default=0.0),
        strategy="adaptive",
        candidates_considered=plan.candidates_considered,
        sampled_loads=scaled,
    )
