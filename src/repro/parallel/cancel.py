"""Cooperative cancellation for in-flight evaluations.

The serving daemon gives every admitted query a deadline; once a share
group's last deadline passes (or the client abandons the request) the
work still grinding through map/shuffle/reduce is pure waste.  Python
threads cannot be killed, so cancellation is cooperative: the daemon
hands the evaluator a :class:`CancellationToken` and the evaluator
checks it at natural yield points -- before planning, per map task,
per reduced block, per poll of the multiprocess gather loop.

A token trips for one of two reasons:

* someone called :meth:`CancellationToken.cancel` (drain, client gone);
* its *deadline* (seconds, on the token's monotonic-style clock)
  passed.

Either way the next :meth:`check` raises
:class:`DeadlineExceededError`, unwinding the evaluation.  Tokens are
cheap one-shot objects; share one per share group, never reuse across
dispatches.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["CancellationToken", "DeadlineExceededError"]


class DeadlineExceededError(RuntimeError):
    """An evaluation was cancelled or ran past its deadline."""


class CancellationToken:
    """One-shot cooperative cancellation flag with an optional deadline.

    *deadline* is an absolute time on *clock* (defaults to
    :func:`time.monotonic`); ``None`` means the token only trips when
    :meth:`cancel` is called.  The token is thread-safe by virtue of
    only ever flipping one boolean in one direction.
    """

    __slots__ = ("deadline", "_clock", "_cancelled", "_reason")

    def __init__(
        self,
        deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline = deadline
        self._clock = clock
        self._cancelled = False
        self._reason = ""

    @classmethod
    def after(
        cls,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "CancellationToken":
        """A token whose deadline is *seconds* from now (``None``: never)."""
        deadline = None if seconds is None else clock() + seconds
        return cls(deadline=deadline, clock=clock)

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token explicitly; idempotent."""
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True

    @property
    def expired(self) -> bool:
        """Whether the token has tripped (cancel or deadline)."""
        if self._cancelled:
            return True
        if self.deadline is not None and self._clock() >= self.deadline:
            self._cancelled = True
            self._reason = "deadline exceeded"
            return True
        return False

    @property
    def reason(self) -> str:
        return self._reason

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline, floored at 0 (``None``: no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` if the token has tripped."""
        if self.expired:
            raise DeadlineExceededError(self._reason or "deadline exceeded")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "tripped" if self.expired else "live"
        return f"CancellationToken({state}, deadline={self.deadline})"
