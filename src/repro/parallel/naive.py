"""The naive measure-at-a-time baseline (Section I).

Evaluates a composite query as a *sequence* of MapReduce jobs, one per
measure, exactly as the paper's introductory strawman: repartition the
raw data for every basic measure, then join/repartition intermediate
measure tables for every composite measure.  Sliding-window measures
force a repartition with the window attribute rolled up to ``ALL``,
collapsing parallelism -- the behaviour the one-round overlapping scheme
is designed to avoid.

Outputs match the one-round evaluator's (both are tested against the
centralized oracle); only the cost differs.  For exact (integer)
aggregates the match is bit-identical; float aggregates fold in shuffle
arrival order here versus sorted-scan order there, so they agree only
up to floating-point rounding.
"""

from __future__ import annotations

import logging
from typing import Sequence

from repro.cube.domains import ALL
from repro.cube.lattice import least_common_ancestor
from repro.cube.records import Record, estimated_record_bytes
from repro.cube.regions import Granularity
from repro.local.measure_table import MeasureTable, ResultSet
from repro.local.sortscan import compute_composite
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.dfs import DistributedFile
from repro.mapreduce.engine import MapReduceJob
from repro.obs.tracer import NULL_TRACER
from repro.query.measures import Measure, Relationship
from repro.query.workflow import Workflow
from repro.parallel.report import MultiJobResult

logger = logging.getLogger(__name__)

#: Tag for anchor rows shipped alongside source rows in join jobs.
_ANCHOR = -1


def _row_bytes(granularity: Granularity) -> int:
    """Charged size of one (coords, value) measure row."""
    return 8 * len(granularity.levels) + 24


class NaiveEvaluator:
    """Runs one MapReduce job per measure, in dependency order."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        num_reducers: int | None = None,
        tracer=None,
    ):
        self.cluster = cluster
        self.num_reducers = num_reducers or cluster.reduce_slots
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # -- per-measure jobs ----------------------------------------------------------

    def _basic_job(
        self, measure: Measure, input_file: DistributedFile
    ) -> MapReduceJob:
        mapper_coords = measure.granularity.coordinate_mapper()
        field_index = measure.schema.field_index(measure.field)
        aggregate = measure.aggregate

        def mapper(record: Record):
            yield (mapper_coords(record), record[field_index])

        def reducer(coords, values, ctx):
            ctx.charge_eval(len(values))
            yield (coords, aggregate.aggregate(values))

        return MapReduceJob(
            mapper,
            reducer,
            num_reducers=self.num_reducers,
            record_bytes=estimated_record_bytes(measure.schema),
            value_bytes=lambda _value: 8,
            name=f"naive:{measure.name}",
        )

    @staticmethod
    def _join_granularity(measure: Measure) -> Granularity:
        """The repartition granularity of a composite measure's job.

        The least common ancestor of the target and all source
        granularities co-locates every value a target region needs --
        except across sibling windows, whose attribute must be rolled up
        to ``ALL`` so that all window positions meet in one group.
        """
        parts = [measure.granularity]
        parts.extend(edge.source.granularity for edge in measure.inputs)
        join = least_common_ancestor(parts)
        for edge in measure.inputs:
            if edge.relationship is Relationship.SIBLING:
                join = join.replace(**{edge.window.attribute: ALL})
        return join

    def _composite_job_input(
        self,
        measure: Measure,
        tables: dict[str, MeasureTable],
        records: Sequence[Record],
        join: Granularity,
        anchor_cache: dict[Granularity, set],
    ) -> list[tuple]:
        """Tagged rows: every edge's source table, plus anchors if needed."""
        rows: list[tuple] = []
        for index, edge in enumerate(measure.inputs):
            source = tables[edge.source.name]
            rows.extend(
                (index, coords, value) for coords, value in source.items()
            )
        if all(
            edge.relationship is Relationship.ALIGN for edge in measure.inputs
        ):
            anchors = anchor_cache.get(measure.granularity)
            if anchors is None:
                # One O(N) pass per distinct target granularity, cached
                # for any further pure-ALIGN measures sharing it.
                mapper_coords = measure.granularity.coordinate_mapper()
                anchors = {mapper_coords(record) for record in records}
                anchor_cache[measure.granularity] = anchors
            rows.extend((_ANCHOR, coords, None) for coords in anchors)
        return rows

    def _composite_job(
        self, measure: Measure, join: Granularity
    ) -> MapReduceJob:
        source_granularities = [
            edge.source.granularity for edge in measure.inputs
        ]
        target = measure.granularity

        def mapper(row):
            index, coords, value = row
            granularity = (
                target if index == _ANCHOR else source_granularities[index]
            )
            yield (granularity.map_coords(coords, join), row)

        def reducer(_join_coords, rows, ctx):
            # Pre-seed every source with an empty table: a join group may
            # hold rows from only some edges (e.g. a strictly-previous
            # window has no row at the first coordinate), and the
            # composite evaluation must see "no value" rather than crash.
            tables: dict[str, MeasureTable] = {
                edge.source.name: MeasureTable(edge.source.granularity)
                for edge in measure.inputs
            }
            anchors: set | None = None
            for index, coords, value in rows:
                if index == _ANCHOR:
                    if anchors is None:
                        anchors = set()
                    anchors.add(coords)
                    continue
                edge = measure.inputs[index]
                tables[edge.source.name][coords] = value
            ctx.charge_sort(len(rows), len(rows) * _row_bytes(target))
            ctx.charge_eval(len(rows))
            result = compute_composite(measure, tables, anchors)
            yield from result.items()

        return MapReduceJob(
            mapper,
            reducer,
            num_reducers=self.num_reducers,
            record_bytes=_row_bytes(target),
            value_bytes=lambda _value: _row_bytes(target),
            name=f"naive:{measure.name}",
        )

    # -- whole query ------------------------------------------------------------------

    def evaluate(
        self,
        workflow: Workflow,
        data: Sequence[Record] | DistributedFile,
    ) -> MultiJobResult:
        """Evaluate measure by measure; response time is the jobs' sum."""
        if isinstance(data, DistributedFile):
            input_file = data
            records = list(data.records())
        else:
            records = list(data)
            input_file = self.cluster.dfs.write("naive-input", records)

        tables: dict[str, MeasureTable] = {}
        anchor_cache: dict[Granularity, set] = {}
        reports = []
        with self.tracer.span(
            "evaluate-naive", measures=len(workflow)
        ) as root:
            # Jobs run back to back, so each one starts on the simulated
            # timeline where its predecessor finished.
            sim_origin = 0.0
            for measure in workflow.topological_order():
                if measure.is_basic:
                    job = self._basic_job(measure, input_file)
                    job_input = input_file
                else:
                    join = self._join_granularity(measure)
                    rows = self._composite_job_input(
                        measure, tables, records, join, anchor_cache
                    )
                    job_input = self.cluster.dfs.write(
                        f"naive-tmp:{measure.name}", rows
                    )
                    job = self._composite_job(measure, join)
                outcome = job.run(
                    job_input,
                    self.cluster,
                    tracer=self.tracer,
                    sim_origin=sim_origin,
                )
                sim_origin += outcome.report.response_time
                logger.info(
                    "naive job for %s: %s",
                    measure.name,
                    outcome.report.summary(),
                )
                table = MeasureTable(measure.granularity)
                for coords, value in outcome.outputs:
                    table[coords] = value
                tables[measure.name] = table
                reports.append(outcome.report)
                if not measure.is_basic:
                    self.cluster.dfs.delete(f"naive-tmp:{measure.name}")
            root.set_sim(0.0, sim_origin)
            root.set(jobs=len(reports))

        result = ResultSet(
            {m.name: tables[m.name] for m in workflow.measures}
        )
        return MultiJobResult(result=result, jobs=reports)
