"""Debugging and validation utilities.

* :func:`verify_scheme` -- empirically check a distribution scheme
  against the centralized oracle on a (sample of) the data: the
  ground-truth complement to the analytical
  :func:`~repro.distribution.derive.is_feasible` check, useful when
  hand-crafting schemes or extending the derivation rules.
* :func:`empirical_max_load` -- Monte-Carlo estimate of the heaviest
  reducer load under random block assignment, for validating the
  Formula 2/4 cost model on concrete parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cube.records import Record
from repro.distribution.clustering import BlockScheme
from repro.distribution.derive import is_feasible
from repro.local.sortscan import evaluate_centralized
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.timing import ClusterConfig
from repro.optimizer.costmodel import expected_max_load_overlap
from repro.optimizer.skew import sample_records
from repro.optimizer.optimizer import Plan
from repro.query.workflow import Workflow
from repro.parallel.executor import ParallelEvaluator

__all__ = [
    "SchemeVerdict",
    "empirical_max_load",
    "verify_scheme",
]


@dataclass
class SchemeVerdict:
    """Outcome of one empirical scheme verification."""

    analytic_feasible: bool
    empirically_correct: bool
    mismatched_measures: tuple[str, ...]
    records_checked: int
    error: Optional[str] = None

    @property
    def consistent(self) -> bool:
        """Analytic feasibility never contradicts observed correctness.

        ``is_feasible`` is conservative: it may reject a key that
        happens to work on this data, but a key it accepts must never
        produce a wrong answer.
        """
        return self.empirically_correct or not self.analytic_feasible

    def describe(self) -> str:
        if self.empirically_correct:
            verdict = "correct"
        elif self.error:
            verdict = f"FAILED ({self.error})"
        else:
            verdict = f"WRONG on {', '.join(self.mismatched_measures)}"
        analytic = (
            "feasible" if self.analytic_feasible else "not provably feasible"
        )
        return (
            f"analytic: {analytic}; empirical "
            f"({self.records_checked} records): {verdict}"
        )


def verify_scheme(
    workflow: Workflow,
    scheme: BlockScheme,
    records: Sequence[Record],
    num_reducers: int = 4,
    sample_size: Optional[int] = 2000,
    seed: int = 13,
) -> SchemeVerdict:
    """Run *scheme* on (a sample of) *records* and diff against the oracle."""
    records = list(records)
    if sample_size is not None:
        records = sample_records(records, sample_size, seed)

    oracle = evaluate_centralized(workflow, records)
    plan = Plan(
        scheme=scheme,
        num_reducers=num_reducers,
        predicted_max_load=0.0,
        strategy="verify",
    )
    cluster = SimulatedCluster(
        ClusterConfig(machines=max(2, min(num_reducers, 8)))
    )
    error = None
    try:
        outcome = ParallelEvaluator(cluster).evaluate(
            workflow, records, plan=plan
        )
        mismatched = tuple(
            name
            for name in workflow.names
            if outcome.result[name].values != oracle[name].values
        )
    except Exception as exc:  # duplicated regions, unfilterable keys, ...
        # An infeasible scheme failing loudly is exactly what this tool
        # exists to diagnose: report it, don't propagate it.
        error = f"{type(exc).__name__}: {exc}"
        mismatched = tuple(workflow.names)
    return SchemeVerdict(
        analytic_feasible=is_feasible(scheme.key, workflow),
        empirically_correct=not mismatched,
        mismatched_measures=mismatched,
        records_checked=len(records),
        error=error,
    )


def empirical_max_load(
    n_records: int,
    n_regions: int,
    num_reducers: int,
    span: int = 0,
    cf: int = 1,
    trials: int = 200,
    seed: int = 7,
) -> float:
    """Monte-Carlo mean of the heaviest reducer load (validates Formula 4).

    Blocks of ``span + cf`` regions (each region holding
    ``n_records / n_regions`` records) are assigned to reducers uniformly
    at random; returns the mean maximum over *trials* draws.  Compare
    with :func:`~repro.optimizer.costmodel.expected_max_load_overlap`.
    """
    rng = random.Random(seed)
    n_blocks = max(1, n_regions // cf)
    block_records = (n_records / n_regions) * (span + cf)
    total = 0.0
    for _ in range(trials):
        loads = [0.0] * num_reducers
        for _block in range(n_blocks):
            loads[rng.randrange(num_reducers)] += block_records
        total += max(loads)
    return total / trials


def model_validation_table(
    n_records: int = 1_000_000,
    num_reducers: int = 50,
    span: int = 9,
    region_counts: Sequence[int] = (240, 480, 960, 1920),
    cf_values: Sequence[int] = (1, 4, 16, 64),
    trials: int = 200,
) -> list[tuple[int, int, float, float]]:
    """(n_regions, cf, model, monte-carlo) rows across a parameter grid."""
    rows = []
    for n_regions in region_counts:
        for cf in cf_values:
            if cf > n_regions:
                continue
            model = expected_max_load_overlap(
                n_records, n_regions, num_reducers, span, cf
            )
            empirical = empirical_max_load(
                n_records, n_regions, num_reducers, span, cf, trials
            )
            rows.append((n_regions, cf, model, empirical))
    return rows
