"""Workloads: the paper's synthetic schema, query suite, and weblog demo."""

from repro.workload.generator import (
    GENERATORS,
    INT_CARDINALITY,
    generate_skewed,
    generate_uniform,
    generate_zipf,
    paper_schema,
)
from repro.workload.network import (
    anomaly_query,
    generate_flows,
    network_schema,
    top_alarms,
)
from repro.workload.queries import (
    QUERIES,
    all_queries,
    ds_query,
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
)
from repro.workload.streaming import (
    session_stream,
    streaming_query,
    streaming_schema,
)
from repro.workload.retail import (
    generate_sales,
    retail_query,
    retail_schema,
)
from repro.workload.weblog import (
    KEYWORDS,
    decode_keyword,
    encode_keyword,
    generate_sessions,
    weblog_query,
    weblog_schema,
)

__all__ = [
    "GENERATORS",
    "INT_CARDINALITY",
    "KEYWORDS",
    "QUERIES",
    "all_queries",
    "anomaly_query",
    "decode_keyword",
    "ds_query",
    "encode_keyword",
    "generate_flows",
    "generate_sales",
    "generate_sessions",
    "generate_skewed",
    "generate_uniform",
    "generate_zipf",
    "network_schema",
    "paper_schema",
    "q1",
    "q2",
    "q3",
    "q4",
    "q5",
    "q6",
    "retail_query",
    "retail_schema",
    "session_stream",
    "streaming_query",
    "streaming_schema",
    "top_alarms",
    "weblog_query",
    "weblog_schema",
]
