"""The paper's evaluation query suite (Section VI).

Six composite subset measure queries over the synthetic schema:

* **Q1** -- three independent basic measures at fine granularities.
* **Q2** -- a basic measure plus a parent measure rolled up from it.
* **Q3** -- five measures: two basics, two roll-ups, and a top measure
  combining the two roll-ups.
* **Q4** -- a measure combining the same region's value with a roll-up
  of its children.
* **Q5** -- a sibling relation: each hour summarizes the preceding hours.
* **Q6** -- a mixture of all four relationship types topped by a large
  sliding window at a coarse granularity (the query that stresses the
  overlapping distribution scheme).

Plus **DS0..DS2**, the early-aggregation study's queries, differing only
in the granularity of their basic measure (coarse, intermediate, fine).
"""

from __future__ import annotations

from typing import Callable

from repro.cube.records import Schema
from repro.query.builder import WorkflowBuilder
from repro.query.functions import RATIO
from repro.query.workflow import Workflow


def q1(schema: Schema) -> Workflow:
    """Three independent basic measures over different fine region sets."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "Q1A", over={"a1": "value", "t1": "minute"}, field="a2",
        aggregate="sum",
    )
    builder.basic(
        "Q1B", over={"a2": "value", "t1": "minute"}, field="a3",
        aggregate="count",
    )
    builder.basic(
        "Q1C", over={"a3": "value", "t2": "minute"}, field="a4",
        aggregate="avg",
    )
    return builder.build()


def q2(schema: Schema) -> Workflow:
    """A basic measure and its parent-region aggregation."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "base", over={"a1": "value", "t1": "minute"}, field="a2",
        aggregate="sum",
    )
    (
        builder.composite("hourly", over={"a1": "band1", "t1": "hour"})
        .from_children("base", aggregate="avg")
    )
    return builder.build()


def q3(schema: Schema) -> Workflow:
    """Five measures; the top one combines two child-region roll-ups."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "clicks", over={"a1": "value", "t1": "minute"}, field="a2",
        aggregate="sum",
    )
    builder.basic(
        "views", over={"a1": "value", "t1": "minute"}, field="a3",
        aggregate="count",
    )
    (
        builder.composite("clicks_h", over={"a1": "band1", "t1": "hour"})
        .from_children("clicks", aggregate="sum")
    )
    (
        builder.composite("views_h", over={"a1": "band1", "t1": "hour"})
        .from_children("views", aggregate="sum")
    )
    (
        builder.composite("ctr", over={"a1": "band1", "t1": "hour"})
        .from_self("clicks_h")
        .from_self("views_h")
        .combine(RATIO)
    )
    return builder.build()


def q4(schema: Schema) -> Workflow:
    """Combine a region's own measure with its children's aggregation."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "detail", over={"a1": "value", "t1": "hour"}, field="a2",
        aggregate="sum",
    )
    builder.basic(
        "coarse", over={"a1": "band1", "t1": "hour"}, field="a3",
        aggregate="count",
    )
    (
        builder.composite("share", over={"a1": "band1", "t1": "hour"})
        .from_children("detail", aggregate="sum")
        .from_self("coarse")
        .combine(RATIO)
    )
    return builder.build()


def q5(schema: Schema) -> Workflow:
    """Each hour summarizes the measures of the preceding hours."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "hourly", over={"a1": "band1", "t1": "hour"}, field="a2",
        aggregate="sum",
    )
    (
        builder.composite("trailing", over={"a1": "band1", "t1": "hour"})
        .window("hourly", attribute="t1", low=-3, high=0, aggregate="sum")
    )
    return builder.build()


def q6(schema: Schema) -> Workflow:
    """All four relationships plus a large coarse sliding window."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "fine", over={"a1": "value", "t1": "minute"}, field="a2",
        aggregate="sum",
    )
    builder.basic(
        "coarse", over={"a1": "band1", "t1": "hour"}, field="a3",
        aggregate="count",
    )
    builder.basic(
        "detail_h", over={"a1": "value", "t1": "hour"}, field="a4",
        aggregate="sum",
    )
    (
        builder.composite("fine_h", over={"a1": "band1", "t1": "hour"})
        .from_children("fine", aggregate="sum")
    )
    (
        builder.composite("rate", over={"a1": "band1", "t1": "hour"})
        .from_self("fine_h")
        .from_self("coarse")
        .combine(RATIO)
    )
    (
        builder.composite("lift", over={"a1": "value", "t1": "hour"})
        .from_self("detail_h")
        .from_parent("rate")
        .combine(RATIO)
    )
    (
        builder.composite("trend", over={"a1": "band1", "t1": "hour"})
        .window("rate", attribute="t1", low=-47, high=0, aggregate="avg")
    )
    return builder.build()


def ds_query(schema: Schema, fineness: int) -> Workflow:
    """The early-aggregation study's queries DS0 (coarse) .. DS2 (fine).

    Each pairs one distributive basic measure with a roll-up and a ratio
    on top; only the basic measure's granularity changes, which is what
    drives early aggregation's benefit (DS0) or overhead (DS2).
    """
    grains = [
        {"a1": "band2", "t1": "day"},
        {"a1": "band1", "t1": "hour"},
        {"a1": "value", "t1": "minute"},
    ]
    parents = [
        {"a1": "band3", "t1": "day"},
        {"a1": "band2", "t1": "day"},
        {"a1": "band1", "t1": "hour"},
    ]
    if not 0 <= fineness < len(grains):
        raise ValueError(f"fineness must be 0..{len(grains) - 1}")
    builder = WorkflowBuilder(schema)
    builder.basic(
        "base", over=grains[fineness], field="a2", aggregate="sum"
    )
    (
        builder.composite("rolled", over=parents[fineness])
        .from_children("base", aggregate="sum")
    )
    (
        builder.composite("weight", over=parents[fineness])
        .from_children("base", aggregate="count")
    )
    (
        builder.composite("mean", over=parents[fineness])
        .from_self("rolled")
        .from_self("weight")
        .combine(RATIO)
    )
    return builder.build()


QUERIES: dict[str, Callable[[Schema], Workflow]] = {
    "Q1": q1,
    "Q2": q2,
    "Q3": q3,
    "Q4": q4,
    "Q5": q5,
    "Q6": q6,
}


def all_queries(schema: Schema) -> dict[str, Workflow]:
    """Q1..Q6 instantiated over *schema*."""
    return {name: make(schema) for name, make in QUERIES.items()}
