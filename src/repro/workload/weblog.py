"""The paper's motivating weblog-analysis scenario (Section I).

Schema ``(Keyword, PageCount, AdCount, Time)``: each record is one search
session -- a keyword query issued at some time, with the number of result
links and ad links clicked.  The M1..M4 workflow asks, per keyword and
minute, for the ratio of the median page-click count to the hour's median
ad-click count, smoothed by a ten-minute moving average.
"""

from __future__ import annotations

import math
import random

from repro.cube.domains import (
    MappingHierarchy,
    UniformHierarchy,
    temporal_hierarchy,
)
from repro.cube.records import Attribute, Record, Schema
from repro.query.builder import WorkflowBuilder
from repro.query.functions import RATIO
from repro.query.workflow import Workflow

#: Keyword vocabulary: (word, group) pairs in the spirit of Table I.
KEYWORDS = [
    ("java", "tech"), ("eclipse", "tech"), ("python", "tech"),
    ("linux", "tech"), ("hadoop", "tech"),
    ("baseball", "sport"), ("soccer", "sport"), ("tennis", "sport"),
    ("golf", "sport"), ("badger", "sport"),
    ("guitar", "music"), ("piano", "music"), ("violin", "music"),
    ("flights", "travel"), ("hotels", "travel"), ("beaches", "travel"),
]

#: Upper bound (exclusive) of click counts, with a low/medium/high level.
CLICK_CARDINALITY = 21


def click_hierarchy(name: str) -> UniformHierarchy:
    """value -> level(low/medium/high) -> ALL over [0, 20]."""
    return UniformHierarchy(
        name, {"value": 1, "level": 7}, base_cardinality=CLICK_CARDINALITY
    )


def weblog_schema(days: int = 1, temporal_base: str = "second") -> Schema:
    """Keyword / PageCount / AdCount / Time, per Table I."""
    keyword = MappingHierarchy(
        "keyword",
        [word for word, _group in KEYWORDS],
        {"group": dict(KEYWORDS)},
        base_level_name="word",
    )
    return Schema(
        [
            Attribute("keyword", keyword),
            Attribute("page_count", click_hierarchy("page_count")),
            Attribute("ad_count", click_hierarchy("ad_count")),
            Attribute("time", temporal_hierarchy("time", days, temporal_base)),
        ]
    )


def weblog_query(schema: Schema) -> Workflow:
    """The running example: M1..M4 exactly as the paper states them.

    M1: per minute and keyword, the median page count.
    M2: per hour and keyword, the median ad count.
    M3: per minute and keyword, M1 over the hour's M2.
    M4: per keyword, the ten-minute moving average of M3.
    """
    builder = WorkflowBuilder(schema)
    builder.basic(
        "M1", over={"keyword": "word", "time": "minute"},
        field="page_count", aggregate="median",
    )
    builder.basic(
        "M2", over={"keyword": "word", "time": "hour"},
        field="ad_count", aggregate="median",
    )
    (
        builder.composite("M3", over={"keyword": "word", "time": "minute"})
        .from_self("M1")
        .from_parent("M2")
        .combine(RATIO)
    )
    (
        builder.composite("M4", over={"keyword": "word", "time": "minute"})
        .window("M3", attribute="time", low=-9, high=0, aggregate="avg")
    )
    return builder.build()


def generate_sessions(
    schema: Schema, n_records: int, seed: int = 42
) -> list[Record]:
    """Synthetic search sessions with mildly correlated click counts.

    Keywords follow a Zipf-ish popularity; page and ad clicks are drawn
    so that popular keywords click more, giving the M3 ratios structure
    worth looking at in the examples.
    """
    rng = random.Random(seed)
    time_card = schema.attribute("time").hierarchy.base_cardinality
    n_keywords = len(KEYWORDS)
    weights = [1.0 / math.sqrt(rank + 1) for rank in range(n_keywords)]
    keywords = rng.choices(range(n_keywords), weights=weights, k=n_records)
    records = []
    for keyword in keywords:
        popularity = 1.0 / math.sqrt(keyword + 1)
        pages = min(
            CLICK_CARDINALITY - 1, int(rng.expovariate(1.0 / (2 + 8 * popularity)))
        )
        ads = min(
            CLICK_CARDINALITY - 1, int(rng.expovariate(1.0 / (1 + 4 * popularity)))
        )
        records.append((keyword, pages, ads, rng.randrange(time_card)))
    return records


def encode_keyword(word: str) -> int:
    """Map a keyword string to its record code."""
    for code, (known, _group) in enumerate(KEYWORDS):
        if known == word:
            return code
    raise KeyError(f"unknown keyword {word!r}")


def decode_keyword(code: int) -> str:
    """Map a record code back to its keyword string."""
    return KEYWORDS[code][0]
