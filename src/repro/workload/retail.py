"""A retail data-warehouse scenario over a real calendar.

Fact table: one record per sale -- ``(store, product, date, units,
revenue)`` -- with a store -> region hierarchy, a product -> category ->
department hierarchy, and a true calendar (day/month/quarter/year,
irregular month lengths) over a configurable date range.

The canonical analysis (:func:`retail_query`) mixes all four
relationship types over irregular temporal levels:

* daily revenue per store (basic),
* monthly revenue per region (roll-up across both hierarchies),
* each store-month's share of its region-month (alignment),
* month-over-month regional growth (sibling window *at month level*,
  where bucket sizes vary -- the case uniform hierarchies cannot model).
"""

from __future__ import annotations

import datetime
import math
import random

from repro.cube.calendar import calendar_hierarchy
from repro.cube.domains import MappingHierarchy
from repro.cube.records import Attribute, Record, Schema
from repro.query.builder import WorkflowBuilder
from repro.query.functions import RATIO, expression
from repro.query.workflow import Workflow

#: Store fleet: (store id, region) pairs.
STORES = [
    (f"store-{index:02d}", region)
    for index, region in enumerate(
        ["north"] * 6 + ["south"] * 5 + ["east"] * 5 + ["west"] * 4
    )
]

#: Product catalog: (sku, category, department).
PRODUCTS = [
    ("espresso-beans", "coffee", "grocery"),
    ("drip-grind", "coffee", "grocery"),
    ("green-tea", "tea", "grocery"),
    ("earl-grey", "tea", "grocery"),
    ("baguette", "bakery", "grocery"),
    ("croissant", "bakery", "grocery"),
    ("notebook", "stationery", "general"),
    ("ballpoint", "stationery", "general"),
    ("umbrella", "outdoor", "general"),
    ("thermos", "outdoor", "general"),
    ("socks", "apparel", "general"),
    ("scarf", "apparel", "general"),
]

#: Month-over-month growth: (this - previous) / previous.
GROWTH = expression(
    lambda current, previous: (current - previous) / previous
    if previous
    else math.inf,
    2,
    "growth",
)


def retail_schema(
    start: datetime.date = datetime.date(2006, 1, 1),
    end: datetime.date = datetime.date(2008, 1, 1),
) -> Schema:
    """Store / product / date dimensions plus units and revenue facts."""
    store = MappingHierarchy(
        "store",
        [name for name, _region in STORES],
        {"region": dict(STORES)},
        base_level_name="outlet",
    )
    product = MappingHierarchy(
        "product",
        [sku for sku, _category, _department in PRODUCTS],
        {
            "category": {sku: cat for sku, cat, _dep in PRODUCTS},
            "department": {cat: dep for _sku, cat, dep in PRODUCTS},
        },
        base_level_name="sku",
    )
    date = calendar_hierarchy("date", start, end)
    return Schema(
        [
            Attribute("store", store),
            Attribute("product", product),
            Attribute("date", date),
        ],
        facts=["units", "revenue"],
    )


def retail_query(schema: Schema) -> Workflow:
    """Daily store revenue -> regional months -> shares and growth."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "daily_revenue", over={"store": "outlet", "date": "day"},
        field="revenue", aggregate="sum",
    )
    (
        builder.composite(
            "store_month", over={"store": "outlet", "date": "month"}
        )
        .from_children("daily_revenue", aggregate="sum")
    )
    (
        builder.composite(
            "region_month", over={"store": "region", "date": "month"}
        )
        .from_children("store_month", aggregate="sum")
    )
    (
        builder.composite(
            "store_share", over={"store": "outlet", "date": "month"}
        )
        .from_self("store_month")
        .from_parent("region_month")
        .combine(RATIO)
    )
    (
        builder.composite(
            "prev_region_month", over={"store": "region", "date": "month"}
        )
        .window("region_month", attribute="date", low=-1, high=-1,
                aggregate="sum")
    )
    (
        builder.composite(
            "region_growth", over={"store": "region", "date": "month"}
        )
        .from_self("region_month")
        .from_self("prev_region_month")
        .combine(GROWTH)
    )
    return builder.build()


def generate_sales(
    schema: Schema, n_records: int, seed: int = 42
) -> list[Record]:
    """Synthetic sales with weekly and yearly seasonality.

    Revenue follows the product's base price scaled by a weekend bump
    and a smooth annual cycle, so monthly growth numbers have real
    structure for the example to find.
    """
    rng = random.Random(seed)
    n_days = schema.attribute("date").hierarchy.base_cardinality
    n_stores = len(STORES)
    n_products = len(PRODUCTS)
    base_price = {
        index: 2.0 + 3.0 * (index % 5) for index in range(n_products)
    }
    records = []
    for _ in range(n_records):
        day = rng.randrange(n_days)
        store = rng.randrange(n_stores)
        product = rng.randrange(n_products)
        weekend = 1.4 if day % 7 in (5, 6) else 1.0
        season = 1.0 + 0.3 * math.sin(2 * math.pi * (day % 365) / 365)
        units = 1 + min(5, int(rng.expovariate(1.0)))
        revenue = round(
            units * base_price[product] * weekend * season
            * rng.uniform(0.9, 1.1),
            2,
        )
        records.append((store, product, day, units, revenue))
    return records


def decode_store(code: int) -> str:
    return STORES[code][0]


def decode_region(code: int, schema: Schema) -> str:
    hierarchy = schema.attribute("store").hierarchy
    return hierarchy.decode[1][code]
