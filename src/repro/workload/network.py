"""Network telemetry: the original composite-subset-measures use case.

The VLDB 2006 predecessor paper was motivated by network traffic
analysis (two of its authors worked on intrusion detection); this
workload recreates that setting.  Flow records carry a source address
(hierarchical by prefix: host -> /24 -> /16 -> /8), a coarse service
class derived from the destination port, and a timestamp.

The canonical analysis (:func:`anomaly_query`) is a streaming-style
anomaly detector phrased entirely as composite subset measures:

* per /24 prefix and minute, the flow count (basic);
* per /16 prefix and hour, the baseline rate (roll-up + alignment);
* a *burst factor* comparing each minute to its hour baseline;
* a trailing five-minute moving maximum of the burst factor -- the
  sliding window that forces an overlapping distribution key.
"""

from __future__ import annotations

import math
import random

from repro.cube.domains import MappingHierarchy, UniformHierarchy, temporal_hierarchy
from repro.cube.records import Attribute, Record, Schema
from repro.query.builder import WorkflowBuilder
from repro.query.functions import expression
from repro.query.workflow import Workflow

#: Service classes by destination port bucket.
SERVICES = [
    ("web", ["80", "443", "8080"]),
    ("mail", ["25", "465", "587"]),
    ("dns", ["53"]),
    ("ssh", ["22"]),
    ("other", ["0"]),
]

#: Burst factor: observed flows over the hour's per-minute baseline,
#: with an additive one-flow-per-minute prior so that prefixes with a
#: near-empty baseline (one background flow all hour would otherwise
#: score 60x) cannot drown out real floods.
BURST = expression(
    lambda minute_flows, hourly_flows: (
        minute_flows / ((hourly_flows + 60.0) / 60.0)
    ),
    2,
    "burst",
)


def address_hierarchy(name: str = "src", hosts_bits: int = 16) -> UniformHierarchy:
    """host -> /24 -> /16 (-> /8) over a synthetic address space.

    With the default 16 host bits the space models one /16 network's
    worth of hosts; each level groups 256 children, exactly like IPv4
    prefix aggregation.
    """
    if not 8 <= hosts_bits <= 24:
        raise ValueError("hosts_bits must be between 8 and 24")
    levels = {"host": 1, "net24": 256}
    if hosts_bits > 16:
        levels["net16"] = 256 * 256
    return UniformHierarchy(name, levels, base_cardinality=1 << hosts_bits)


def service_hierarchy(name: str = "service") -> MappingHierarchy:
    """port -> service class."""
    ports = [port for _service, plist in SERVICES for port in plist]
    mapping = {
        port: service for service, plist in SERVICES for port in plist
    }
    return MappingHierarchy(
        name, ports, {"class": mapping}, base_level_name="port"
    )


def network_schema(hours: int = 6) -> Schema:
    """(src, service, time) flow records over an *hours*-long window."""
    time = temporal_hierarchy("time", days=1, base="second")
    if hours != 24:
        time = UniformHierarchy(
            "time",
            {"second": 1, "minute": 60, "hour": 3600},
            base_cardinality=hours * 3600,
        )
    return Schema(
        [
            Attribute("src", address_hierarchy()),
            Attribute("service", service_hierarchy()),
            Attribute("time", time),
        ],
        facts=["bytes"],
    )


def anomaly_query(schema: Schema) -> Workflow:
    """Flow-count burst detection per /24 prefix."""
    builder = WorkflowBuilder(schema)
    builder.basic(
        "minute_flows", over={"src": "net24", "time": "minute"},
        field="bytes", aggregate="count",
    )
    builder.basic(
        "hourly_flows", over={"src": "net24", "time": "hour"},
        field="bytes", aggregate="count",
    )
    (
        builder.composite("burst", over={"src": "net24", "time": "minute"})
        .from_self("minute_flows")
        .from_parent("hourly_flows")
        .combine(BURST)
    )
    (
        builder.composite("alarm", over={"src": "net24", "time": "minute"})
        .window("burst", attribute="time", low=-4, high=0, aggregate="max")
    )
    return builder.build()


def generate_flows(
    schema: Schema,
    n_records: int,
    seed: int = 42,
    attack_prefix: int = 7,
    attack_minute: int = 90,
    attack_share: float = 0.15,
) -> list[Record]:
    """Background traffic plus one synthetic flood.

    *attack_share* of all flows target one /24 prefix within a few
    minutes around *attack_minute* -- the burst the anomaly query is
    supposed to put at the top of its alarm table.
    """
    rng = random.Random(seed)
    n_hosts = schema.attribute("src").hierarchy.base_cardinality
    n_ports = schema.attribute("service").hierarchy.base.cardinality
    seconds = schema.attribute("time").hierarchy.base_cardinality
    records = []
    for _ in range(n_records):
        if rng.random() < attack_share:
            host = attack_prefix * 256 + rng.randrange(256)
            second = min(
                seconds - 1,
                max(0, int(rng.gauss(attack_minute * 60 + 30, 45))),
            )
            port = 0  # "other": floods rarely speak a clean protocol
        else:
            host = rng.randrange(n_hosts)
            second = rng.randrange(seconds)
            port = rng.randrange(n_ports)
        nbytes = 40 + int(rng.expovariate(1 / 500.0))
        records.append((host, port, second, nbytes))
    return records


def top_alarms(result, k: int = 5) -> list[tuple[int, int, float]]:
    """The *k* strongest ``(prefix, minute, alarm)`` rows of a result."""
    alarms = result["alarm"]
    ranked = sorted(
        (
            (coords[0], coords[2], value)
            for coords, value in alarms.items()
        ),
        key=lambda row: row[2],
        reverse=True,
    )
    return ranked[:k]
