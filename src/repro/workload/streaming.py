"""Continuous weblog sessions: the append-heavy streaming scenario.

The batch weblog scenario (:mod:`repro.workload.weblog`) asks holistic
questions -- medians -- which an append can change anywhere, so it
exercises the cache's *invalidation* story.  This module is its
streaming twin: the same search-session schema, but a query whose
measures are all incrementally maintainable (sums, counts, a ratio and
a sliding-window average), plus a session generator that emits data as
*watermarked partitions* -- each partition's timestamps confined to its
own slice of the time domain, arriving in order, the way a log shipper
drains an hour at a time.  Under that discipline an append can only
dirty the newest time slice, so regional sibling-window repair touches
a bounded frontier instead of the whole history.

Used by ``repro append``, the daemon's live-append path, the
``append_smoke`` CI step and ``BENCH_incremental.json``.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.cube.records import Record, Schema
from repro.query.builder import WorkflowBuilder
from repro.query.functions import RATIO
from repro.query.workflow import Workflow
from repro.workload.weblog import CLICK_CARDINALITY, KEYWORDS, weblog_schema

__all__ = ["session_stream", "streaming_query", "streaming_schema"]


def streaming_schema(days: int = 1) -> Schema:
    """The weblog schema at minute resolution.

    Minute-level base timestamps keep the coordinate space compact
    (1440 slots per day) so long streams of small appends stay cheap to
    demonstrate and test.
    """
    return weblog_schema(days=days, temporal_base="minute")


def streaming_query(schema: Schema) -> Workflow:
    """S1..S4: the weblog questions, restated maintainably.

    S1: per keyword and minute, total result-link clicks (sum).
    S2: per keyword and hour, the number of sessions (count).
    S3: per keyword and minute, S1 over the hour's S2 -- clicks per
        session, minute-by-minute against the hourly session volume.
    S4: per keyword, the ten-minute moving average of S3.

    Every aggregate here admits exact re-folding (integer sums and
    counts; the window average re-evaluates its slices), so an append
    classifies S1/S2 as *patchable*, S3 as derivable from its patched
    sources, and S4 as *regional* -- no measure ever needs the
    historical records again.
    """
    builder = WorkflowBuilder(schema)
    builder.basic(
        "S1", over={"keyword": "word", "time": "minute"},
        field="page_count", aggregate="sum",
    )
    builder.basic(
        "S2", over={"keyword": "word", "time": "hour"},
        field="page_count", aggregate="count",
    )
    (
        builder.composite("S3", over={"keyword": "word", "time": "minute"})
        .from_self("S1")
        .from_parent("S2")
        .combine(RATIO)
    )
    (
        builder.composite("S4", over={"keyword": "word", "time": "minute"})
        .window("S3", attribute="time", low=-9, high=0, aggregate="avg")
    )
    return builder.build()


def session_stream(
    schema: Schema,
    partitions: int,
    records_per_partition: int,
    seed: int = 42,
) -> Iterator[list[Record]]:
    """Yield *partitions* watermarked batches of search sessions.

    The time domain is cut into equal slices, one per partition;
    partition ``i`` only carries timestamps from slice ``i``, and
    partitions arrive oldest-first -- the watermark discipline of a
    well-behaved log pipeline.  Click-count distributions match
    :func:`~repro.workload.weblog.generate_sessions` so the streaming
    and batch scenarios describe the same traffic.
    """
    if partitions <= 0:
        raise ValueError(f"need at least one partition, got {partitions}")
    rng = random.Random(seed)
    time_card = schema.attribute("time").hierarchy.base_cardinality
    slice_width = max(1, time_card // partitions)
    n_keywords = len(KEYWORDS)
    weights = [1.0 / math.sqrt(rank + 1) for rank in range(n_keywords)]
    for index in range(partitions):
        low = min(index * slice_width, time_card - 1)
        high = min(low + slice_width, time_card)
        keywords = rng.choices(
            range(n_keywords), weights=weights, k=records_per_partition
        )
        batch = []
        for keyword in keywords:
            popularity = 1.0 / math.sqrt(keyword + 1)
            pages = min(
                CLICK_CARDINALITY - 1,
                int(rng.expovariate(1.0 / (2 + 8 * popularity))),
            )
            ads = min(
                CLICK_CARDINALITY - 1,
                int(rng.expovariate(1.0 / (1 + 4 * popularity))),
            )
            batch.append((keyword, pages, ads, rng.randrange(low, high)))
        yield batch
