"""Synthetic datasets matching the paper's evaluation setup (Section VI).

The schema has four integer attributes drawn from ``[0, 255]`` with a
four-level fixed-fanout hierarchy each, and two temporal attributes with
the second/minute/hour/day hierarchy spanning a twenty-day period.  Two
data distributions are provided: uniform, and the paper's skewed variant
where temporal values concentrate in the first five days of the range.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.cube.domains import banded_hierarchy, temporal_hierarchy
from repro.cube.records import Attribute, Record, Schema

#: Cardinality of the paper's integer attributes: 4**4 values.
INT_CARDINALITY = 256

#: Number of integer and temporal attributes in the paper's schema.
NUM_INT_ATTRIBUTES = 4
NUM_TEMPORAL_ATTRIBUTES = 2


def paper_schema(days: int = 20, temporal_base: str = "second") -> Schema:
    """The evaluation schema: a1..a4 banded ints, t1..t2 temporal.

    *temporal_base* selects the finest temporal level kept; benchmarks
    use ``"minute"`` to keep coordinate spaces compact without changing
    any hierarchy relationship above it.
    """
    attributes = [
        Attribute(f"a{i + 1}", banded_hierarchy(f"a{i + 1}", INT_CARDINALITY))
        for i in range(NUM_INT_ATTRIBUTES)
    ]
    attributes.extend(
        Attribute(
            f"t{i + 1}",
            temporal_hierarchy(f"t{i + 1}", days=days, base=temporal_base),
        )
        for i in range(NUM_TEMPORAL_ATTRIBUTES)
    )
    return Schema(attributes)


def _temporal_cardinalities(schema: Schema) -> list[tuple[int, int]]:
    """(record slot, base cardinality) of each temporal attribute."""
    slots = []
    for index, attr in enumerate(schema.attributes):
        if attr.name.startswith("t"):
            slots.append((index, attr.hierarchy.base_cardinality))
    return slots


def generate_uniform(
    schema: Schema, n_records: int, seed: int = 42
) -> list[Record]:
    """Records spread uniformly over cube space."""
    rng = random.Random(seed)
    temporal = dict(_temporal_cardinalities(schema))
    width = len(schema.attributes)
    records = []
    for _ in range(n_records):
        record = tuple(
            rng.randrange(temporal[slot])
            if slot in temporal
            else rng.randrange(INT_CARDINALITY)
            for slot in range(width)
        )
        records.append(record)
    return records


def generate_skewed(
    schema: Schema,
    n_records: int,
    seed: int = 42,
    skew_fraction: float = 0.25,
) -> list[Record]:
    """The paper's skew: temporal values land in the first few days.

    With the default fraction, a twenty-day domain concentrates all
    records into its first five days, matching Section VI.
    """
    if not 0 < skew_fraction <= 1:
        raise ValueError("skew_fraction must be in (0, 1]")
    rng = random.Random(seed)
    temporal = {
        slot: max(1, int(card * skew_fraction))
        for slot, card in _temporal_cardinalities(schema)
    }
    width = len(schema.attributes)
    records = []
    for _ in range(n_records):
        record = tuple(
            rng.randrange(temporal[slot])
            if slot in temporal
            else rng.randrange(INT_CARDINALITY)
            for slot in range(width)
        )
        records.append(record)
    return records


def generate_zipf(
    schema: Schema,
    n_records: int,
    seed: int = 42,
    exponent: float = 1.2,
) -> list[Record]:
    """Zipf-distributed integer attributes (an extension workload).

    Temporal attributes stay uniform; integer attributes follow a Zipf
    law so that a few values dominate -- the nominal-skew case the
    paper's region-based redistribution cannot fix (Section V).
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(INT_CARDINALITY)]
    values = list(range(INT_CARDINALITY))
    temporal = dict(_temporal_cardinalities(schema))
    width = len(schema.attributes)
    records = []
    int_columns = [
        rng.choices(values, weights=weights, k=n_records)
        for _ in range(width - len(temporal))
    ]
    for row in range(n_records):
        record = []
        int_slot = 0
        for slot in range(width):
            if slot in temporal:
                record.append(rng.randrange(temporal[slot]))
            else:
                record.append(int_columns[int_slot][row])
                int_slot += 1
        records.append(tuple(record))
    return records


GENERATORS: dict[str, Callable[..., list[Record]]] = {
    "uniform": generate_uniform,
    "skewed": generate_skewed,
    "zipf": generate_zipf,
}
