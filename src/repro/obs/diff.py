"""``repro diff``: regression detection between two run manifests.

Joins two :class:`~repro.obs.manifest.RunManifest` documents field by
field -- simulated timings, phase breakdown, job counters, shipped
volume, load balance, and the calibration errors -- into a
:class:`RunDiff` of :class:`FieldDelta` rows.  Fields where lower is
better (times, shuffled volume, imbalance, model error) are flagged as
**regressions** when run B exceeds run A by more than a relative
threshold; everything else is reported as an informational delta.

The simulated cluster clock is deterministic, so two runs of the same
query, data seed and configuration produce bit-identical manifests and
an empty diff: any non-zero row is a real behaviour change, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.manifest import RunManifest

__all__ = ["FieldDelta", "RunDiff", "diff_manifests"]

#: Fields where an increase from A to B is a regression.  Everything
#: not listed here (record counts, task counts, ...) diffs as
#: informational only.
LOWER_IS_BETTER = {
    "timing.response_time",
    "timing.map_makespan",
    "timing.reduce_makespan",
    "counters.map_output_records",
    "counters.map_output_bytes",
    "counters.shuffle_bytes",
    "counters.spilled_records",
    "counters.remote_block_reads",
    "counters.task_retries",
    "balance.max_reducer_load",
    "balance.load_imbalance",
    "calibration.abs_max_load_error",
    "calibration.abs_shipped_records_error",
}


@dataclass
class FieldDelta:
    """One compared field: values in both runs and the verdict."""

    #: Dotted name, e.g. ``"timing.response_time"``.
    name: str
    a: Optional[float]
    b: Optional[float]
    #: ``b - a`` when both sides are present.
    delta: Optional[float] = None
    #: Relative change ``(b - a) / a`` (``None`` when ``a`` is 0 or
    #: either side is missing).
    ratio: Optional[float] = None
    #: Lower-is-better field where B exceeds A beyond the threshold.
    regression: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "a": self.a,
            "b": self.b,
            "delta": self.delta,
            "ratio": self.ratio,
            "regression": self.regression,
        }


@dataclass
class RunDiff:
    """The full comparison of two manifests."""

    a_label: str
    b_label: str
    threshold: float
    deltas: list[FieldDelta] = field(default_factory=list)

    def changed(self) -> list[FieldDelta]:
        """Rows where the two runs disagree at all."""
        return [d for d in self.deltas if d.delta not in (None, 0, 0.0)]

    def regressions(self) -> list[FieldDelta]:
        """Rows flagged as regressions (B worse beyond the threshold)."""
        return [d for d in self.deltas if d.regression]

    @property
    def has_regressions(self) -> bool:
        return any(d.regression for d in self.deltas)

    def to_dict(self) -> dict:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "threshold": self.threshold,
            "deltas": [d.to_dict() for d in self.deltas],
            "regressions": [d.name for d in self.regressions()],
        }

    def describe(self) -> str:
        """The ``repro diff`` report."""
        lines = [
            f"diff: A={self.a_label}  vs  B={self.b_label}  "
            f"(regression threshold {self.threshold:.0%})",
        ]
        changed = self.changed()
        if not changed:
            lines.append(
                "runs are identical on every compared field "
                "(0 regressions)"
            )
            return "\n".join(lines)
        section = None
        for delta in changed:
            head, _dot, tail = delta.name.partition(".")
            if head != section:
                section = head
                lines.append(f"{section}:")
            a = "n/a" if delta.a is None else f"{delta.a:,.4g}"
            b = "n/a" if delta.b is None else f"{delta.b:,.4g}"
            ratio = (
                ""
                if delta.ratio is None
                else f"  ({delta.ratio:+.1%})"
            )
            flag = "  <-- REGRESSION" if delta.regression else ""
            lines.append(f"  {tail:<28} {a:>14} -> {b:>14}{ratio}{flag}")
        regressions = self.regressions()
        lines.append(
            f"{len(changed)} field(s) changed, "
            f"{len(regressions)} regression(s)"
        )
        return "\n".join(lines)


def _numeric(value) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _compare(
    name: str, a, b, threshold: float
) -> Optional[FieldDelta]:
    a, b = _numeric(a), _numeric(b)
    if a is None and b is None:
        return None
    row = FieldDelta(name=name, a=a, b=b)
    if a is not None and b is not None:
        row.delta = b - a
        if a != 0:
            row.ratio = row.delta / a
        if name in LOWER_IS_BETTER:
            worse_by = row.delta / a if a != 0 else (1.0 if b > 0 else 0.0)
            row.regression = b > a and worse_by > threshold
    elif name in LOWER_IS_BETTER and a is None and b is not None and b > 0:
        # The quantity appeared in B only -- treat as a regression.
        row.regression = True
    return row


def _calibration_errors(manifest: RunManifest) -> dict:
    data = manifest.calibration or {}
    out = {}
    for key in ("max_load_error", "shipped_records_error"):
        value = data.get(key)
        out[f"abs_{key}"] = abs(value) if value is not None else None
    return out


def diff_manifests(
    a: RunManifest,
    b: RunManifest,
    threshold: float = 0.05,
    a_label: str = "run A",
    b_label: str = "run B",
) -> RunDiff:
    """Compare manifest *a* (the baseline) against *b* (the candidate).

    *threshold* is the relative slack on lower-is-better fields: B may
    exceed A by up to this fraction before the field is flagged.  Pass
    ``0.0`` for the exact comparison that identical-seed runs of the
    deterministic simulator must survive.
    """
    diff = RunDiff(a_label=a_label, b_label=b_label, threshold=threshold)

    def push(name: str, left, right) -> None:
        row = _compare(name, left, right, threshold)
        if row is not None:
            diff.deltas.append(row)

    push("timing.response_time", a.response_time, b.response_time)
    push("timing.map_makespan", a.map_makespan, b.map_makespan)
    push("timing.reduce_makespan", a.reduce_makespan, b.reduce_makespan)

    for name in sorted(set(a.breakdown) | set(b.breakdown)):
        push(
            f"breakdown.{name}",
            a.breakdown.get(name),
            b.breakdown.get(name),
        )

    skip = {"extra"}
    for name in sorted((set(a.counters) | set(b.counters)) - skip):
        push(
            f"counters.{name}", a.counters.get(name), b.counters.get(name)
        )
    extras = set(a.counters.get("extra", {})) | set(
        b.counters.get("extra", {})
    )
    for name in sorted(extras):
        push(
            f"counters.extra.{name}",
            a.counters.get("extra", {}).get(name, 0),
            b.counters.get("extra", {}).get(name, 0),
        )

    push(
        "balance.max_reducer_load",
        max(a.reducer_loads, default=0),
        max(b.reducer_loads, default=0),
    )
    push("balance.load_imbalance", a.load_imbalance, b.load_imbalance)

    errors_a = _calibration_errors(a)
    errors_b = _calibration_errors(b)
    for name in sorted(set(errors_a) | set(errors_b)):
        push(
            f"calibration.{name}", errors_a.get(name), errors_b.get(name)
        )

    return diff
