"""The live telemetry plane: bounded-memory streaming instruments.

Everything else in :mod:`repro.obs` is *post-mortem*: spans, metrics
and manifests materialize after a run finishes, in the driver process,
with unbounded instruments.  This module is the in-flight counterpart
-- the substrate an always-on serving daemon reports through:

* :class:`StreamingHistogram` -- a fixed-bucket, log-scaled histogram.
  Observations land in ``O(1)`` with bounded memory; two histograms
  merge by bucket addition (the property cross-process telemetry
  needs).  While the population is small enough to fit the exact
  sample buffer, ``percentile()`` is *exact*; past that it answers
  from the log buckets with bounded relative error (see
  :attr:`StreamingHistogram.growth`).
* :class:`RateMeter` -- an exponentially weighted moving average of an
  event rate (rows/s, bytes/s), decayed on read so an idle meter
  honestly approaches zero.
* :class:`WindowedGauge` -- last-write-wins plus a bounded window of
  recent ``(time, value)`` samples for min/mean/max over the window.
* :class:`ResourceSample` / :func:`sample_resources` -- per-process
  CPU time, RSS and GC tallies from the stdlib only
  (:func:`resource.getrusage`, ``/proc/self/status``, :mod:`gc`).
* :class:`TelemetryRegistry` -- the driver-side namespace of the
  above, plus the merge point for cross-process
  :class:`WorkerDelta`\\ s.  Worker flushes carry *cumulative* totals
  and a per-worker sequence number, so merging is idempotent: a flush
  applied twice, out of order, or cut short by a worker death can
  never double-count or lose an acknowledged delta.

Every instrument takes an injectable ``clock`` (defaulting to
:func:`time.monotonic`), so snapshots are deterministic when driven by
the simulated clock -- the property the test suite asserts.
"""

from __future__ import annotations

import gc
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RateMeter",
    "ResourceSample",
    "StreamingHistogram",
    "TelemetryRegistry",
    "WindowedGauge",
    "WorkerDelta",
    "sample_resources",
]


# ---------------------------------------------------------------------------
# streaming histogram


class StreamingHistogram:
    """A bounded-memory distribution with mergeable state.

    Observations are assigned to log-scaled buckets: value ``v > 0``
    lands in bucket ``floor(log(v) / log(growth))``, clamped to a fixed
    index range, so the bucket table can never grow past
    ``max_index - min_index + 3`` entries regardless of how many
    observations arrive.  Zero and negative values share one
    underflow bucket (loads and byte counts are non-negative by
    construction).

    Percentiles are **exact** while the observation count fits the
    ``exact_limit`` sample buffer (nearest-rank over the real values).
    Past the limit the buffer is dropped and percentiles come from the
    buckets: the answer is the upper edge of the covering bucket, so
    the relative error is bounded by ``growth - 1`` (10% at the
    default 1.1).  ``summary()`` says which regime produced its
    numbers via the ``"exact"`` flag.

    Merging (:meth:`merge`) adds bucket counts and min/max/sum; two
    exact buffers concatenate while the union still fits, otherwise
    the merged histogram degrades to bucketed answers.  Merge order
    never changes a snapshot -- the property worker telemetry relies
    on.
    """

    __slots__ = (
        "name",
        "growth",
        "exact_limit",
        "_min_index",
        "_max_index",
        "_log_growth",
        "_buckets",
        "_samples",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str,
        growth: float = 1.1,
        exact_limit: int = 256,
        min_index: int = -128,
        max_index: int = 512,
    ):
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1.0, got {growth}")
        self.name = name
        self.growth = growth
        self.exact_limit = exact_limit
        self._min_index = min_index
        self._max_index = max_index
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._samples: Optional[list[float]] = []
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording --------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= 0.0:
            return self._min_index - 1  # the shared underflow bucket
        index = math.floor(math.log(value) / self._log_growth)
        return max(self._min_index, min(self._max_index, index))

    def observe(self, value: float) -> None:
        """Record one observation in O(1) with bounded memory."""
        value = float(value)
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._samples is not None:
            if self.count <= self.exact_limit:
                self._samples.append(value)
            else:
                self._samples = None

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold *other* in; bucket geometry must match."""
        if (other.growth, other._min_index, other._max_index) != (
            self.growth, self._min_index, self._max_index,
        ):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge incompatible "
                f"bucket geometry from {other.name!r}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if (
            self._samples is not None
            and other._samples is not None
            and self.count <= self.exact_limit
        ):
            self._samples.extend(other._samples)
        else:
            self._samples = None

    # -- reading ----------------------------------------------------------

    @property
    def exact(self) -> bool:
        """Whether percentiles are exact (sample buffer still intact)."""
        return self._samples is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100).

        Exact (nearest-rank) while the sample buffer holds every
        observation; otherwise the upper edge of the covering log
        bucket, clamped into ``[min, max]``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self.count:
            return 0.0
        if self._samples is not None:
            ordered = sorted(self._samples)
            rank = min(len(ordered) - 1, int(q / 100 * len(ordered)))
            return ordered[rank]
        target = min(self.count - 1, int(q / 100 * self.count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen > target:
                if index < self._min_index:  # underflow bucket
                    return max(0.0, self.min)
                edge = self.growth ** (index + 1)
                return max(self.min, min(self.max, edge))
        return self.max  # pragma: no cover - counts always cover target

    def summary(self) -> dict:
        """Count/min/max/mean/p50/p95/p99 as a JSON-ready mapping."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "exact": self.exact,
        }

    # -- wire form --------------------------------------------------------

    def to_dict(self) -> dict:
        """Full mergeable state (what worker flushes ship)."""
        data = {
            "growth": self.growth,
            "min_index": self._min_index,
            "max_index": self._max_index,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        if self._samples is not None:
            data["samples"] = list(self._samples)
        return data

    @classmethod
    def from_dict(cls, name: str, data: Mapping) -> "StreamingHistogram":
        """Rebuild mergeable state; inverse of :meth:`to_dict`."""
        histogram = cls(
            name,
            growth=data["growth"],
            min_index=data["min_index"],
            max_index=data["max_index"],
        )
        histogram._buckets = {
            int(k): int(v) for k, v in data.get("buckets", {}).items()
        }
        histogram.count = int(data.get("count", 0))
        histogram.total = float(data.get("total", 0.0))
        histogram.min = (
            float(data["min"]) if data.get("min") is not None else math.inf
        )
        histogram.max = (
            float(data["max"]) if data.get("max") is not None else -math.inf
        )
        samples = data.get("samples")
        histogram._samples = (
            [float(v) for v in samples] if samples is not None else None
        )
        return histogram


# ---------------------------------------------------------------------------
# EWMA rate meter


class RateMeter:
    """An exponentially weighted moving average of an event rate.

    ``mark(n)`` records *n* events at the current clock; ``rate()``
    answers events/second, smoothed over roughly *tau* seconds and
    decayed at read time, so a meter nobody marks honestly drifts to
    zero instead of freezing at its last burst.

    Events marked within one clock tick accumulate and are folded in
    at the next tick, keeping the meter deterministic under coarse
    (e.g. simulated) clocks.
    """

    __slots__ = ("name", "tau", "count", "_clock", "_rate", "_last",
                 "_pending")

    def __init__(
        self,
        name: str,
        tau: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.name = name
        self.tau = tau
        self.count = 0
        self._clock = clock
        self._rate = 0.0
        self._last: Optional[float] = None
        self._pending = 0.0

    def mark(self, n: float = 1) -> None:
        """Record *n* events now."""
        self.count += n
        now = self._clock()
        if self._last is None:
            self._last = now
            self._pending += n
            return
        elapsed = now - self._last
        if elapsed <= 0.0:
            self._pending += n
            return
        instantaneous = (self._pending + n) / elapsed
        alpha = 1.0 - math.exp(-elapsed / self.tau)
        self._rate += alpha * (instantaneous - self._rate)
        self._pending = 0.0
        self._last = now

    def rate(self) -> float:
        """Current events/second, decayed to the present."""
        if self._last is None:
            return 0.0
        elapsed = self._clock() - self._last
        if elapsed <= 0.0:
            return self._rate
        return self._rate * math.exp(-elapsed / self.tau)

    def to_dict(self) -> dict:
        return {"count": self.count, "rate": self.rate()}


# ---------------------------------------------------------------------------
# windowed gauge


class WindowedGauge:
    """Last-write-wins plus a bounded window of recent samples.

    Keeps at most *max_samples* ``(time, value)`` pairs no older than
    *window* seconds, so memory is bounded no matter how hot the write
    path is; :meth:`stats` summarizes the surviving window.
    """

    __slots__ = ("name", "window", "max_samples", "_clock", "_samples",
                 "value")

    def __init__(
        self,
        name: str,
        window: float = 60.0,
        max_samples: int = 240,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.window = window
        self.max_samples = max_samples
        self._clock = clock
        self._samples: list[tuple[float, float]] = []
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        now = self._clock()
        self.value = value
        self._samples.append((now, value))
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        samples = self._samples
        keep = 0
        while keep < len(samples) and samples[keep][0] < horizon:
            keep += 1
        if keep:
            del samples[:keep]
        if len(samples) > self.max_samples:
            del samples[: len(samples) - self.max_samples]

    def stats(self) -> dict:
        """Last/min/mean/max over the surviving window."""
        self._evict(self._clock())
        if not self._samples:
            return {"last": self.value}
        values = [value for _t, value in self._samples]
        return {
            "last": self.value,
            "window_min": min(values),
            "window_max": max(values),
            "window_mean": sum(values) / len(values),
        }

    def to_dict(self) -> dict:
        return self.stats()


# ---------------------------------------------------------------------------
# per-process resource sampling (stdlib only)


@dataclass(frozen=True)
class ResourceSample:
    """One process's resource odometer readings, all cumulative."""

    pid: int
    #: User + system CPU seconds consumed so far.
    cpu_seconds: float
    #: Resident set size in bytes (current if ``/proc`` is available,
    #: else the peak RSS from ``getrusage``); 0 when unknowable.
    rss_bytes: int
    #: Total garbage collections across all generations.
    gc_collections: int

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "cpu_seconds": self.cpu_seconds,
            "rss_bytes": self.rss_bytes,
            "gc_collections": self.gc_collections,
        }


def _proc_rss_bytes() -> Optional[int]:
    """Current RSS from ``/proc/self/status``, or ``None`` off-Linux."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024  # kB -> bytes
    except (OSError, ValueError, IndexError):
        pass
    return None


def sample_resources() -> ResourceSample:
    """Sample this process's CPU time, RSS and GC activity.

    Stdlib only: ``resource.getrusage`` for CPU (and peak RSS as the
    fallback when ``/proc/self/status`` is unavailable), :mod:`gc`
    statistics for collection counts.  Never raises -- unknown values
    degrade to zero.
    """
    cpu = 0.0
    peak_rss = 0
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        cpu = usage.ru_utime + usage.ru_stime
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        scale = 1 if os.uname().sysname == "Darwin" else 1024
        peak_rss = int(usage.ru_maxrss) * scale
    except Exception:  # pragma: no cover - exotic platforms
        pass
    rss = _proc_rss_bytes()
    collections = sum(stat.get("collections", 0) for stat in gc.get_stats())
    return ResourceSample(
        pid=os.getpid(),
        cpu_seconds=cpu,
        rss_bytes=rss if rss is not None else peak_rss,
        gc_collections=collections,
    )


# ---------------------------------------------------------------------------
# worker deltas


@dataclass
class WorkerDelta:
    """One worker flush: *cumulative* totals plus a sequence number.

    Totals are cumulative since worker start (never increments), so
    applying a flush is idempotent and ordering-insensitive: the
    driver keeps the highest-``seq`` flush per worker and sums across
    workers at read time.  A worker killed mid-flush (chaos) at worst
    leaves its final window unreported -- it can never double-count
    work already acknowledged, and earlier flushes are untouched.
    """

    worker: str
    seq: int
    #: Cumulative counters since worker start (tasks, rows, ...).
    counters: dict = field(default_factory=dict)
    #: Latest resource odometer (:meth:`ResourceSample.to_dict`).
    resources: dict = field(default_factory=dict)
    #: Mergeable histogram states (:meth:`StreamingHistogram.to_dict`),
    #: cumulative like the counters.
    histograms: dict = field(default_factory=dict)
    #: Recent trace spans as ``(span_seq, span_dict)`` pairs -- the
    #: worker's flight ring, redelivered whole each flush and deduped
    #: driver-side by :class:`repro.obs.tracectx.SpanCollector`.
    spans: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "seq": self.seq,
            "counters": dict(self.counters),
            "resources": dict(self.resources),
            "histograms": dict(self.histograms),
            "spans": [list(entry) for entry in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkerDelta":
        return cls(
            worker=str(data["worker"]),
            seq=int(data["seq"]),
            counters=dict(data.get("counters", {})),
            resources=dict(data.get("resources", {})),
            histograms=dict(data.get("histograms", {})),
            spans=[tuple(entry) for entry in data.get("spans", [])],
        )


# ---------------------------------------------------------------------------
# the registry


class TelemetryRegistry:
    """The driver-side namespace of live instruments.

    Like :class:`~repro.obs.metrics.MetricsRegistry` but built for
    in-flight reads: every instrument is bounded-memory, snapshots are
    cheap, and :meth:`merge_worker` folds in cross-process flushes
    idempotently.  *clock* is shared by every instrument the registry
    creates, so a simulated clock makes whole snapshots deterministic.

    ``enabled`` mirrors the tracer convention: instrumented code can
    hold a registry unconditionally (:data:`NULL_TELEMETRY` when off)
    and never branch.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.counters: dict[str, float] = {}
        self.rates: dict[str, RateMeter] = {}
        self.gauges: dict[str, WindowedGauge] = {}
        self.histograms: dict[str, StreamingHistogram] = {}
        #: Highest-seq flush per worker (the merge state).
        self.workers: dict[str, WorkerDelta] = {}
        #: Phase name -> (done, total) progress.
        self.progress: dict[str, tuple[int, int]] = {}
        self._frames = 0
        self._sinks: list = []

    # -- instrument access ------------------------------------------------

    def rate(self, name: str, tau: float = 5.0) -> RateMeter:
        """Get or create the rate meter called *name*."""
        meter = self.rates.get(name)
        if meter is None:
            meter = self.rates[name] = RateMeter(
                name, tau=tau, clock=self._clock
            )
        return meter

    def gauge(self, name: str, window: float = 60.0) -> WindowedGauge:
        """Get or create the windowed gauge called *name*."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = WindowedGauge(
                name, window=window, clock=self._clock
            )
        return gauge

    def histogram(self, name: str) -> StreamingHistogram:
        """Get or create the streaming histogram called *name*."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = StreamingHistogram(name)
        return histogram

    # -- recording --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add *amount* to counter *name* (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount
        self._notify()

    def mark(self, name: str, n: float = 1) -> None:
        """Record *n* events on rate meter *name*."""
        self.rate(name).mark(n)
        self._notify()

    def set_gauge(self, name: str, value: float) -> None:
        """Record *value* on windowed gauge *name*."""
        self.gauge(name).set(value)
        self._notify()

    def observe(self, name: str, value: float) -> None:
        """Record *value* into streaming histogram *name*."""
        self.histogram(name).observe(value)
        self._notify()

    def phase(self, name: str, done: int, total: int) -> None:
        """Record phase progress: *done* of *total* units finished."""
        self.progress[name] = (done, total)
        self._notify()

    # -- cross-process merge ----------------------------------------------

    def merge_worker(self, delta: WorkerDelta | Mapping) -> bool:
        """Fold one worker flush in; returns whether it advanced state.

        Flushes carry cumulative totals and a per-worker ``seq``;
        duplicates and out-of-order stragglers are dropped, so the
        merge is deterministic regardless of queue arrival order --
        including under chaos, where a killed worker's re-sent or
        half-delivered flushes must not double-count.
        """
        if not isinstance(delta, WorkerDelta):
            delta = WorkerDelta.from_dict(delta)
        current = self.workers.get(delta.worker)
        if current is not None and current.seq >= delta.seq:
            return False
        self.workers[delta.worker] = delta
        self._notify()
        return True

    def worker_totals(self) -> dict[str, dict]:
        """Per-worker sections: resources + cumulative counters."""
        return {
            worker: {
                "seq": delta.seq,
                "counters": dict(delta.counters),
                "resources": dict(delta.resources),
            }
            for worker, delta in sorted(self.workers.items())
        }

    def aggregate_worker_counters(self) -> dict[str, float]:
        """Each worker counter summed over workers' latest flushes."""
        totals: dict[str, float] = {}
        for delta in self.workers.values():
            for name, value in delta.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def merged_worker_histogram(self, name: str) -> StreamingHistogram:
        """Workers' histogram *name* states merged into one."""
        merged = StreamingHistogram(name)
        for delta in sorted(self.workers.items()):
            state = delta[1].histograms.get(name)
            if state is not None:
                merged.merge(StreamingHistogram.from_dict(name, state))
        return merged

    # -- sinks ------------------------------------------------------------

    def attach(self, sink) -> None:
        """Register a sink whose ``update(registry)`` runs per change.

        Sinks rate-limit themselves (see
        :class:`~repro.obs.exposition.TelemetryLogWriter`); the
        registry just tells them something moved.
        """
        self._sinks.append(sink)

    def _notify(self) -> None:
        for sink in self._sinks:
            sink.update(self)

    # -- snapshots --------------------------------------------------------

    def snapshot(self, final: bool = False) -> dict:
        """One JSON-ready telemetry frame of everything live."""
        self._frames += 1
        worker_counters = self.aggregate_worker_counters()
        return {
            "ts": self._clock(),
            "seq": self._frames,
            "final": final,
            "counters": dict(sorted(self.counters.items())),
            "rates": {
                name: meter.to_dict()
                for name, meter in sorted(self.rates.items())
            },
            "gauges": {
                name: gauge.to_dict()
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
            "progress": {
                name: list(done_total)
                for name, done_total in sorted(self.progress.items())
            },
            "workers": self.worker_totals(),
            "worker_counters": dict(sorted(worker_counters.items())),
        }


class NullTelemetry:
    """The disabled registry: every operation is a cheap no-op.

    Shares the :class:`TelemetryRegistry` recording interface so
    instrumented code never branches on whether telemetry is on.
    """

    enabled = False
    counters: dict = {}
    rates: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    workers: dict = {}
    progress: dict = {}

    def inc(self, name: str, amount: float = 1) -> None:
        return None

    def mark(self, name: str, n: float = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def phase(self, name: str, done: int, total: int) -> None:
        return None

    def merge_worker(self, delta) -> bool:
        return False

    def worker_totals(self) -> dict:
        return {}

    def attach(self, sink) -> None:
        return None

    def snapshot(self, final: bool = False) -> dict:
        return {}


#: The shared disabled registry; instrumented code defaults to this.
NULL_TELEMETRY = NullTelemetry()
