"""``repro explain``: the optimizer's decision trail, rendered.

Runs the plan search with decision capture and augments the resulting
:class:`~repro.optimizer.decisions.QueryDecision` with everything a
reader needs to audit the choice:

* the per-measure feasible-key derivation (Theorems 1-2 / Section
  III-B) and the minimal feasible key per component;
* every candidate key with the provenance of its construction, its
  predicted load, and why it was rejected;
* the clustering-factor sweep: Formula 4's cost curve over *cf*, with
  the cubic-root minimizer (:func:`optimal_clustering_factor`) and the
  integer-scan oracle (:func:`exhaustive_clustering_factor`) marked;
* the skew handler's sampled-dispatch decision when sampling ran.

Three renderings: :func:`render_text` (the CLI default),
:meth:`QueryExplanation.to_dict` (JSON), and :func:`render_dot`
(Graphviz).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.distribution.derive import measure_keys
from repro.optimizer.costmodel import (
    clustering_cost_curve,
    exhaustive_clustering_factor,
    optimal_clustering_factor,
)
from repro.optimizer.decisions import CandidateDecision, ComponentDecision

__all__ = [
    "CandidateExplanation",
    "ComponentExplanation",
    "QueryExplanation",
    "explain_plan",
    "render_dot",
    "render_text",
]

#: Above this many feasible cf values the integer-scan oracle is skipped
#: (the sweep then shows only the cubic's pick); keeps explain O(fast).
_EXHAUSTIVE_SCAN_LIMIT = 100_000


@dataclass
class CandidateExplanation:
    """One candidate's scorecard plus its clustering-factor sweep."""

    decision: CandidateDecision
    #: ``(cf, predicted max load)`` curve for annotated candidates
    #: (empty for non-overlapping ones, where cf is meaningless).
    cost_curve: list[tuple[int, float]] = field(default_factory=list)
    #: Formula 4 minimizer from the cubic root (None without annotation).
    model_cf: Optional[int] = None
    #: Integer-scan minimizer; ``None`` when the scan was skipped
    #: because the cf range exceeds the explain-time budget.
    exhaustive_cf: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "decision": self.decision.to_dict(),
            "cost_curve": [list(point) for point in self.cost_curve],
            "model_cf": self.model_cf,
            "exhaustive_cf": self.exhaustive_cf,
        }


@dataclass
class ComponentExplanation:
    """One component's decision trail plus its key derivation."""

    decision: ComponentDecision
    #: Per-measure feasible keys in topological order (Section III-B).
    measure_keys: dict[str, str] = field(default_factory=dict)
    candidates: list[CandidateExplanation] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "decision": self.decision.to_dict(),
            "measure_keys": dict(self.measure_keys),
            "candidates": [c.to_dict() for c in self.candidates],
        }


@dataclass
class QueryExplanation:
    """The full ``repro explain`` payload for one query."""

    n_records: int
    num_reducers: int
    predicted_max_load: float
    components: list[ComponentExplanation] = field(default_factory=list)
    query: str = ""

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "n_records": self.n_records,
            "num_reducers": self.num_reducers,
            "predicted_max_load": self.predicted_max_load,
            "components": [c.to_dict() for c in self.components],
        }


def _sweep(
    candidate: CandidateDecision,
    num_reducers: int,
    n_records: int,
    min_blocks_per_reducer: int,
) -> CandidateExplanation:
    """Attach the cf cost curve to one candidate's decision."""
    explanation = CandidateExplanation(candidate)
    if candidate.span <= 0:
        return explanation
    max_cf = None
    if min_blocks_per_reducer > 0:
        max_cf = max(
            1,
            candidate.n_regions // (num_reducers * min_blocks_per_reducer),
        )
    args = (n_records, candidate.n_regions, num_reducers, candidate.span)
    explanation.model_cf = optimal_clustering_factor(*args, max_cf=max_cf)
    upper = candidate.n_regions if max_cf is None else min(
        candidate.n_regions, max_cf
    )
    if upper <= _EXHAUSTIVE_SCAN_LIMIT:
        explanation.exhaustive_cf = exhaustive_clustering_factor(
            *args, max_cf=max_cf
        )
    explanation.cost_curve = clustering_cost_curve(*args, max_cf=max_cf)
    return explanation


def explain_plan(
    workflow,
    n_records: int,
    num_reducers: int,
    config=None,
    records: Optional[Sequence] = None,
    query: str = "",
) -> QueryExplanation:
    """Plan *workflow* with decision capture and build the explanation.

    Runs the same search ``ParallelEvaluator`` would (same
    :class:`~repro.optimizer.optimizer.OptimizerConfig` semantics;
    *records* feeds sampled dispatch when ``config.use_sampling``), then
    layers the per-measure key derivation and the cf sweeps on top of
    the recorded :class:`~repro.optimizer.decisions.QueryDecision`.
    """
    # Imported lazily: repro.obs is a dependency of the optimizer's
    # tracing hooks, so a module-level import here would be circular.
    from repro.optimizer.optimizer import Optimizer

    optimizer = Optimizer(config)
    plan = optimizer.plan_query(
        workflow, n_records, num_reducers, records=records
    )
    components = []
    for component, subplan in plan.subplans:
        decision = subplan.decision
        keys = {
            name: repr(key)
            for name, key in measure_keys(component).items()
        }
        candidates = [
            _sweep(
                candidate,
                num_reducers,
                n_records,
                decision.min_blocks_per_reducer,
            )
            for candidate in decision.candidates
        ]
        components.append(
            ComponentExplanation(decision, keys, candidates)
        )
    return QueryExplanation(
        n_records=n_records,
        num_reducers=num_reducers,
        predicted_max_load=plan.predicted_max_load,
        components=components,
        query=query,
    )


# -- text rendering ---------------------------------------------------------


def _render_curve(explanation: CandidateExplanation, max_rows: int = 14
                  ) -> list[str]:
    """ASCII bars of the cf cost curve, optima annotated."""
    curve = explanation.cost_curve
    if not curve:
        return []
    marked = {explanation.model_cf, explanation.exhaustive_cf}
    if len(curve) > max_rows:
        stride = max(1, len(curve) // max_rows)
        kept = [
            point
            for index, point in enumerate(curve)
            if index % stride == 0 or point[0] in marked
        ]
        curve = kept
    peak = max(load for _cf, load in curve)
    lines = []
    for cf, load in curve:
        bar = "#" * max(1, round(28 * load / peak)) if peak else ""
        marks = []
        if cf == explanation.model_cf:
            marks.append("cf* cubic")
        if cf == explanation.exhaustive_cf:
            marks.append("cf* exhaustive")
        suffix = f"   <-- {', '.join(marks)}" if marks else ""
        lines.append(f"      cf {cf:>6}  {load:>14.0f}  {bar}{suffix}")
    return lines


def _render_candidate(explanation: CandidateExplanation) -> list[str]:
    candidate = explanation.decision
    mark = "*" if candidate.chosen else "-"
    title = "chosen" if candidate.chosen else "rejected"
    cf = (
        ", ".join(
            f"{attr}={value}"
            for attr, value in sorted(candidate.clustering_factors.items())
        )
        or "none"
    )
    lines = [
        f"  {mark} {title}: {candidate.key}",
        f"      provenance: {candidate.provenance}",
        (
            f"      regions={candidate.n_regions}  span d={candidate.span}  "
            f"cf={cf}  blocks={candidate.num_blocks}"
        ),
        f"      predicted max load {candidate.predicted_max_load:.0f}"
        + (
            f"  (sampled {candidate.sampled_max_load:.0f})"
            if candidate.sampled_max_load is not None
            else ""
        ),
    ]
    if candidate.meets_min_blocks is not None:
        verdict = "yes" if candidate.meets_min_blocks else "NO"
        lines.append(f"      meets min-blocks rule: {verdict}")
    if candidate.rejection:
        lines.append(f"      rejected because: {candidate.rejection}")
    if explanation.cost_curve:
        scan = (
            f"exhaustive cf*={explanation.exhaustive_cf}"
            if explanation.exhaustive_cf is not None
            else "exhaustive scan skipped (cf range too large)"
        )
        lines.append(
            f"      cf sweep (Formula 4): cubic cf*={explanation.model_cf}, "
            f"{scan}"
        )
        lines.extend(_render_curve(explanation))
    return lines


def render_text(explanation: QueryExplanation) -> str:
    """The human-readable EXPLAIN output (the CLI's default format)."""
    lines = [
        (
            f"EXPLAIN: {len(explanation.components)} component(s), "
            f"{explanation.n_records} records over "
            f"{explanation.num_reducers} reducers"
        ),
    ]
    for component in explanation.components:
        decision = component.decision
        lines.append("")
        lines.append(
            f"component {decision.component}: "
            f"measures {decision.measures}"
        )
        lines.append("  per-measure feasible keys (Section III-B):")
        for name, key in component.measure_keys.items():
            lines.append(f"    {name}: {key}")
        lines.append(f"  minimal feasible key: {decision.minimal_key}")
        rule = (
            f"min-blocks-per-reducer={decision.min_blocks_per_reducer}"
            if decision.min_blocks_per_reducer > 0
            else "min-blocks rule off"
        )
        lines.append(f"  strategy: {decision.strategy}  ({rule})")
        for note in decision.notes:
            lines.append(f"  note: {note}")
        lines.append(
            f"  candidates considered: {len(component.candidates)}"
        )
        for candidate in component.candidates:
            lines.extend(_render_candidate(candidate))
        if decision.sampling is not None:
            sampling = decision.sampling
            lines.append(
                "  skew handler: sampled dispatch over "
                f"{sampling.sample_size} records (seed "
                f"{sampling.sample_seed}) judged "
                f"{sampling.candidates_sampled} candidates"
            )
        lines.append(
            f"  chosen: {decision.chosen_key} -- predicted per-reducer "
            f"max load {decision.predicted_max_load:.0f} records"
        )
    lines.append("")
    lines.append(
        "query predicted max load (components add up): "
        f"{explanation.predicted_max_load:.0f} records"
    )
    return "\n".join(lines)


# -- DOT rendering ----------------------------------------------------------


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def render_dot(explanation: QueryExplanation) -> str:
    """Graphviz source of the decision tree: query -> components ->
    candidates, the chosen path bold, rejects grey with their reason."""
    lines = [
        "digraph explain {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
        (
            '  query [label="query\\n'
            f"{explanation.n_records} records / "
            f'{explanation.num_reducers} reducers", style=filled, '
            'fillcolor="#eeeeee"];'
        ),
    ]
    for component in explanation.components:
        decision = component.decision
        cid = f"c{decision.component}"
        label = (
            f"component {decision.component}\\n"
            f"minimal key {_dot_escape(decision.minimal_key)}\\n"
            f"strategy: {decision.strategy}"
        )
        lines.append(f'  {cid} [label="{label}"];')
        lines.append(f"  query -> {cid};")
        for index, candidate in enumerate(component.candidates):
            node = f"{cid}k{index}"
            cand = candidate.decision
            cf = (
                ", ".join(
                    f"{a}={v}"
                    for a, v in sorted(cand.clustering_factors.items())
                )
                or "none"
            )
            label = (
                f"{_dot_escape(cand.key)}\\ncf {cf}, "
                f"{cand.num_blocks} blocks\\n"
                f"predicted {cand.predicted_max_load:.0f}"
            )
            if cand.sampled_max_load is not None:
                label += f"\\nsampled {cand.sampled_max_load:.0f}"
            if cand.chosen:
                lines.append(
                    f'  {node} [label="{label}", style="filled,bold", '
                    'fillcolor="#d5f5d5"];'
                )
                lines.append(f"  {cid} -> {node} [style=bold];")
            else:
                reason = _dot_escape(cand.rejection or "rejected")
                lines.append(
                    f'  {node} [label="{label}", color=grey, '
                    "fontcolor=grey];"
                )
                lines.append(
                    f'  {cid} -> {node} [color=grey, label="{reason}", '
                    "fontcolor=grey, fontsize=8];"
                )
    lines.append("}")
    return "\n".join(lines)
