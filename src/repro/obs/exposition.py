"""Exposition formats for the live telemetry plane.

Two ways out of a :class:`~repro.obs.telemetry.TelemetryRegistry`:

* :func:`prometheus_text` -- one deterministic snapshot in the
  Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers,
  ``metric{label="..."} value`` samples), scrape-ready.
* :class:`TelemetryLogWriter` -- a rate-limited JSONL sink: attach it
  to a registry and it appends one frame per interval, plus a terminal
  ``"final": true`` frame on :meth:`TelemetryLogWriter.close` so
  followers (``repro top --follow``, ``repro stats --watch``) know the
  run is over.  :func:`read_telemetry_frames` is the reader.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Callable, Iterator, Optional

__all__ = [
    "TelemetryLogWriter",
    "prometheus_text",
    "read_telemetry_frames",
]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name sanitized to the Prometheus grammar."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    return repr(float(value))


def prometheus_text(registry) -> str:
    """Render *registry* as a Prometheus text-format snapshot.

    Counters become ``counter`` samples, rate meters expose both their
    cumulative count (counter) and smoothed rate (gauge), windowed
    gauges their last value, streaming histograms a ``summary`` with
    p50/p95/p99 quantile samples plus ``_sum``/``_count``, phase
    progress a pair of gauges, and per-worker resources gauges labeled
    by worker.  Output ordering is sorted and deterministic.
    """
    lines: list[str] = []

    for name, value in sorted(registry.counters.items()):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} Cumulative counter {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")

    for name, meter in sorted(registry.rates.items()):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric}_total Events marked on {name}.")
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {_prom_value(meter.count)}")
        lines.append(
            f"# HELP {metric}_per_second EWMA rate of {name} (1/s)."
        )
        lines.append(f"# TYPE {metric}_per_second gauge")
        lines.append(f"{metric}_per_second {_prom_value(meter.rate())}")

    for name, gauge in sorted(registry.gauges.items()):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} Windowed gauge {name}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(gauge.value)}")

    for name, histogram in sorted(registry.histograms.items()):
        metric = _prom_name(name)
        lines.append(
            f"# HELP {metric} Streaming distribution of {name}."
        )
        lines.append(f"# TYPE {metric} summary")
        for q in (50, 95, 99):
            quantile = q / 100
            value = histogram.percentile(q) if histogram.count else 0.0
            lines.append(
                f'{metric}{{quantile="{quantile}"}} {_prom_value(value)}'
            )
        lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
        lines.append(f"{metric}_count {_prom_value(histogram.count)}")

    if registry.progress:
        done_metric = _prom_name("phase_done")
        total_metric = _prom_name("phase_total")
        lines.append(
            f"# HELP {done_metric} Work units finished per phase."
        )
        lines.append(f"# TYPE {done_metric} gauge")
        for phase, (done, _total) in sorted(registry.progress.items()):
            lines.append(
                f'{done_metric}{{phase="{phase}"}} {_prom_value(done)}'
            )
        lines.append(
            f"# HELP {total_metric} Work units scheduled per phase."
        )
        lines.append(f"# TYPE {total_metric} gauge")
        for phase, (_done, total) in sorted(registry.progress.items()):
            lines.append(
                f'{total_metric}{{phase="{phase}"}} {_prom_value(total)}'
            )

    workers = registry.worker_totals()
    if workers:
        for resource, help_text in (
            ("cpu_seconds", "CPU seconds consumed by the worker."),
            ("rss_bytes", "Worker resident set size in bytes."),
            ("gc_collections", "Worker GC collections so far."),
        ):
            metric = _prom_name(f"worker_{resource}")
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            for worker, section in sorted(workers.items()):
                value = section.get("resources", {}).get(resource)
                if value is not None:
                    lines.append(
                        f'{metric}{{worker="{worker}"}} '
                        f"{_prom_value(value)}"
                    )

    return "\n".join(lines) + "\n" if lines else ""


class TelemetryLogWriter:
    """A rate-limited JSONL sink for telemetry frames.

    Attach to a registry (``registry.attach(writer)``) and every
    recording call funnels through :meth:`update`, which appends a
    frame at most once per *interval* seconds -- so the log stays
    small no matter how hot the instrumented path is.  :meth:`close`
    writes one last frame marked ``"final": true`` (the signal
    followers stop on) and closes the file.
    """

    def __init__(
        self,
        path,
        interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.path = Path(path)
        self.interval = interval
        self._clock = clock
        self._handle = self.path.open("w", encoding="utf-8")
        self._last_write: Optional[float] = None
        self.frames_written = 0

    def update(self, registry) -> None:
        """Registry change notification; writes if the interval passed."""
        now = self._clock()
        if (
            self._last_write is not None
            and now - self._last_write < self.interval
        ):
            return
        self.write_frame(registry)

    def write_frame(self, registry, final: bool = False) -> None:
        """Append one frame unconditionally."""
        if self._handle.closed:
            return
        frame = registry.snapshot(final=final)
        self._handle.write(json.dumps(frame, sort_keys=True) + "\n")
        self._handle.flush()
        self._last_write = self._clock()
        self.frames_written += 1

    def close(self, registry=None) -> None:
        """Write the terminal frame (if a registry is given) and close."""
        if self._handle.closed:
            return
        if registry is not None:
            self.write_frame(registry, final=True)
        self._handle.close()


def read_telemetry_frames(path) -> Iterator[dict]:
    """Yield frames from a telemetry JSONL log, skipping torn lines.

    A crashed writer can leave a truncated last line; readers (replay,
    ``--watch``) should see every intact frame rather than die on the
    tail.
    """
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue
