"""Consistent logging configuration for the ``repro`` package tree.

Every module in the package logs through ``logging.getLogger(__name__)``
so records carry their true origin (``repro.mapreduce.engine``,
``repro.parallel.executor``, ...).  :func:`configure_logging` attaches
one stream handler to the shared ``repro`` parent logger -- idempotent,
so the CLI's ``--verbose``/``-q`` flags and library callers can call it
freely without duplicating output.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["configure_logging"]

#: The root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: Marker distinguishing our handler from ones callers installed.
_HANDLER_FLAG = "_repro_obs_handler"


def configure_logging(
    level: int | str = logging.INFO,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy and return its root.

    Installs (or re-levels) a single ``StreamHandler`` on the ``repro``
    parent logger with a terse ``level name: message`` format.  Calling
    it again replaces the previous configuration instead of stacking
    handlers.  *level* accepts either a logging constant or a name like
    ``"DEBUG"``; *stream* defaults to ``sys.stderr``.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown logging level {level!r}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    # Do not bubble into the root logger: ad-hoc basicConfig callers
    # would otherwise see every record twice.
    logger.propagate = False
    return logger
