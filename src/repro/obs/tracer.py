"""Nested span tracing on two clocks: wall time and the simulated clock.

A :class:`Tracer` records :class:`SpanEvent`\\ s -- named, attributed
intervals forming a tree via a context-manager stack::

    with tracer.span("optimize", component=0) as span:
        ...
        span.set(chosen_key=repr(key))

Every span carries *wall-clock* timestamps (``time.perf_counter``, real
host time -- useful for profiling the reproduction itself) and may carry
*simulated-clock* timestamps (the deterministic virtual seconds charged
by :class:`~repro.mapreduce.timing.TimingModel`).  Simulated fields are
set explicitly by the instrumentation (:meth:`Span.set_sim`,
:meth:`Tracer.record_span`), so they are bit-identical across runs;
wall fields are measurements and are not.

Tracing is strictly opt-in.  Instrumented code defaults to
:data:`NULL_TRACER`, whose ``span()`` returns one cached no-op handle --
the disabled path is a single attribute lookup plus a method call,
guarded by the overhead benchmark in
``benchmarks/test_perf_obs_overhead.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
]


@dataclass
class SpanEvent:
    """One finished span: a named interval with attributes on two clocks.

    ``track``/``slot`` are set only for per-task spans replayed from a
    :class:`~repro.mapreduce.trace.TaskSpan` schedule; exporters render
    those as one timeline row per (track, slot) pair.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    wall_start: float
    wall_end: float
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    track: Optional[str] = None
    slot: Optional[int] = None
    attributes: dict = field(default_factory=dict)

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict:
        """A JSON-ready mapping (used by the JSONL exporter)."""
        data = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }
        if self.sim_start is not None:
            data["sim_start"] = self.sim_start
            data["sim_end"] = self.sim_end
        if self.track is not None:
            data["track"] = self.track
            data["slot"] = self.slot
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        return data


class Span:
    """A live span handle, valid inside its ``with`` block.

    Returned by :meth:`Tracer.span`; use :meth:`set` to attach
    attributes discovered mid-block and :meth:`set_sim` to pin the
    span's position on the simulated clock.
    """

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "depth",
        "wall_start",
        "sim_start",
        "sim_end",
        "attributes",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], depth: int,
                 sim_start: Optional[float], sim_end: Optional[float],
                 attributes: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.wall_start = tracer._clock()
        self.sim_start = sim_start
        self.sim_end = sim_end
        self.attributes = attributes

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) structured attributes."""
        self.attributes.update(attributes)
        return self

    def set_sim(self, start: float, end: float) -> "Span":
        """Pin the span's interval on the simulated clock."""
        if end < start:
            raise ValueError(f"simulated interval ends before it starts: "
                             f"[{start}, {end}]")
        self.sim_start = start
        self.sim_end = end
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self)


class _NullSpan:
    """The shared no-op span handle of :data:`NULL_TRACER`."""

    __slots__ = ()

    def set(self, **attributes) -> "_NullSpan":
        return self

    def set_sim(self, start: float, end: float) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested span events; the enabled implementation.

    Args:
        clock: Wall-clock source, ``time.perf_counter`` by default
            (injectable for deterministic tests).
        on_event: Optional callback fired with each :class:`SpanEvent`
            as it finishes -- the hook live progress sinks attach to.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        on_event: Optional[Callable[[SpanEvent], None]] = None,
    ):
        self._clock = clock
        self._on_event = on_event
        self._next_id = 0
        self._stack: list[Span] = []
        self.events: list[SpanEvent] = []

    # -- recording -------------------------------------------------------------

    def span(self, name: str, sim_start: Optional[float] = None,
             sim_end: Optional[float] = None, **attributes) -> Span:
        """Open a span; use as ``with tracer.span("name") as span:``."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self,
            name,
            span_id,
            parent.span_id if parent is not None else None,
            len(self._stack),
            sim_start,
            sim_end,
            attributes,
        )
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        # Exiting out of order must not corrupt the tree.  Two cases:
        # the exiting span leaked inner spans (they sit above it on the
        # stack) -- repair their depth so their eventual events still
        # describe a consistent tree, then drop them; or the exiting
        # span itself already leaked past an outer exit and is no
        # longer on the stack at all, in which case the stack must stay
        # untouched (blindly popping here would destroy unrelated
        # spans opened since).
        index = None
        for position in range(len(self._stack) - 1, -1, -1):
            if self._stack[position] is span:
                index = position
                break
        if index is not None:
            for offset, leaked in enumerate(self._stack[index + 1:]):
                leaked.depth = span.depth + 1 + offset
            del self._stack[index:]
        event = SpanEvent(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            depth=span.depth,
            wall_start=span.wall_start,
            wall_end=self._clock(),
            sim_start=span.sim_start,
            sim_end=span.sim_end,
            attributes=span.attributes,
        )
        self.events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    def record_span(self, name: str, sim_start: float, sim_end: float,
                    track: Optional[str] = None, slot: Optional[int] = None,
                    **attributes) -> SpanEvent:
        """Record a completed span purely on the simulated clock.

        Used for intervals that exist only in simulated time (phase
        makespans, per-slot task placements): the wall interval is a
        point at the current wall clock, and the span parents under
        whatever span is currently open.
        """
        now = self._clock()
        parent = self._stack[-1] if self._stack else None
        event = SpanEvent(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            wall_start=now,
            wall_end=now,
            sim_start=sim_start,
            sim_end=sim_end,
            track=track,
            slot=slot,
            attributes=attributes,
        )
        self._next_id += 1
        self.events.append(event)
        if self._on_event is not None:
            self._on_event(event)
        return event

    def add_task_spans(self, track: str, spans: Iterable, *,
                       sim_offset: float = 0.0, name: str = "task") -> None:
        """Replay a scheduled task placement as per-slot span events.

        *spans* is any iterable of
        :class:`~repro.mapreduce.trace.TaskSpan`-shaped objects (fields
        ``task``, ``slot``, ``start``, ``end`` in simulated seconds);
        *sim_offset* shifts them onto the job's global simulated
        timeline.
        """
        for task_span in spans:
            self.record_span(
                f"{name} {task_span.task}",
                sim_offset + task_span.start,
                sim_offset + task_span.end,
                track=track,
                slot=task_span.slot,
                task=task_span.task,
            )

    # -- inspection ------------------------------------------------------------

    def names(self) -> list[str]:
        """Finished span names in completion order (test convenience)."""
        return [event.name for event in self.events]

    def find(self, name: str) -> list[SpanEvent]:
        """All finished spans called *name*."""
        return [event for event in self.events if event.name == name]


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Shares the :class:`Tracer` interface so instrumented code never
    branches on whether tracing is on; records nothing.
    """

    enabled = False
    events: tuple = ()

    def span(self, name: str, sim_start: Optional[float] = None,
             sim_end: Optional[float] = None, **attributes) -> _NullSpan:
        """Return the cached no-op span handle."""
        return _NULL_SPAN

    def record_span(self, name: str, sim_start: float, sim_end: float,
                    track: Optional[str] = None, slot: Optional[int] = None,
                    **attributes) -> None:
        """Do nothing."""
        return None

    def add_task_spans(self, track: str, spans: Iterable, *,
                       sim_offset: float = 0.0, name: str = "task") -> None:
        """Do nothing."""
        return None

    def names(self) -> list[str]:
        """Always empty."""
        return []

    def find(self, name: str) -> list[SpanEvent]:
        """Always empty."""
        return []


#: The shared disabled tracer; instrumented code defaults to this.
NULL_TRACER = NullTracer()
