"""Per-tenant latency SLOs with rolling burn-rate tracking.

An :class:`SloPolicy` states the objective: *target* fraction of a
tenant's queries must complete (successfully) within *objective_ms*.
The :class:`SloTracker` classifies every finished query as good or bad
-- shed, errored, and deadline-missed queries are bad by definition --
and maintains both lifetime counts and a sliding window, from which it
derives the **burn rate**: the rate the error budget is being consumed,

    burn = bad_fraction_in_window / (1 - target)

so 1.0 means "burning exactly the budget" and anything sustained above
1.0 means the SLO will be violated.  ``repro top`` renders one line per
tenant; the run manifest persists the snapshot (schema v7).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

__all__ = ["SloPolicy", "SloTracker"]


@dataclass(frozen=True)
class SloPolicy:
    """A latency objective: *target* of queries within *objective_ms*."""

    objective_ms: float
    target: float = 0.99

    def __post_init__(self):
        if self.objective_ms <= 0:
            raise ValueError("objective_ms must be positive")
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be in (0, 1)")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad fraction."""
        return 1.0 - self.target


class _TenantState:
    __slots__ = ("good", "bad", "window")

    def __init__(self):
        self.good = 0
        self.bad = 0
        self.window: deque = deque()  # (timestamp, is_good)


class SloTracker:
    """Rolling good/bad accounting against per-tenant policies.

    Args:
        default: Policy applied to tenants without an explicit entry
            (``None`` means untracked unless listed in *per_tenant*).
        per_tenant: Tenant-name -> policy overrides.
        window_seconds: Sliding window for the burn rate.
        clock: Monotonic clock source (injectable for tests).
    """

    def __init__(
        self,
        default: Optional[SloPolicy] = None,
        per_tenant: Optional[Mapping[str, SloPolicy]] = None,
        window_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.default = default
        self.per_tenant = dict(per_tenant or {})
        self.window_seconds = window_seconds
        self._clock = clock
        self._tenants: Dict[str, _TenantState] = {}

    def policy_for(self, tenant: str) -> Optional[SloPolicy]:
        return self.per_tenant.get(tenant, self.default)

    def record(self, tenant: str, latency_ms: Optional[float],
               failed: bool = False) -> Optional[bool]:
        """Classify one finished query; returns good/bad, or ``None``
        when the tenant has no policy.

        *failed* marks sheds, errors, and deadline misses -- always
        bad, regardless of latency (pass ``latency_ms=None`` then).
        """
        policy = self.policy_for(tenant)
        if policy is None:
            return None
        good = (not failed and latency_ms is not None
                and latency_ms <= policy.objective_ms)
        state = self._tenants.setdefault(tenant, _TenantState())
        if good:
            state.good += 1
        else:
            state.bad += 1
        now = self._clock()
        state.window.append((now, good))
        self._expire(state, now)
        return good

    def _expire(self, state: _TenantState, now: float) -> None:
        horizon = now - self.window_seconds
        while state.window and state.window[0][0] < horizon:
            state.window.popleft()

    def burn_rate(self, tenant: str) -> float:
        """Error-budget burn over the window (0.0 when idle)."""
        policy = self.policy_for(tenant)
        state = self._tenants.get(tenant)
        if policy is None or state is None:
            return 0.0
        self._expire(state, self._clock())
        total = len(state.window)
        if not total:
            return 0.0
        bad = sum(1 for _, good in state.window if not good)
        return (bad / total) / policy.budget

    def snapshot(self) -> dict:
        """The manifest ``slo`` section (schema v7) / dashboard feed."""
        tenants = {}
        for tenant, state in sorted(self._tenants.items()):
            policy = self.policy_for(tenant)
            if policy is None:
                continue
            self._expire(state, self._clock())
            window_bad = sum(1 for _, good in state.window if not good)
            tenants[tenant] = {
                "objective_ms": policy.objective_ms,
                "target": policy.target,
                "good": state.good,
                "bad": state.bad,
                "window_total": len(state.window),
                "window_bad": window_bad,
                "burn_rate": self.burn_rate(tenant),
            }
        return {"window_seconds": self.window_seconds, "tenants": tenants}
