"""A low-overhead sampling wall profiler for the driver process.

:class:`WallProfiler` wakes a daemon thread every *interval* seconds,
grabs every thread's current frame via :func:`sys._current_frames`
(a single C-level dict copy -- no tracing hooks, no per-call cost),
and tallies each stack in collapsed form::

    module:function;module:function;... count

which is exactly the input format flame-graph renderers (Brendan
Gregg's ``flamegraph.pl``, speedscope, inferno) consume.  Sampling
overhead is proportional to the sampling rate, not to the work being
profiled, so the default 5ms interval stays well under the obs layer's
5% overhead budget.

The profiler's own sampling thread is excluded from the tally.  Use it
as a context manager around the region of interest::

    with WallProfiler(interval=0.005) as profiler:
        run_the_queries()
    profiler.write_collapsed("profile.txt")
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

__all__ = ["WallProfiler"]


def _collapse(frame) -> str:
    """Render one frame's stack as ``mod:func;...`` root-first."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", Path(code.co_filename).stem)
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class WallProfiler:
    """Periodic whole-process stack sampler emitting collapsed stacks."""

    def __init__(self, interval: float = 0.005):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = interval
        self.samples = 0
        self._counts: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-wall-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "WallProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampling ---------------------------------------------------------

    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.is_set():
            self._sample(own_id)
            time.sleep(self.interval)

    def _sample(self, own_id: int) -> None:
        for thread_id, frame in sys._current_frames().items():
            if thread_id == own_id:
                continue
            stack = _collapse(frame)
            if stack:
                self._counts[stack] = self._counts.get(stack, 0) + 1
                self.samples += 1

    # -- output -----------------------------------------------------------

    def collapsed(self) -> list[str]:
        """``stack count`` lines, highest count first (ties by stack)."""
        return [
            f"{stack} {count}"
            for stack, count in sorted(
                self._counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def write_collapsed(self, path) -> Path:
        """Write the collapsed stacks to *path* and return it."""
        target = Path(path)
        target.write_text(
            "\n".join(self.collapsed()) + ("\n" if self._counts else ""),
            encoding="utf-8",
        )
        return target

    def top_stacks(self, n: int = 5) -> list[tuple[str, int]]:
        """The *n* hottest stacks as ``(collapsed, count)`` pairs."""
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]
