"""The flight recorder: a bounded ring of recent spans and events.

Always-on tracing of a busy daemon cannot keep everything; the flight
recorder keeps the *recent past* (a bounded deque of span/event dicts)
and dumps it as a self-contained JSON bundle when something goes wrong:
an execution error, a shed storm, a deadline miss, or an operator
sending ``SIGUSR2``.  Worker processes keep their own ring (a bounded
buffer inside ``_WORKER``) shipped over the telemetry channel, so the
daemon-side ring sees cross-process spans too.

Bundles are rate-limited per reason (one per
:data:`DUMP_COOLDOWN_SECONDS`) and capped per run so a misbehaving
workload cannot fill the disk.  ``repro trace --spans <bundle>`` reads
dumps directly -- they are self-contained: reason, timestamp, context,
and every ringed span.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from typing import Callable, Optional

__all__ = ["DUMP_COOLDOWN_SECONDS", "FlightRecorder"]

#: Minimum seconds between two dumps for the same reason.
DUMP_COOLDOWN_SECONDS = 5.0


class FlightRecorder:
    """Bounded in-memory ring of spans/events with triggered dumps.

    Args:
        capacity: Ring size (oldest entries evicted first).
        directory: Where bundles are written; ``None`` keeps dumps
            in-memory only (``self.dumps``), which tests use.
        max_dumps: Hard cap on bundles written per run.
        cooldown_seconds: Per-reason minimum interval between dumps.
        clock: Wall-clock source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 2048,
        directory: Optional[str] = None,
        max_dumps: int = 16,
        cooldown_seconds: float = DUMP_COOLDOWN_SECONDS,
        clock: Callable[[], float] = time.time,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.directory = directory
        self.max_dumps = max_dumps
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._last_dump: dict[str, float] = {}
        self._dump_serial = 0
        self.dumps: list[dict] = []
        self.dump_paths: list[str] = []
        self.suppressed = 0

    # -- recording -------------------------------------------------------------

    def record(self, span: dict) -> None:
        """Push one finished span dict onto the ring."""
        with self._lock:
            self._ring.append(span)

    def note(self, kind: str, **details) -> None:
        """Push an instantaneous event (shed decision, breaker trip)."""
        entry = {"event": kind, "ts": self._clock()}
        if details:
            entry.update(details)
        with self._lock:
            self._ring.append(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- dumping ---------------------------------------------------------------

    def dump(self, reason: str, **context) -> Optional[str]:
        """Write the ring as a bundle; returns the path (or ``None``
        when in-memory only, rate-limited, or over the dump cap)."""
        now = self._clock()
        with self._lock:
            last = self._last_dump.get(reason)
            if (last is not None and
                    now - last < self.cooldown_seconds) or (
                    self._dump_serial >= self.max_dumps):
                self.suppressed += 1
                return None
            self._last_dump[reason] = now
            self._dump_serial += 1
            serial = self._dump_serial
            entries = list(self._ring)
        bundle = {
            "kind": "flight-recorder",
            "reason": reason,
            "ts": now,
            "serial": serial,
            "pid": os.getpid(),
            "context": context,
            "spans": entries,
        }
        self.dumps.append(bundle)
        if self.directory is None:
            return None
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory, f"flight-{serial:03d}-{reason}.json"
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle)
            handle.write("\n")
        self.dump_paths.append(path)
        return path

    # -- signals ---------------------------------------------------------------

    def install_sigusr2(self) -> bool:
        """Dump on ``SIGUSR2`` (main thread only; returns success)."""
        if threading.current_thread() is not threading.main_thread():
            return False

        def _handler(signum, frame):
            self.dump("sigusr2")

        try:
            signal.signal(signal.SIGUSR2, _handler)
        except (ValueError, AttributeError, OSError):
            return False
        return True
