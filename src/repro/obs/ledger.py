"""The latency attribution ledger: where did each query's time go?

Every query served by the daemon gets a :class:`QueryLedger` opened at
submission and closed at completion; between the two, the serving path
attributes wall time to named :data:`PHASES` (queue wait, admission
hold, cache lookup, planning, map, shuffle, reduce, retry overhead,
result split).  Closing computes the *unattributed residual* -- the
end-to-end latency minus everything attributed -- and the invariant the
test suite and ``tools/serve_smoke.py --check-traces`` enforce is that
this residual stays below a small tolerance: the phases must tile the
query's latency, not sample it.

:class:`LedgerBook` aggregates closed ledgers per tenant for
``repro stats`` / ``repro top`` and the run manifest (schema v6+).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["PHASES", "LedgerBook", "QueryLedger"]

#: Attribution phases, in pipeline order.  ``retry_overhead`` is backoff
#: and re-dispatch delay added by fault recovery; everything else is a
#: stage every query passes through (possibly with zero width).
PHASES = (
    "queue_wait",
    "admission_hold",
    "cache_lookup",
    "planning",
    "map",
    "shuffle",
    "reduce",
    "retry_overhead",
    "result_split",
)


@dataclass
class QueryLedger:
    """Wall-time attribution for one query, phases in milliseconds."""

    query: str
    trace_id: str
    tenant: str = ""
    started_at: float = 0.0
    phases: Dict[str, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in PHASES}
    )
    status: str = ""
    total_ms: float = 0.0
    residual_ms: float = 0.0
    closed: bool = False
    #: Wall-clock watermark (same clock as ``started_at``) up to which
    #: this query's residence has already been attributed.  A query
    #: whose connected components ride different share groups can have
    #: several of them queued or executing *concurrently*; clipping
    #: interval attributions against the watermark keeps one wall
    #: second from being attributed twice.
    window_until: float = 0.0

    def add(self, phase: str, seconds: float) -> None:
        """Attribute *seconds* of wall time to *phase*."""
        if phase not in self.phases:
            raise KeyError(f"unknown ledger phase: {phase!r}")
        if seconds > 0:
            self.phases[phase] += seconds * 1000.0

    def add_window(self, phase: str, start: float, end: float) -> None:
        """Attribute the wall interval [*start*, *end*) to *phase*,
        clipped against what earlier intervals already covered."""
        start = max(start, self.window_until)
        if end <= start:
            return
        self.add(phase, end - start)
        self.window_until = end

    def add_phases(
        self, widths: Dict[str, float], start: float, end: float
    ) -> None:
        """Attribute the interval [*start*, *end*) split per *widths*.

        *widths* (phase -> seconds) gives the breakdown's *shape*; the
        interval gives the total.  Scaling the widths to tile exactly
        the uncovered part of the interval both clips what a concurrent
        component already attributed and absorbs the small scheduling
        gap between the interval endpoints (daemon clock) and the sum
        of the widths (measured inside the execution thread) -- the
        ledger must tile wall time, not sample it.
        """
        if end <= start:
            return
        clipped = max(start, self.window_until)
        if end <= clipped:
            return
        total = sum(seconds for seconds in widths.values() if seconds > 0)
        if total <= 0:
            return
        scale = (end - clipped) / total
        for phase, seconds in widths.items():
            self.add(phase, seconds * scale)
        self.window_until = end

    def attributed_ms(self) -> float:
        return sum(self.phases.values())

    def close(self, ended_at: float, status: str) -> "QueryLedger":
        """Close at *ended_at* (same clock as ``started_at``)."""
        self.status = status
        self.total_ms = max(0.0, (ended_at - self.started_at) * 1000.0)
        self.residual_ms = self.total_ms - self.attributed_ms()
        self.closed = True
        return self

    def complete(self, tolerance: float = 0.05,
                 floor_ms: float = 1.0) -> bool:
        """True when phases tile the latency within tolerance.

        The bound is ``max(tolerance * total, floor_ms)``: a relative
        budget for long queries, an absolute floor so microsecond
        scheduling jitter cannot fail sub-millisecond ones.
        """
        if not self.closed:
            return False
        return abs(self.residual_ms) <= max(
            tolerance * self.total_ms, floor_ms
        )

    def to_dict(self) -> dict:
        return {
            "query": self.query,
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "status": self.status,
            "total_ms": self.total_ms,
            "residual_ms": self.residual_ms,
            "phases": {
                phase: value
                for phase, value in self.phases.items()
                if value
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryLedger":
        ledger = cls(
            query=data.get("query", ""),
            trace_id=data.get("trace_id", ""),
            tenant=data.get("tenant", ""),
        )
        for phase, value in data.get("phases", {}).items():
            if phase in ledger.phases:
                ledger.phases[phase] = float(value)
        ledger.status = data.get("status", "")
        ledger.total_ms = float(data.get("total_ms", 0.0))
        ledger.residual_ms = float(data.get("residual_ms", 0.0))
        ledger.closed = True
        return ledger


class LedgerBook:
    """All ledgers of a run, with per-tenant aggregation."""

    def __init__(self):
        self.ledgers: Dict[str, QueryLedger] = {}

    def open(self, trace_id: str, query: str, tenant: str,
             started_at: float) -> QueryLedger:
        ledger = QueryLedger(
            query=query,
            trace_id=trace_id,
            tenant=tenant,
            started_at=started_at,
            window_until=started_at,
        )
        self.ledgers[trace_id] = ledger
        return ledger

    def get(self, trace_id: str) -> Optional[QueryLedger]:
        return self.ledgers.get(trace_id)

    def closed(self) -> list[QueryLedger]:
        return [lg for lg in self.ledgers.values() if lg.closed]

    def tenant_breakdown(self) -> dict:
        """Mean per-phase milliseconds per tenant, over closed ledgers."""
        sums: Dict[str, dict] = {}
        for ledger in self.closed():
            entry = sums.setdefault(
                ledger.tenant or "-",
                {"queries": 0, "total_ms": 0.0, "residual_ms": 0.0,
                 "phases": {phase: 0.0 for phase in PHASES}},
            )
            entry["queries"] += 1
            entry["total_ms"] += ledger.total_ms
            entry["residual_ms"] += ledger.residual_ms
            for phase, value in ledger.phases.items():
                entry["phases"][phase] += value
        breakdown = {}
        for tenant, entry in sums.items():
            count = entry["queries"]
            breakdown[tenant] = {
                "queries": count,
                "mean_total_ms": entry["total_ms"] / count,
                "mean_residual_ms": entry["residual_ms"] / count,
                "mean_phase_ms": {
                    phase: value / count
                    for phase, value in entry["phases"].items()
                    if value
                },
            }
        return breakdown

    def to_dict(self) -> dict:
        """The manifest ``tracing`` section (schema v6)."""
        closed = self.closed()
        return {
            "phases": list(PHASES),
            "queries": {
                trace_id: ledger.to_dict()
                for trace_id, ledger in self.ledgers.items()
                if ledger.closed
            },
            "complete": sum(1 for lg in closed if lg.complete()),
            "total": len(closed),
            "tenants": self.tenant_breakdown(),
        }
