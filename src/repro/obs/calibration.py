"""Predicted-versus-measured calibration of the analytical cost model.

The optimizer picks plans from Formulae 2 and 4 -- predictions of the
heaviest reducer load under random block assignment.  This module joins
those predictions against what one evaluation actually measured (the
:class:`~repro.mapreduce.counters.JobReport`'s per-reducer loads and
counters) into a :class:`CalibrationReport`: signed relative errors for
the max load, the shipped record volume, the shuffle bytes and the
block count, plus a per-reducer load histogram.

The parallel executor builds one report per evaluation and attaches it
to the :class:`~repro.parallel.report.ParallelResult`; ``repro trace``
persists it in the run manifest and ``repro stats`` prints it, so every
BENCH trajectory carries its own model-accuracy audit.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

__all__ = [
    "CalibrationReport",
    "ComponentCalibration",
    "load_histogram",
    "relative_error",
]


def relative_error(predicted: float, actual: float) -> Optional[float]:
    """Signed relative error ``(predicted - actual) / actual``.

    Positive means the model over-predicted.  ``None`` when the actual
    value is zero (no meaningful denominator).
    """
    if actual == 0:
        return None
    return (predicted - actual) / actual


def load_histogram(loads: Sequence[float], buckets: int = 8) -> dict:
    """Histogram + quantile summary of per-reducer loads.

    Equal-width buckets over ``[min, max]`` (one degenerate bucket when
    every reducer carries the same load), plus count/min/max/mean and
    the p50/p90 quantiles by nearest-rank.
    """
    loads = list(loads)
    if not loads:
        return {"count": 0, "buckets": []}
    lo, hi = min(loads), max(loads)
    ordered = sorted(loads)

    def quantile(q: float) -> float:
        index = min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1)
        return ordered[max(0, index)]

    summary = {
        "count": len(loads),
        "min": lo,
        "max": hi,
        "mean": sum(loads) / len(loads),
        "p50": quantile(0.50),
        "p90": quantile(0.90),
    }
    if lo == hi:
        summary["buckets"] = [{"lo": lo, "hi": hi, "count": len(loads)}]
        return summary
    width = (hi - lo) / buckets
    counts = [0] * buckets
    for load in loads:
        index = min(buckets - 1, int((load - lo) / width))
        counts[index] += 1
    summary["buckets"] = [
        {"lo": lo + i * width, "hi": lo + (i + 1) * width, "count": count}
        for i, count in enumerate(counts)
    ]
    return summary


@dataclass
class ComponentCalibration:
    """One component's model inputs and predictions (per-component
    measurements do not exist: reducers mix every component's blocks)."""

    component: int
    key: str
    clustering_factors: dict[str, int]
    #: Which formula produced the prediction: ``"formula-2"`` for
    #: non-overlapping keys, ``"formula-4"`` for annotated ones.
    formula: str
    predicted_max_load: float
    predicted_blocks: int
    #: Modelled record duplication ``(d + cf) / cf`` (1.0 without
    #: annotations).
    predicted_replication: float

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class CalibrationReport:
    """Formula 2/4 predictions joined against one run's measurements."""

    predicted_max_load: float
    actual_max_load: float
    #: Signed relative error of the Formula 2/4 max-load prediction --
    #: the paper's central quantity.  ``None`` when nothing was loaded.
    max_load_error: Optional[float]
    predicted_shipped_records: float
    actual_shipped_records: float
    shipped_records_error: Optional[float]
    predicted_shuffle_bytes: float
    actual_shuffle_bytes: float
    #: ``None`` under early aggregation: the model predicts raw-record
    #: shipping, which the combiner invalidates by design.
    shuffle_bytes_error: Optional[float]
    predicted_blocks: int
    #: Non-empty blocks the reducers actually served (``None`` when the
    #: caller could not observe them).
    actual_blocks: Optional[int]
    blocks_error: Optional[float]
    early_aggregation: bool
    load_imbalance: float
    histogram: dict = field(default_factory=dict)
    components: list[ComponentCalibration] = field(default_factory=list)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_run(
        cls,
        plan,
        report,
        *,
        record_bytes: int,
        key_bytes: int = 16,
        early_aggregation: bool = False,
        actual_blocks: Optional[int] = None,
    ) -> "CalibrationReport":
        """Join *plan* predictions against *report* measurements.

        *plan* is a :class:`~repro.optimizer.optimizer.QueryPlan` (any
        object with ``.subplans``); *report* a
        :class:`~repro.mapreduce.counters.JobReport`.  *record_bytes*
        and *key_bytes* price the predicted shuffle volume the same way
        the engine prices the measured one; *actual_blocks* is the
        number of non-empty blocks the reducers served, counted by the
        executor.
        """
        n_records = report.counters.map_input_records
        components = []
        predicted_shipped = 0.0
        predicted_blocks = 0
        for index, (_wf, subplan) in enumerate(plan.subplans):
            scheme = subplan.scheme
            key = scheme.key
            annotated = key.annotated_attributes()
            replication = 1.0
            for attr in annotated:
                span = key.component(attr).span
                cf = scheme.clustering_factors.get(attr, 1)
                replication *= (span + cf) / cf
            components.append(
                ComponentCalibration(
                    component=index,
                    key=repr(key),
                    clustering_factors=dict(scheme.clustering_factors),
                    formula="formula-4" if annotated else "formula-2",
                    predicted_max_load=subplan.predicted_max_load,
                    predicted_blocks=scheme.num_blocks(),
                    predicted_replication=replication,
                )
            )
            predicted_shipped += n_records * replication
            predicted_blocks += scheme.num_blocks()

        predicted_max = sum(c.predicted_max_load for c in components)
        actual_max = float(report.max_reducer_load)
        actual_shipped = float(report.counters.map_output_records)
        predicted_bytes = predicted_shipped * (key_bytes + record_bytes)
        actual_bytes = float(report.counters.shuffle_bytes)
        return cls(
            predicted_max_load=predicted_max,
            actual_max_load=actual_max,
            max_load_error=relative_error(predicted_max, actual_max),
            predicted_shipped_records=predicted_shipped,
            actual_shipped_records=actual_shipped,
            shipped_records_error=relative_error(
                predicted_shipped, actual_shipped
            ),
            predicted_shuffle_bytes=predicted_bytes,
            actual_shuffle_bytes=actual_bytes,
            shuffle_bytes_error=(
                None
                if early_aggregation
                else relative_error(predicted_bytes, actual_bytes)
            ),
            predicted_blocks=predicted_blocks,
            actual_blocks=actual_blocks,
            blocks_error=(
                relative_error(predicted_blocks, actual_blocks)
                if actual_blocks is not None
                else None
            ),
            early_aggregation=early_aggregation,
            load_imbalance=report.load_imbalance,
            histogram=load_histogram(report.reducer_loads),
            components=components,
        )

    # -- round-trips ------------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CalibrationReport":
        kwargs = dict(data)
        kwargs["components"] = [
            ComponentCalibration(**entry)
            for entry in kwargs.get("components", [])
        ]
        return cls(**kwargs)

    # -- presentation -----------------------------------------------------------

    @staticmethod
    def _pct(error: Optional[float]) -> str:
        if error is None:
            return "n/a"
        return f"{error:+.1%}"

    def describe(self) -> str:
        """The calibration section of ``repro stats``."""
        lines = [
            "calibration (predicted vs measured):",
            (
                f"  max reducer load   {self.predicted_max_load:>12.0f}  vs "
                f"{self.actual_max_load:>10.0f}  "
                f"error {self._pct(self.max_load_error)}"
            ),
            (
                f"  shipped records    {self.predicted_shipped_records:>12.0f}"
                f"  vs {self.actual_shipped_records:>10.0f}  "
                f"error {self._pct(self.shipped_records_error)}"
            ),
            (
                f"  shuffle bytes      {self.predicted_shuffle_bytes:>12.0f}"
                f"  vs {self.actual_shuffle_bytes:>10.0f}  "
                f"error {self._pct(self.shuffle_bytes_error)}"
                + (
                    "  (early aggregation: raw-shipping model not "
                    "comparable)"
                    if self.early_aggregation
                    else ""
                )
            ),
        ]
        if self.actual_blocks is not None:
            lines.append(
                f"  blocks             {self.predicted_blocks:>12}  vs "
                f"{self.actual_blocks:>10}  "
                f"error {self._pct(self.blocks_error)}"
                "  (grid size vs non-empty)"
            )
        for comp in self.components:
            cf = (
                ", ".join(
                    f"{attr}={cf}"
                    for attr, cf in sorted(comp.clustering_factors.items())
                )
                or "-"
            )
            lines.append(
                f"  component {comp.component}: {comp.key} [{comp.formula}] "
                f"cf {cf}, predicted max {comp.predicted_max_load:.0f}, "
                f"{comp.predicted_blocks} blocks, "
                f"replication x{comp.predicted_replication:.2f}"
            )
        hist = self.histogram
        if hist.get("count"):
            lines.append(
                f"  reducer loads: {hist['count']} reducers, "
                f"min {hist['min']:.0f} / p50 {hist['p50']:.0f} / "
                f"p90 {hist['p90']:.0f} / max {hist['max']:.0f}, "
                f"imbalance {self.load_imbalance:.2f}"
            )
            peak = max(
                (bucket["count"] for bucket in hist["buckets"]), default=0
            )
            for bucket in hist["buckets"]:
                bar = "#" * round(24 * bucket["count"] / peak) if peak else ""
                lines.append(
                    f"    [{bucket['lo']:>9.0f}, {bucket['hi']:>9.0f}) "
                    f"{bucket['count']:>4}  {bar}"
                )
        return "\n".join(lines)
