"""Cross-process trace context and the per-query span recorder.

The stack-based :class:`~repro.obs.tracer.Tracer` assumes one nested
call tree per thread; the serving daemon interleaves many queries on
one event loop and fans execution out to worker *processes*, so causal
structure must be carried explicitly.  This module provides:

* :class:`TraceContext` -- an immutable (trace_id, span_id, parent_id,
  links) tuple minted once per query and handed down through admission,
  share groups, executors, and worker processes.  ``to_wire()`` /
  :func:`context_from_wire` give it a JSON-safe shape for the existing
  seq-deduped telemetry channel.
* :class:`QueryTracer` -- a thread-safe recorder of finished
  :class:`TraceSpan` records tagged with their context.  Span ids are
  ``"{pid:x}.{counter}"`` strings, unique across processes, so a
  post-run merge of daemon and worker spans needs no coordination.
* :func:`wire_span` -- worker-side span construction from a wire
  context without a tracer instance (workers only buffer and ship).
* :class:`SpanCollector` -- driver-side dedup of worker spans by
  (worker, seq), mirroring the chaos-safe merge the telemetry plane
  uses for counters: retries and re-flushes never double-record.

Share-group semantics: a group's single execution span belongs to the
*first* member's trace and carries ``links`` -- (trace_id, span_id)
pairs naming the other members' root spans -- so every member's tree
reaches the shared execution subtree.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "NULL_QUERY_TRACER",
    "NullQueryTracer",
    "QueryTracer",
    "SpanCollector",
    "TraceContext",
    "TraceSpan",
    "context_from_wire",
    "fork_context",
    "new_span_id",
    "wire_span",
]

_COUNTER = itertools.count(1)


def new_span_id() -> str:
    """A process-unique span id, comparable across processes.

    The pid prefix keeps ids minted independently in the daemon and in
    every worker process distinct without shared state.
    """
    return f"{os.getpid():x}.{next(_COUNTER)}"


@dataclass(frozen=True)
class TraceContext:
    """Where a new span would attach: trace plus parent position.

    ``span_id`` is the id a span *closing this context* records under
    (and the parent id for children forked from it); ``links`` are
    foreign (trace_id, span_id) parents for share-group execution
    spans that serve several queries at once.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    links: tuple = ()

    def to_wire(self) -> dict:
        """A JSON-safe mapping shippable to worker processes."""
        data = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            data["parent_id"] = self.parent_id
        if self.links:
            data["links"] = [list(pair) for pair in self.links]
        return data


def context_from_wire(data: dict) -> TraceContext:
    """Rebuild a :class:`TraceContext` from :meth:`TraceContext.to_wire`."""
    return TraceContext(
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        links=tuple(tuple(pair) for pair in data.get("links", ())),
    )


def fork_context(ctx: TraceContext, links: Sequence = ()) -> TraceContext:
    """A child context: fresh span id, parented under *ctx*'s span."""
    return TraceContext(
        trace_id=ctx.trace_id,
        span_id=new_span_id(),
        parent_id=ctx.span_id,
        links=tuple(tuple(pair) for pair in links),
    )


@dataclass
class TraceSpan:
    """One finished, context-tagged span on the shared wall clock."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    wall_start: float
    wall_end: float
    process: str = ""
    links: tuple = ()
    attributes: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return (self.wall_end - self.wall_start) * 1000.0

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }
        if self.process:
            data["process"] = self.process
        if self.links:
            data["links"] = [list(pair) for pair in self.links]
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpan":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            wall_start=float(data.get("wall_start", 0.0)),
            wall_end=float(data.get("wall_end", 0.0)),
            process=data.get("process", ""),
            links=tuple(tuple(pair) for pair in data.get("links", ())),
            attributes=dict(data.get("attributes", {})),
        )


def wire_span(
    ctx: dict,
    name: str,
    wall_start: float,
    wall_end: float,
    process: str = "",
    **attributes,
) -> dict:
    """Build a span dict under a wire context, without a tracer.

    Worker processes call this: they hold only the wire form of the
    execution context and buffer finished spans for the telemetry
    flush, so there is no :class:`QueryTracer` on that side.
    """
    span = {
        "name": name,
        "trace_id": ctx["trace_id"],
        "span_id": new_span_id(),
        "parent_id": ctx["span_id"],
        "wall_start": wall_start,
        "wall_end": wall_end,
    }
    if process:
        span["process"] = process
    if attributes:
        span["attributes"] = attributes
    return span


class QueryTracer:
    """Collects context-tagged spans from many concurrent queries.

    Unlike the stack-based tracer, parenting is explicit (via
    :class:`TraceContext`), so interleaved recording from several
    asyncio tasks or threads cannot cross-link trees.  The wall clock
    defaults to ``time.time`` so daemon and worker spans land on one
    comparable timeline.

    Args:
        clock: Shared wall-clock source (injectable for tests).
        sink: Optional callback fired with each finished span's dict --
            the hook the JSONL span-file writer attaches to.
        flight: Optional :class:`~repro.obs.flight.FlightRecorder`;
            every finished span is also pushed onto its ring.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        sink: Optional[Callable[[dict], None]] = None,
        flight=None,
        process: str = "",
    ):
        self._clock = clock
        self._sink = sink
        self.flight = flight
        self.process = process or f"pid{os.getpid()}"
        self._lock = threading.Lock()
        self.spans: list[TraceSpan] = []

    def now(self) -> float:
        return self._clock()

    # -- contexts --------------------------------------------------------------

    def mint(self, trace_id: str) -> TraceContext:
        """A fresh root context for one query's trace."""
        return TraceContext(trace_id=trace_id, span_id=new_span_id())

    def fork(self, ctx: TraceContext, links: Sequence = ()) -> TraceContext:
        """A child context under *ctx* (see :func:`fork_context`)."""
        return fork_context(ctx, links=links)

    # -- recording -------------------------------------------------------------

    def record(
        self,
        ctx: TraceContext,
        name: str,
        wall_start: float,
        wall_end: float,
        process: str = "",
        **attributes,
    ) -> TraceSpan:
        """Record a finished span as a *child* of *ctx*'s span."""
        span = TraceSpan(
            name=name,
            trace_id=ctx.trace_id,
            span_id=new_span_id(),
            parent_id=ctx.span_id,
            wall_start=wall_start,
            wall_end=wall_end,
            process=process or self.process,
        )
        if attributes:
            span.attributes = attributes
        self._emit(span)
        return span

    def close(
        self,
        ctx: TraceContext,
        name: str,
        wall_start: float,
        wall_end: float,
        process: str = "",
        **attributes,
    ) -> TraceSpan:
        """Record the span *ctx itself* stands for (id, parent, links).

        Used for spans whose children are recorded before the span
        ends: fork the context first, parent children under it, then
        close it once the interval is known.
        """
        span = TraceSpan(
            name=name,
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=ctx.parent_id,
            wall_start=wall_start,
            wall_end=wall_end,
            process=process or self.process,
            links=ctx.links,
        )
        if attributes:
            span.attributes = attributes
        self._emit(span)
        return span

    def event(self, ctx: TraceContext, name: str, **attributes) -> TraceSpan:
        """Record an instantaneous annotation under *ctx* (shed,
        deadline, fallback decisions)."""
        now = self.now()
        return self.record(ctx, name, now, now, **attributes)

    def ingest(self, span_dict: dict) -> TraceSpan:
        """Absorb a span shipped from another process (already deduped)."""
        span = TraceSpan.from_dict(span_dict)
        self._emit(span)
        return span

    def _emit(self, span: TraceSpan) -> None:
        with self._lock:
            self.spans.append(span)
        if self.flight is not None:
            self.flight.record(span.to_dict())
        if self._sink is not None:
            self._sink(span.to_dict())

    # -- inspection ------------------------------------------------------------

    def find(self, name: str) -> list[TraceSpan]:
        """All finished spans called *name*."""
        with self._lock:
            return [span for span in self.spans if span.name == name]

    def for_trace(self, trace_id: str) -> list[TraceSpan]:
        """All spans recorded under *trace_id* (links not followed)."""
        with self._lock:
            return [s for s in self.spans if s.trace_id == trace_id]

    def to_dicts(self) -> list[dict]:
        with self._lock:
            return [span.to_dict() for span in self.spans]


class NullQueryTracer:
    """The disabled per-query tracer: context minting still works (so
    callers always hold a context object) but nothing is recorded."""

    enabled = False
    flight = None
    process = ""
    spans: tuple = ()

    def now(self) -> float:
        return 0.0

    def mint(self, trace_id: str) -> TraceContext:
        return TraceContext(trace_id=trace_id, span_id="0")

    def fork(self, ctx: TraceContext, links: Sequence = ()) -> TraceContext:
        return ctx

    def record(self, ctx, name, wall_start, wall_end, process="",
               **attributes) -> None:
        return None

    def close(self, ctx, name, wall_start, wall_end, process="",
              **attributes) -> None:
        return None

    def event(self, ctx, name, **attributes) -> None:
        return None

    def ingest(self, span_dict: dict) -> None:
        return None

    def find(self, name: str) -> list:
        return []

    def for_trace(self, trace_id: str) -> list:
        return []

    def to_dicts(self) -> list:
        return []


#: The shared disabled per-query tracer.
NULL_QUERY_TRACER = NullQueryTracer()


class SpanCollector:
    """Deduplicates worker-shipped spans by (worker, seq).

    Workers buffer finished spans with a monotonically increasing seq
    and ship the recent window with *every* telemetry flush (the same
    at-least-once channel the counters use), so the driver may see a
    span many times and -- after retries -- out of order per worker.
    Keeping the highest seq seen per worker makes the merge idempotent.
    """

    def __init__(self):
        self._seen: dict[str, int] = {}
        self.spans: list[dict] = []

    def merge(self, worker: str, entries: Iterable) -> int:
        """Absorb ``(seq, span_dict)`` pairs from *worker*; returns the
        number of new spans accepted."""
        last = self._seen.get(worker, -1)
        added = 0
        for seq, span in entries:
            if seq > last:
                self.spans.append(span)
                last = seq
                added += 1
        self._seen[worker] = last
        return added
