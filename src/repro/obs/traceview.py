"""Reading, reconstructing, and rendering per-query trace trees.

Consumes span records produced by :class:`~repro.obs.tracectx.QueryTracer`
from either shape on disk:

* a **span file** -- one JSON span per line, written live by
  ``repro serve --trace-spans``; or
* a **flight-recorder bundle** -- one self-contained JSON object with a
  ``"spans"`` list (see :mod:`repro.obs.flight`).

:func:`iter_spans` streams line-by-line (a multi-hour serve run's span
file never has to fit in memory) and supports ``tail=N`` with bounded
memory.  :func:`collect_trace` reassembles one query's causal tree,
*following links*: a share-group execution span belongs to its primary
trace but links to the other members' root spans, so every member's
view includes the shared execution subtree.  :func:`render_trace` is
the ``repro trace --query`` ASCII view and
:func:`trace_chrome_events` the per-query Chrome-trace export (one
trace-viewer process per recorded ``process`` tag).
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterable, Optional, Sequence

__all__ = [
    "collect_trace",
    "find_orphans",
    "iter_spans",
    "list_traces",
    "render_trace",
    "trace_chrome_events",
    "write_trace_chrome",
]

_US = 1e6


def _bundle_spans(data: dict) -> list[dict]:
    spans = data.get("spans", [])
    return [span for span in spans if "span_id" in span]


def iter_spans(source: str | IO[str],
               tail: Optional[int] = None) -> Iterable[dict]:
    """Yield span dicts from a span file or flight bundle.

    Streams JSONL line-by-line; with *tail* only the last N spans are
    yielded, buffered in a bounded deque (memory stays O(N) however
    long the file is).  Flight-recorder bundles (a single JSON object
    with a ``"spans"`` key) are detected from the first line -- or, for
    pretty-printed bundles, by re-reading the whole document when the
    first line alone does not parse.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from iter_spans(handle, tail=tail)
        return

    first = source.readline()
    if not first.strip():
        return
    try:
        head = json.loads(first)
    except json.JSONDecodeError:
        # A pretty-printed bundle: the first line is a fragment.
        rest = first + source.read()
        head = json.loads(rest)
        spans = _bundle_spans(head)
        yield from spans[-tail:] if tail else spans
        return
    if isinstance(head, dict) and "spans" in head and "span_id" not in head:
        spans = _bundle_spans(head)
        yield from spans[-tail:] if tail else spans
        return

    if tail:
        window: deque = deque(maxlen=tail)
        window.append(head)
        for line in source:
            if line.strip():
                window.append(json.loads(line))
        yield from window
        return
    yield head
    for line in source:
        if line.strip():
            yield json.loads(line)


def find_orphans(spans: Sequence[dict]) -> list[dict]:
    """Spans whose parent id is set but absent from *spans*.

    Zero orphans is the smoke-test invariant: every span the run
    recorded hangs off some root.
    """
    known = {span["span_id"] for span in spans}
    return [
        span
        for span in spans
        if span.get("parent_id") is not None
        and span["parent_id"] not in known
    ]


def list_traces(spans: Sequence[dict]) -> dict:
    """Summarize available traces: trace_id -> {root, spans, span count}."""
    summary: dict[str, dict] = {}
    for span in spans:
        entry = summary.setdefault(
            span.get("trace_id", "?"), {"root": "", "spans": 0}
        )
        entry["spans"] += 1
        if span.get("parent_id") is None:
            entry["root"] = span.get("name", "")
    return summary


def collect_trace(spans: Sequence[dict], trace_id: str) -> list[dict]:
    """One query's causal tree: its trace's spans plus linked subtrees.

    Link-following makes share groups work: the group's execution span
    lives in the primary member's trace with ``links`` naming the other
    members' root spans.  For a non-primary member we pull in every
    span that links to one of its spans, then that span's descendants.
    """
    children: dict[str, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None:
            children.setdefault(parent, []).append(span)

    picked: dict[str, dict] = {}
    frontier: list[dict] = []
    for span in spans:
        if span.get("trace_id") == trace_id:
            picked[span["span_id"]] = span
            frontier.append(span)
    # Spans in other traces that link to one of ours join the tree.
    ours = set(picked)
    for span in spans:
        if span["span_id"] in picked:
            continue
        for link in span.get("links", ()):
            if len(link) == 2 and (link[0] == trace_id or
                                   link[1] in ours):
                picked[span["span_id"]] = span
                frontier.append(span)
                break
    # Transitive closure over parent-child edges.
    while frontier:
        span = frontier.pop()
        for child in children.get(span["span_id"], ()):
            if child["span_id"] not in picked:
                picked[child["span_id"]] = span_child = child
                frontier.append(span_child)
    ordered = sorted(
        picked.values(),
        key=lambda s: (s.get("wall_start", 0.0), s["span_id"]),
    )
    return ordered


def _attr_text(span: dict) -> str:
    attributes = span.get("attributes") or {}
    parts = [
        f"{key}={value}"
        for key, value in attributes.items()
        if isinstance(value, (str, int, float, bool))
    ]
    return ("  " + " ".join(parts)) if parts else ""


def render_trace(spans: Sequence[dict], trace_id: str) -> str:
    """ASCII tree of one query's trace (the ``repro trace --query`` view)."""
    tree = collect_trace(spans, trace_id)
    if not tree:
        return f"(no spans for trace {trace_id})"
    by_id = {span["span_id"]: span for span in tree}
    # A linked span renders under the local span it links to, when its
    # real parent is outside this trace's view.
    children: dict[Optional[str], list[dict]] = {}
    for span in tree:
        parent = span.get("parent_id")
        if parent not in by_id and parent is not None:
            parent = next(
                (link[1] for link in span.get("links", ())
                 if len(link) == 2 and link[1] in by_id),
                None,
            )
        children.setdefault(
            parent if parent in by_id else None, []
        ).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.get("wall_start", 0.0),
                                     s["span_id"]))

    base = min(span.get("wall_start", 0.0) for span in tree)
    lines = [f"trace {trace_id} · {len(tree)} spans"]

    def walk(span: dict, depth: int) -> None:
        start_ms = (span.get("wall_start", 0.0) - base) * 1000.0
        duration_ms = (
            span.get("wall_end", 0.0) - span.get("wall_start", 0.0)
        ) * 1000.0
        process = span.get("process", "")
        linked = " ⇢shared" if span.get("links") else ""
        lines.append(
            f"{'  ' * depth}{span.get('name', '?'):<18} "
            f"+{start_ms:8.1f}ms {duration_ms:8.1f}ms"
            f"  [{process}]{linked}{_attr_text(span)}"
        )
        for child in children.get(span["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 1)
    return "\n".join(lines)


def trace_chrome_events(spans: Sequence[dict]) -> list[dict]:
    """Chrome trace-event list for one (already collected) span set.

    Each distinct ``process`` tag becomes a trace-viewer process, so a
    query's daemon-side phases and worker-side task attempts line up on
    one shared wall-clock timeline.
    """
    processes = sorted({span.get("process", "") for span in spans})
    pids = {process: index + 1 for index, process in enumerate(processes)}
    out: list[dict] = []
    for process, pid in pids.items():
        out.append({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process or "daemon"},
        })
    base = min((span.get("wall_start", 0.0) for span in spans),
               default=0.0)
    for span in spans:
        attributes = {
            key: value
            for key, value in (span.get("attributes") or {}).items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        attributes["trace_id"] = span.get("trace_id", "")
        out.append({
            "name": span.get("name", "?"),
            "cat": "trace",
            "ph": "X",
            "ts": (span.get("wall_start", 0.0) - base) * _US,
            "dur": (span.get("wall_end", 0.0)
                    - span.get("wall_start", 0.0)) * _US,
            "pid": pids[span.get("process", "")],
            "tid": 0,
            "args": attributes,
        })
    return out


def write_trace_chrome(spans: Sequence[dict],
                       target: str | IO[str]) -> int:
    """Write the per-query Chrome trace JSON; returns the event count."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_trace_chrome(spans, handle)
    events = trace_chrome_events(spans)
    json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
              target, indent=1)
    target.write("\n")
    return len(events)
