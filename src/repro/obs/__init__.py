"""Observability: tracing, metrics, run manifests and exporters.

The paper's argument is about *where time goes* -- per-phase makespans,
per-reducer loads, optimizer predictions versus reality.  This package
makes those signals first-class and machine-readable:

* :class:`Tracer` -- nested span events carrying wall-clock *and*
  simulated-clock timestamps plus structured attributes; disabled code
  paths use the no-op :data:`NULL_TRACER` at near-zero cost;
* :class:`MetricsRegistry` -- named counters/gauges/histograms fed by
  job counters, reducer loads and optimizer decisions;
* exporters -- JSONL event logs, Chrome trace-event JSON (viewable in
  Perfetto / ``chrome://tracing`` with per-slot task tracks), and a
  live ``--verbose`` progress sink;
* :class:`RunManifest` -- one JSON artifact per evaluation (plan,
  config, counters, breakdown, environment, git sha) consumed by
  ``repro stats``;
* :class:`CalibrationReport` -- the cost model's predicted max load,
  shuffle volume and block count joined against what the run measured
  (Formula 2/4 relative error, per-reducer load histogram);
* :func:`explain_plan` -- the optimizer's full decision trail (key
  derivation, candidate scorecards, cf cost curves, sampled dispatch)
  rendered as text, JSON or DOT by ``repro explain``;
* :func:`diff_manifests` -- field-by-field comparison of two run
  manifests with regression thresholds, behind ``repro diff``;
* :func:`configure_logging` -- one consistent handler for the whole
  ``repro.*`` logger hierarchy;
* :class:`TelemetryRegistry` -- the live telemetry plane: streaming
  histograms, EWMA rate meters, windowed gauges, phase progress, and
  per-worker resource sections merged from the multiprocess channel;
  :data:`NULL_TELEMETRY` is its no-op twin.  Exposed as Prometheus
  text (:func:`prometheus_text`), a JSONL frame log
  (:class:`TelemetryLogWriter` / :func:`read_telemetry_frames`), and
  the ``repro top`` dashboard (:func:`render_frame` /
  :func:`render_replay`);
* :class:`WallProfiler` -- a sampling wall-clock profiler emitting
  collapsed stacks for flame graphs (``run --profile``);
* :class:`QueryTracer` / :class:`TraceContext` -- per-query trace
  trees with explicit cross-process parenting (one causally-linked
  tree per query, share groups joined via span links), rendered by
  ``repro trace --query`` (:func:`render_trace`);
* :class:`QueryLedger` / :class:`LedgerBook` -- the latency
  attribution ledger: every completed query's wall time tiled into
  phases that sum to its end-to-end latency;
* :class:`SloPolicy` / :class:`SloTracker` -- per-tenant latency
  objectives with windowed error-budget burn rates;
* :class:`FlightRecorder` -- a bounded ring of recent spans/events
  dumped as a self-contained bundle on error, shed storm, deadline
  miss, or ``SIGUSR2``.

See ``docs/observability.md`` for a walkthrough.
"""

from repro.obs.calibration import (
    CalibrationReport,
    ComponentCalibration,
    load_histogram,
    relative_error,
)
from repro.obs.diff import FieldDelta, RunDiff, diff_manifests
from repro.obs.explain import (
    CandidateExplanation,
    ComponentExplanation,
    QueryExplanation,
    explain_plan,
    render_dot,
    render_text,
)
from repro.obs.export import (
    chrome_trace_events,
    progress_sink,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.exposition import (
    TelemetryLogWriter,
    prometheus_text,
    read_telemetry_frames,
)
from repro.obs.flight import FlightRecorder
from repro.obs.ledger import PHASES, LedgerBook, QueryLedger
from repro.obs.logconfig import configure_logging
from repro.obs.manifest import (
    RunManifest,
    counters_from_dict,
    counters_to_dict,
    environment_info,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sampler import WallProfiler
from repro.obs.slo import SloPolicy, SloTracker
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    RateMeter,
    ResourceSample,
    StreamingHistogram,
    TelemetryRegistry,
    WindowedGauge,
    WorkerDelta,
    sample_resources,
)
from repro.obs.top import render_frame, render_replay
from repro.obs.tracectx import (
    NULL_QUERY_TRACER,
    NullQueryTracer,
    QueryTracer,
    SpanCollector,
    TraceContext,
    TraceSpan,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer
from repro.obs.traceview import (
    collect_trace,
    find_orphans,
    iter_spans,
    list_traces,
    render_trace,
    trace_chrome_events,
    write_trace_chrome,
)

__all__ = [
    "CalibrationReport",
    "CandidateExplanation",
    "ComponentCalibration",
    "ComponentExplanation",
    "Counter",
    "FieldDelta",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LedgerBook",
    "MetricsRegistry",
    "NULL_QUERY_TRACER",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullQueryTracer",
    "NullTelemetry",
    "NullTracer",
    "PHASES",
    "QueryExplanation",
    "QueryLedger",
    "QueryTracer",
    "RateMeter",
    "ResourceSample",
    "RunDiff",
    "RunManifest",
    "SloPolicy",
    "SloTracker",
    "Span",
    "SpanCollector",
    "SpanEvent",
    "StreamingHistogram",
    "TelemetryLogWriter",
    "TelemetryRegistry",
    "TraceContext",
    "TraceSpan",
    "Tracer",
    "WallProfiler",
    "WindowedGauge",
    "WorkerDelta",
    "chrome_trace_events",
    "collect_trace",
    "configure_logging",
    "counters_from_dict",
    "counters_to_dict",
    "diff_manifests",
    "environment_info",
    "explain_plan",
    "find_orphans",
    "iter_spans",
    "list_traces",
    "load_histogram",
    "progress_sink",
    "prometheus_text",
    "read_telemetry_frames",
    "relative_error",
    "render_dot",
    "render_frame",
    "render_replay",
    "render_text",
    "render_trace",
    "sample_resources",
    "trace_chrome_events",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace_chrome",
]
