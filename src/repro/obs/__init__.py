"""Observability: tracing, metrics, run manifests and exporters.

The paper's argument is about *where time goes* -- per-phase makespans,
per-reducer loads, optimizer predictions versus reality.  This package
makes those signals first-class and machine-readable:

* :class:`Tracer` -- nested span events carrying wall-clock *and*
  simulated-clock timestamps plus structured attributes; disabled code
  paths use the no-op :data:`NULL_TRACER` at near-zero cost;
* :class:`MetricsRegistry` -- named counters/gauges/histograms fed by
  job counters, reducer loads and optimizer decisions;
* exporters -- JSONL event logs, Chrome trace-event JSON (viewable in
  Perfetto / ``chrome://tracing`` with per-slot task tracks), and a
  live ``--verbose`` progress sink;
* :class:`RunManifest` -- one JSON artifact per evaluation (plan,
  config, counters, breakdown, environment, git sha) consumed by
  ``repro stats``;
* :class:`CalibrationReport` -- the cost model's predicted max load,
  shuffle volume and block count joined against what the run measured
  (Formula 2/4 relative error, per-reducer load histogram);
* :func:`explain_plan` -- the optimizer's full decision trail (key
  derivation, candidate scorecards, cf cost curves, sampled dispatch)
  rendered as text, JSON or DOT by ``repro explain``;
* :func:`diff_manifests` -- field-by-field comparison of two run
  manifests with regression thresholds, behind ``repro diff``;
* :func:`configure_logging` -- one consistent handler for the whole
  ``repro.*`` logger hierarchy;
* :class:`TelemetryRegistry` -- the live telemetry plane: streaming
  histograms, EWMA rate meters, windowed gauges, phase progress, and
  per-worker resource sections merged from the multiprocess channel;
  :data:`NULL_TELEMETRY` is its no-op twin.  Exposed as Prometheus
  text (:func:`prometheus_text`), a JSONL frame log
  (:class:`TelemetryLogWriter` / :func:`read_telemetry_frames`), and
  the ``repro top`` dashboard (:func:`render_frame` /
  :func:`render_replay`);
* :class:`WallProfiler` -- a sampling wall-clock profiler emitting
  collapsed stacks for flame graphs (``run --profile``).

See ``docs/observability.md`` for a walkthrough.
"""

from repro.obs.calibration import (
    CalibrationReport,
    ComponentCalibration,
    load_histogram,
    relative_error,
)
from repro.obs.diff import FieldDelta, RunDiff, diff_manifests
from repro.obs.explain import (
    CandidateExplanation,
    ComponentExplanation,
    QueryExplanation,
    explain_plan,
    render_dot,
    render_text,
)
from repro.obs.export import (
    chrome_trace_events,
    progress_sink,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.exposition import (
    TelemetryLogWriter,
    prometheus_text,
    read_telemetry_frames,
)
from repro.obs.logconfig import configure_logging
from repro.obs.manifest import (
    RunManifest,
    counters_from_dict,
    counters_to_dict,
    environment_info,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sampler import WallProfiler
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    RateMeter,
    ResourceSample,
    StreamingHistogram,
    TelemetryRegistry,
    WindowedGauge,
    WorkerDelta,
    sample_resources,
)
from repro.obs.top import render_frame, render_replay
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "CalibrationReport",
    "CandidateExplanation",
    "ComponentCalibration",
    "ComponentExplanation",
    "Counter",
    "FieldDelta",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullTelemetry",
    "NullTracer",
    "QueryExplanation",
    "RateMeter",
    "ResourceSample",
    "RunDiff",
    "RunManifest",
    "Span",
    "SpanEvent",
    "StreamingHistogram",
    "TelemetryLogWriter",
    "TelemetryRegistry",
    "Tracer",
    "WallProfiler",
    "WindowedGauge",
    "WorkerDelta",
    "chrome_trace_events",
    "configure_logging",
    "counters_from_dict",
    "counters_to_dict",
    "diff_manifests",
    "environment_info",
    "explain_plan",
    "load_histogram",
    "progress_sink",
    "prometheus_text",
    "read_telemetry_frames",
    "relative_error",
    "render_dot",
    "render_frame",
    "render_replay",
    "render_text",
    "sample_resources",
    "write_chrome_trace",
    "write_jsonl",
]
