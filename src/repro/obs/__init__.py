"""Observability: tracing, metrics, run manifests and exporters.

The paper's argument is about *where time goes* -- per-phase makespans,
per-reducer loads, optimizer predictions versus reality.  This package
makes those signals first-class and machine-readable:

* :class:`Tracer` -- nested span events carrying wall-clock *and*
  simulated-clock timestamps plus structured attributes; disabled code
  paths use the no-op :data:`NULL_TRACER` at near-zero cost;
* :class:`MetricsRegistry` -- named counters/gauges/histograms fed by
  job counters, reducer loads and optimizer decisions;
* exporters -- JSONL event logs, Chrome trace-event JSON (viewable in
  Perfetto / ``chrome://tracing`` with per-slot task tracks), and a
  live ``--verbose`` progress sink;
* :class:`RunManifest` -- one JSON artifact per evaluation (plan,
  config, counters, breakdown, environment, git sha) consumed by
  ``repro stats``;
* :func:`configure_logging` -- one consistent handler for the whole
  ``repro.*`` logger hierarchy.

See ``docs/observability.md`` for a walkthrough.
"""

from repro.obs.export import (
    chrome_trace_events,
    progress_sink,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.logconfig import configure_logging
from repro.obs.manifest import (
    RunManifest,
    counters_from_dict,
    counters_to_dict,
    environment_info,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunManifest",
    "Span",
    "SpanEvent",
    "Tracer",
    "chrome_trace_events",
    "configure_logging",
    "counters_from_dict",
    "counters_to_dict",
    "environment_info",
    "progress_sink",
    "write_chrome_trace",
    "write_jsonl",
]
