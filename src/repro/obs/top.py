"""The ``repro top`` dashboard renderer.

Renders one telemetry frame (a
:meth:`~repro.obs.telemetry.TelemetryRegistry.snapshot` dict, live or
replayed from a JSONL log) as a fixed-width terminal dashboard: phase
progress bars, throughput meters (rows/s, shuffle bytes/s), per-worker
CPU/RSS with straggler flags, and the cache hit rate.  The same
renderer backs ``repro top`` and ``repro stats --watch`` so the two
views can never drift apart.

Rendering is pure (frame dict in, string out) -- the CLI decides
whether to clear the screen between frames.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["render_frame", "render_replay"]

#: A worker whose CPU time lags the median by more than this factor is
#: flagged as a straggler in the worker table.
STRAGGLER_FACTOR = 2.0

_BAR_WIDTH = 24


def _bar(done: int, total: int) -> str:
    if total <= 0:
        return "[" + "?" * _BAR_WIDTH + "]"
    fraction = min(1.0, done / total)
    filled = int(round(fraction * _BAR_WIDTH))
    return "[" + "#" * filled + "-" * (_BAR_WIDTH - filled) + "]"


def _human_bytes(value: float) -> str:
    magnitude = float(value)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if magnitude < 1024 or unit == "TiB":
            return (
                f"{magnitude:.0f}{unit}"
                if unit == "B"
                else f"{magnitude:.1f}{unit}"
            )
        magnitude /= 1024
    return f"{magnitude:.1f}TiB"  # pragma: no cover - loop always returns


def _human_rate(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M/s"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k/s"
    return f"{value:.1f}/s"


def _progress_lines(frame: dict) -> list[str]:
    progress = frame.get("progress") or {}
    if not progress:
        return []
    lines = ["phases:"]
    for phase, pair in sorted(progress.items()):
        done, total = int(pair[0]), int(pair[1])
        percent = f"{100 * done / total:5.1f}%" if total else "    ?"
        lines.append(
            f"  {phase:<10} {_bar(done, total)} {percent} "
            f"({done}/{total})"
        )
    return lines


def _rate_lines(frame: dict) -> list[str]:
    rates = frame.get("rates") or {}
    if not rates:
        return []
    lines = ["throughput:"]
    for name, entry in sorted(rates.items()):
        rate = float(entry.get("rate", 0.0))
        count = entry.get("count", 0)
        rendered = (
            _human_bytes(rate) + "/s"
            if "bytes" in name
            else _human_rate(rate)
        )
        lines.append(f"  {name:<22} {rendered:>12}  (total {count:g})")
    return lines


def _worker_lines(frame: dict) -> list[str]:
    workers = frame.get("workers") or {}
    if not workers:
        return []
    cpu_by_worker = {
        worker: float(section.get("resources", {}).get("cpu_seconds", 0.0))
        for worker, section in workers.items()
    }
    ordered_cpu = sorted(cpu_by_worker.values())
    median = ordered_cpu[len(ordered_cpu) // 2] if ordered_cpu else 0.0
    lines = ["workers:"]
    lines.append(
        f"  {'worker':<10} {'cpu s':>8} {'rss':>10} {'gc':>5} "
        f"{'tasks':>6}  flags"
    )
    for worker, section in sorted(workers.items()):
        resources = section.get("resources", {})
        counters = section.get("counters", {})
        cpu = float(resources.get("cpu_seconds", 0.0))
        rss = float(resources.get("rss_bytes", 0.0))
        collections = int(resources.get("gc_collections", 0))
        tasks = int(counters.get("tasks", 0))
        flags = ""
        if median > 0 and cpu * STRAGGLER_FACTOR < median:
            flags = "STRAGGLER?"
        lines.append(
            f"  {worker:<10} {cpu:>8.2f} {_human_bytes(rss):>10} "
            f"{collections:>5} {tasks:>6}  {flags}"
        )
    return lines


def _cache_lines(frame: dict) -> list[str]:
    counters = frame.get("counters") or {}
    hits = counters.get("cache.hits")
    misses = counters.get("cache.misses")
    if hits is None and misses is None:
        return []
    hits = hits or 0
    misses = misses or 0
    lookups = hits + misses
    rate = f"{100 * hits / lookups:.1f}%" if lookups else "n/a"
    return [
        f"cache: hit rate {rate} "
        f"({hits:g} hits / {misses:g} misses)"
    ]


def _serving_lines(frame: dict) -> list[str]:
    """The daemon view: admission, queue, shedding and latency."""
    counters = frame.get("counters") or {}
    gauges = frame.get("gauges") or {}
    serving = {
        name: value
        for name, value in counters.items()
        if name.startswith("serve.")
    }
    if not serving and not any(
        name.startswith("serve.") for name in gauges
    ):
        return []

    def gauge(name: str) -> float:
        return float((gauges.get(name) or {}).get("last", 0.0))

    arrivals = counters.get("serve.arrivals", 0)
    completed = counters.get("serve.completed", 0)
    shed = counters.get("serve.shed", 0)
    deadline = counters.get("serve.deadline_missed", 0)
    lines = [
        "serving:",
        (
            f"  arrivals {arrivals:g}  completed {completed:g}  "
            f"shed {shed:g}  deadline missed {deadline:g}"
        ),
        (
            f"  held {gauge('serve.held'):g}  "
            f"queued {gauge('serve.queue_depth'):g}  "
            f"inflight {gauge('serve.inflight'):g}  "
            f"breaker {'OPEN' if gauge('serve.breaker_open') else 'closed'}"
        ),
    ]
    reasons = {
        name[len("serve.shed."):]: value
        for name, value in serving.items()
        if name.startswith("serve.shed.")
    }
    if reasons:
        lines.append(
            "  shed by reason: "
            + ", ".join(
                f"{reason}={value:g}"
                for reason, value in sorted(reasons.items())
            )
        )
    histograms = frame.get("histograms") or {}
    latency = histograms.get("serve.latency_ms")
    if latency and latency.get("count"):
        lines.append(
            f"  latency p50={latency['p50']:.1f}ms "
            f"p95={latency['p95']:.1f}ms p99={latency['p99']:.1f}ms "
            f"(n={latency['count']})"
        )
    group_size = histograms.get("serve.group_size")
    if group_size and group_size.get("count"):
        dispatched = counters.get("serve.groups_dispatched", 0)
        lines.append(
            f"  groups: {dispatched:g} dispatched, "
            f"median size {group_size['p50']:.3g}, "
            f"p99 {group_size['p99']:.3g}"
        )
    return lines


def _ledger_lines(frame: dict) -> list[str]:
    """The attribution view: where completed queries' time went.

    Histograms ``ledger.<phase>_ms`` give per-phase percentiles;
    counters ``ledger.sum.<tenant>.<phase>`` / ``ledger.n.<tenant>``
    give per-tenant mean breakdowns.
    """
    histograms = frame.get("histograms") or {}
    counters = frame.get("counters") or {}
    phase_hists = {
        name[len("ledger."):-len("_ms")]: entry
        for name, entry in histograms.items()
        if name.startswith("ledger.") and name.endswith("_ms")
        and entry.get("count")
    }
    tenant_counts = {
        name[len("ledger.n."):]: value
        for name, value in counters.items()
        if name.startswith("ledger.n.")
    }
    if not phase_hists and not tenant_counts:
        return []
    lines = ["ledger:"]
    for phase, entry in sorted(phase_hists.items()):
        lines.append(
            f"  {phase:<14} p50={entry['p50']:.1f}ms "
            f"p95={entry['p95']:.1f}ms p99={entry['p99']:.1f}ms "
            f"(n={entry['count']})"
        )
    for tenant, count in sorted(tenant_counts.items()):
        if count <= 0:
            continue
        prefix = f"ledger.sum.{tenant}."
        sums = {
            name[len(prefix):]: value
            for name, value in counters.items()
            if name.startswith(prefix)
        }
        total = sums.pop("total", 0.0)
        top = sorted(sums.items(), key=lambda kv: -kv[1])[:3]
        detail = ", ".join(
            f"{phase} {value / count:.1f}ms" for phase, value in top
        )
        lines.append(
            f"  tenant {tenant}: {count:g} queries, "
            f"mean {total / count:.1f}ms"
            + (f" ({detail})" if detail else "")
        )
    return lines


def _slo_lines(frame: dict) -> list[str]:
    """Per-tenant SLO status: good/bad counts and the burn rate."""
    counters = frame.get("counters") or {}
    gauges = frame.get("gauges") or {}
    tenants = sorted(
        {
            name[len("slo."):].rsplit(".", 1)[0]
            for name in list(counters) + list(gauges)
            if name.startswith("slo.")
        }
    )
    if not tenants:
        return []
    lines = ["slo:"]
    for tenant in tenants:
        good = counters.get(f"slo.{tenant}.good", 0)
        bad = counters.get(f"slo.{tenant}.bad", 0)
        burn = float(
            (gauges.get(f"slo.{tenant}.burn") or {}).get("last", 0.0)
        )
        alarm = "  BURNING" if burn > 1.0 else ""
        lines.append(
            f"  {tenant:<12} good {good:g}  bad {bad:g}  "
            f"burn {burn:.2f}x{alarm}"
        )
    return lines


def _transport_lines(frame: dict) -> list[str]:
    """The data-plane view: bytes on the wire and the transport rate."""
    gauges = frame.get("gauges") or {}

    def gauge(name: str) -> float:
        return float((gauges.get(name) or {}).get("last", 0.0))

    shipped = gauge("mp.shipped_bytes")
    shm = gauge("mp.shm_bytes")
    rate = gauge("mp.transport_bytes_per_s")
    if not (shipped or shm or rate):
        return []
    line = f"  shipped {_human_bytes(shipped)}"
    if shm:
        line += f"  shm {_human_bytes(shm)}"
    if rate:
        line += f"  rate {_human_bytes(rate)}/s"
    return ["transport:", line]


def _counter_lines(frame: dict) -> list[str]:
    counters = {
        name: value
        for name, value in (frame.get("counters") or {}).items()
        if not name.startswith(("cache.", "serve.", "ledger.", "slo."))
    }
    if not counters:
        return []
    lines = ["counters:"]
    for name, value in sorted(counters.items()):
        lines.append(f"  {name:<28} {value:g}")
    return lines


def _histogram_lines(frame: dict) -> list[str]:
    histograms = frame.get("histograms") or {}
    populated = {
        name: entry
        for name, entry in histograms.items()
        if entry.get("count")
        and not name.startswith(("serve.", "ledger."))
    }
    if not populated:
        return []
    lines = ["latencies:"]
    for name, entry in sorted(populated.items()):
        lines.append(
            f"  {name:<22} p50={entry['p50']:.4g} "
            f"p95={entry['p95']:.4g} p99={entry['p99']:.4g} "
            f"(n={entry['count']})"
        )
    return lines


def render_frame(frame: dict, title: str = "repro top") -> str:
    """Render one telemetry frame as the dashboard text."""
    stamp = frame.get("ts")
    status = "FINAL" if frame.get("final") else "live"
    header = f"=== {title} · frame {frame.get('seq', '?')} · {status}"
    if stamp is not None:
        header += f" · t={float(stamp):.2f}s"
    header += " ==="
    sections: list[list[str]] = [
        _progress_lines(frame),
        _serving_lines(frame),
        _slo_lines(frame),
        _ledger_lines(frame),
        _rate_lines(frame),
        _transport_lines(frame),
        _worker_lines(frame),
        _cache_lines(frame),
        _histogram_lines(frame),
        _counter_lines(frame),
    ]
    body: list[str] = [header]
    for section in sections:
        if section:
            body.append("")
            body.extend(section)
    if len(body) == 1:
        body += ["", "(no telemetry in this frame)"]
    return "\n".join(body)


def render_replay(
    frames: Iterable[dict],
    title: str = "repro top",
    last_only: bool = False,
) -> str:
    """Render a replayed frame stream.

    With *last_only* the final frame wins (what a live viewer would
    have settled on); otherwise every frame renders in sequence,
    separated by blank lines -- useful for non-tty output and tests.
    """
    rendered: list[str] = []
    last: Optional[dict] = None
    for frame in frames:
        last = frame
        if not last_only:
            rendered.append(render_frame(frame, title=title))
    if last_only:
        if last is None:
            return "(empty telemetry log)"
        return render_frame(last, title=title)
    if not rendered:
        return "(empty telemetry log)"
    return "\n\n".join(rendered)
