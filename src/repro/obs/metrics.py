"""Named counters, gauges and histograms for run-level metrics.

A :class:`MetricsRegistry` is a flat namespace of instruments that the
execution stack feeds: :class:`~repro.mapreduce.counters.JobCounters`
flow in wholesale (one counter per dataclass field, derived with
:func:`dataclasses.fields` so new engine counters can never be silently
dropped), reducer loads land in a histogram, and the optimizer records
its decisions (chosen key, clustering factor, predicted vs. actual max
load) as gauges.

Everything is plain Python and deterministic given deterministic
inputs; :meth:`MetricsRegistry.to_dict` produces the JSON-ready
snapshot embedded in every :class:`~repro.obs.manifest.RunManifest`.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from collections import Counter as _CollectionsCounter
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins observed value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A distribution of observations with summary statistics.

    Stores observations exactly up to *reservoir_size*, so percentiles
    are exact for small runs.  Past the cap, Algorithm R reservoir
    sampling keeps a uniform sample of everything seen -- memory stays
    bounded on hot paths, count/mean/min/max remain exact (tracked as
    running totals), and percentiles switch from exact to approximate
    (uniform-sample estimates); :meth:`summary` reports which regime
    produced its numbers via the ``"exact"`` flag.  The reservoir RNG
    is seeded from the histogram *name*, so two runs feeding identical
    observation streams produce identical summaries.

    For truly unbounded hot-path use (live serving), prefer
    :class:`~repro.obs.telemetry.StreamingHistogram`, whose mergeable
    log-bucket state is what worker telemetry ships.
    """

    __slots__ = ("name", "values", "reservoir_size", "_seen", "_total",
                 "_min", "_max", "_rng")

    #: Default cap on stored observations before sampling kicks in.
    DEFAULT_RESERVOIR_SIZE = 4096

    def __init__(self, name: str, reservoir_size: Optional[int] = None):
        if reservoir_size is not None and reservoir_size <= 0:
            raise ValueError(
                f"reservoir_size must be positive, got {reservoir_size}"
            )
        self.name = name
        self.values: list[float] = []
        self.reservoir_size = (
            reservoir_size
            if reservoir_size is not None
            else self.DEFAULT_RESERVOIR_SIZE
        )
        self._seen = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # Seeded from the name: deterministic across runs and
        # independent of observation order elsewhere in the registry.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one observation (bounded memory past the reservoir)."""
        self._seen += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self.values) < self.reservoir_size:
            self.values.append(value)
            return
        # Algorithm R: keep each of the n seen values with equal
        # probability reservoir_size / n.
        slot = self._rng.randrange(self._seen)
        if slot < self.reservoir_size:
            self.values[slot] = value

    @property
    def exact(self) -> bool:
        """Whether every observation is stored (exact percentiles)."""
        return self._seen == len(self.values)

    @property
    def count(self) -> int:
        return self._seen

    @property
    def mean(self) -> float:
        return self._total / self._seen if self._seen else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100, nearest-rank).

        Exact while the reservoir holds every observation; a
        uniform-sample estimate once sampling has kicked in (see the
        class docstring for the switch).
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, int(q / 100 * len(ordered)))
        return ordered[rank]

    def summary(self) -> dict:
        """Count/min/max/mean/p50/p99 as a JSON-ready mapping."""
        if not self._seen:
            return {"count": 0}
        return {
            "count": self.count,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "exact": self.exact,
        }


class MetricsRegistry:
    """A namespace of named instruments, created on first use."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called *name*."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called *name*."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called *name*."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    # -- convenience recording --------------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""
        self.histogram(name).observe(value)

    def record_job_counters(self, counters, prefix: str = "job.") -> None:
        """Fold a :class:`~repro.mapreduce.counters.JobCounters` in.

        One registry counter per dataclass field -- the field list comes
        from :func:`dataclasses.fields`, so a counter added to the
        engine automatically appears here.  The ``extra`` Counter's
        entries land under ``<prefix>extra.<key>``.
        """
        for field in dataclasses.fields(counters):
            value = getattr(counters, field.name)
            if isinstance(value, _CollectionsCounter):
                for key, count in value.items():
                    self.inc(f"{prefix}extra.{key}", count)
            else:
                self.inc(prefix + field.name, value)

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready snapshot of every instrument."""
        return {
            "counters": {
                name: instrument.value
                for name, instrument in sorted(self.counters.items())
            },
            "gauges": {
                name: instrument.value
                for name, instrument in sorted(self.gauges.items())
            },
            "histograms": {
                name: instrument.summary()
                for name, instrument in sorted(self.histograms.items())
            },
        }
