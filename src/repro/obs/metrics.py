"""Named counters, gauges and histograms for run-level metrics.

A :class:`MetricsRegistry` is a flat namespace of instruments that the
execution stack feeds: :class:`~repro.mapreduce.counters.JobCounters`
flow in wholesale (one counter per dataclass field, derived with
:func:`dataclasses.fields` so new engine counters can never be silently
dropped), reducer loads land in a histogram, and the optimizer records
its decisions (chosen key, clustering factor, predicted vs. actual max
load) as gauges.

Everything is plain Python and deterministic given deterministic
inputs; :meth:`MetricsRegistry.to_dict` produces the JSON-ready
snapshot embedded in every :class:`~repro.obs.manifest.RunManifest`.
"""

from __future__ import annotations

import dataclasses
from collections import Counter as _CollectionsCounter
from typing import Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins observed value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A distribution of observations with summary statistics.

    Keeps every observation (runs are small and deterministic), so
    exact percentiles are available without bucketing error.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100, nearest-rank) of observations."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, int(q / 100 * len(ordered)))
        return ordered[rank]

    def summary(self) -> dict:
        """Count/min/max/mean/p50/p99 as a JSON-ready mapping."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A namespace of named instruments, created on first use."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called *name*."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called *name*."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called *name*."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    # -- convenience recording --------------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name*."""
        self.histogram(name).observe(value)

    def record_job_counters(self, counters, prefix: str = "job.") -> None:
        """Fold a :class:`~repro.mapreduce.counters.JobCounters` in.

        One registry counter per dataclass field -- the field list comes
        from :func:`dataclasses.fields`, so a counter added to the
        engine automatically appears here.  The ``extra`` Counter's
        entries land under ``<prefix>extra.<key>``.
        """
        for field in dataclasses.fields(counters):
            value = getattr(counters, field.name)
            if isinstance(value, _CollectionsCounter):
                for key, count in value.items():
                    self.inc(f"{prefix}extra.{key}", count)
            else:
                self.inc(prefix + field.name, value)

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready snapshot of every instrument."""
        return {
            "counters": {
                name: instrument.value
                for name, instrument in sorted(self.counters.items())
            },
            "gauges": {
                name: instrument.value
                for name, instrument in sorted(self.gauges.items())
            },
            "histograms": {
                name: instrument.summary()
                for name, instrument in sorted(self.histograms.items())
            },
        }
