"""Span-event exporters: JSONL, Chrome trace-event JSON, live progress.

Three consumers of the same :class:`~repro.obs.tracer.SpanEvent` stream:

* :func:`write_jsonl` -- one JSON object per event, the stable
  machine-readable log for ad-hoc analysis;
* :func:`write_chrome_trace` / :func:`chrome_trace_events` -- the Chrome
  trace-event format (open ``trace.json`` at https://ui.perfetto.dev or
  ``chrome://tracing``).  The simulated timeline renders as one process
  with the phase span tree plus one thread row per (track, slot) pair --
  map and reduce task placements become per-slot tracks -- and the wall
  clock renders as a second process for profiling the reproduction
  itself;
* :func:`progress_sink` -- a human-readable live sink for ``--verbose``
  runs, printing each span as it finishes.

All timestamps in the Chrome export are microseconds, as the format
requires; simulated seconds are scaled by 1e6.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Iterable, Optional, Sequence

from repro.obs.tracer import SpanEvent

__all__ = [
    "chrome_trace_events",
    "progress_sink",
    "write_chrome_trace",
    "write_jsonl",
]

#: Process ids of the Chrome trace: one per conceptual timeline.
_PID_SIM = 1
_PID_WALL = 2

#: Seconds -> trace-event microseconds.
_US = 1e6


def write_jsonl(events: Iterable[SpanEvent], target: str | IO[str]) -> int:
    """Write one JSON object per span event; returns the event count.

    *target* is a path or an open text stream.
    """
    if isinstance(target, str):
        with open(target, "w") as handle:
            return write_jsonl(events, handle)
    count = 0
    for event in events:
        target.write(json.dumps(event.to_dict(), sort_keys=True))
        target.write("\n")
        count += 1
    return count


def _track_threads(events: Sequence[SpanEvent]) -> dict[tuple[str, int], int]:
    """Assign one simulated-process thread id per (track, slot) row.

    Thread 0 is the phase tree; task tracks follow, grouped by track
    name then slot so Perfetto shows ``map slot 0..n`` above
    ``reduce slot 0..n``.
    """
    rows = sorted(
        {
            (event.track, event.slot or 0)
            for event in events
            if event.track is not None
        }
    )
    return {row: index + 1 for index, row in enumerate(rows)}


def chrome_trace_events(events: Sequence[SpanEvent]) -> list[dict]:
    """Convert span events to a Chrome trace-event list.

    Spans with simulated timestamps land on the "simulated cluster"
    process; every span also lands on the "wall clock" process with
    timestamps rebased to the first event, so both timelines start at
    zero.
    """
    out: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID_SIM,
            "tid": 0,
            "args": {"name": "simulated cluster"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID_SIM,
            "tid": 0,
            "args": {"name": "phases"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID_WALL,
            "tid": 0,
            "args": {"name": "wall clock"},
        },
    ]
    threads = _track_threads(events)
    for (track, slot), tid in threads.items():
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID_SIM,
                "tid": tid,
                "args": {"name": f"{track} slot {slot}"},
            }
        )

    wall_base = min((event.wall_start for event in events), default=0.0)
    for event in events:
        args = {
            key: value
            for key, value in event.attributes.items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        if event.sim_start is not None and event.sim_end is not None:
            tid = 0
            if event.track is not None:
                tid = threads[(event.track, event.slot or 0)]
            out.append(
                {
                    "name": event.name,
                    "cat": event.track or "phase",
                    "ph": "X",
                    "ts": event.sim_start * _US,
                    "dur": (event.sim_end - event.sim_start) * _US,
                    "pid": _PID_SIM,
                    "tid": tid,
                    "args": args,
                }
            )
        if event.track is None:
            # Task placements exist only in simulated time; everything
            # else is a real nested interval worth profiling.
            out.append(
                {
                    "name": event.name,
                    "cat": "wall",
                    "ph": "X",
                    "ts": (event.wall_start - wall_base) * _US,
                    "dur": event.wall_duration * _US,
                    "pid": _PID_WALL,
                    "tid": 0,
                    "args": args,
                }
            )
    return out


def write_chrome_trace(events: Sequence[SpanEvent],
                       target: str | IO[str]) -> int:
    """Write the Chrome trace JSON; returns the trace-event count.

    *target* is a path or an open text stream; the result loads in
    Perfetto or ``chrome://tracing`` unmodified.
    """
    if isinstance(target, str):
        with open(target, "w") as handle:
            return write_chrome_trace(events, handle)
    trace_events = chrome_trace_events(events)
    json.dump(
        {"traceEvents": trace_events, "displayTimeUnit": "ms"},
        target,
        indent=1,
    )
    target.write("\n")
    return len(trace_events)


def progress_sink(stream: Optional[IO[str]] = None, max_depth: int = 3):
    """A live sink for ``Tracer(on_event=...)``: one line per span.

    Prints indented span completions with wall and simulated durations;
    spans deeper than *max_depth* (per-task, per-block noise) are
    suppressed.  Returns the callback.
    """
    out = stream if stream is not None else sys.stderr

    def sink(event: SpanEvent) -> None:
        if event.depth > max_depth or event.track is not None:
            return
        clocks = [f"wall {event.wall_duration * 1e3:.1f}ms"]
        if event.sim_duration is not None:
            clocks.append(f"sim {event.sim_duration:.4f}s")
        detail = "".join(
            f" {key}={value}"
            for key, value in event.attributes.items()
            if isinstance(value, (str, int, float, bool))
        )
        print(
            f"{'  ' * event.depth}{event.name} "
            f"[{', '.join(clocks)}]{detail}",
            file=out,
        )

    return sink
