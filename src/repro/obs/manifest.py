"""Run manifests: one JSON artifact per evaluation, fully reproducible.

A :class:`RunManifest` captures everything needed to interpret (and
re-run) one evaluation after the fact: the query, the chosen plan, the
cluster and execution configuration, the full
:class:`~repro.mapreduce.counters.JobCounters` and
:class:`~repro.mapreduce.counters.PhaseBreakdown`, per-reducer loads,
the metrics snapshot, and the environment (Python version, platform,
git commit).  ``repro trace`` writes one next to every exported trace;
``repro stats`` renders one back into a human summary.

Counters and breakdowns are serialized field-by-field via
:func:`dataclasses.fields`, so the manifest schema follows the engine's
counter set automatically and :meth:`RunManifest.job_counters`
round-trips bit-identically to the original report.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import subprocess
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import IO, Optional

from repro.mapreduce.counters import JobCounters, PhaseBreakdown
from repro.obs.calibration import CalibrationReport

__all__ = [
    "RunManifest",
    "counters_from_dict",
    "counters_to_dict",
    "environment_info",
]

#: Manifest schema version, bumped on incompatible layout changes.
#: v2 added the ``calibration`` section (predicted-vs-measured audit of
#: the cost model); v1 manifests still load, with it empty.
SCHEMA_VERSION = 2


def counters_to_dict(counters: JobCounters) -> dict:
    """Serialize counters field-by-field (``extra`` becomes a mapping)."""
    data = {}
    for f in dataclasses.fields(counters):
        value = getattr(counters, f.name)
        data[f.name] = dict(value) if isinstance(value, Counter) else value
    return data


def counters_from_dict(data: dict) -> JobCounters:
    """Rebuild :class:`JobCounters`; inverse of :func:`counters_to_dict`."""
    kwargs = dict(data)
    kwargs["extra"] = Counter(kwargs.get("extra", {}))
    return JobCounters(**kwargs)


def breakdown_to_dict(breakdown: PhaseBreakdown) -> dict:
    """Serialize a phase breakdown field-by-field."""
    return {
        f.name: getattr(breakdown, f.name)
        for f in dataclasses.fields(breakdown)
    }


def breakdown_from_dict(data: dict) -> PhaseBreakdown:
    """Rebuild a :class:`PhaseBreakdown` from its mapping form."""
    return PhaseBreakdown(**data)


def git_revision() -> Optional[str]:
    """The repository's current commit sha, or ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(pathlib.Path(__file__).parent),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_info() -> dict:
    """Python/platform/git facts pinned into every manifest."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "git_sha": git_revision(),
    }


@dataclass
class RunManifest:
    """Everything about one evaluation, as a JSON-ready record."""

    query: str
    plan: str
    response_time: float
    map_makespan: float
    reduce_makespan: float
    counters: dict
    breakdown: dict
    reducer_loads: list
    load_imbalance: float
    config: dict = field(default_factory=dict)
    environment: dict = field(default_factory=environment_info)
    metrics: dict = field(default_factory=dict)
    #: Fault plan, retry policy and per-phase recovery accounting when
    #: the run executed under chaos (empty for clean runs); mirrors
    #: :attr:`repro.mapreduce.counters.JobReport.faults`.
    faults: dict = field(default_factory=dict)
    #: Predicted-vs-measured cost-model audit
    #: (:meth:`repro.obs.calibration.CalibrationReport.to_dict`); empty
    #: when the run predates schema v2 or the executor skipped it.
    calibration: dict = field(default_factory=dict)
    created_at: str = field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%S%z")
    )
    schema_version: int = SCHEMA_VERSION

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        outcome,
        query: str = "",
        cluster_config=None,
        execution_config=None,
        metrics=None,
    ) -> "RunManifest":
        """Build a manifest from a parallel evaluation outcome.

        *outcome* is a :class:`~repro.parallel.report.ParallelResult`
        (anything with ``.plan`` and ``.job``); the configs are the
        dataclasses used for the run, and *metrics* an optional
        :class:`~repro.obs.metrics.MetricsRegistry`.
        """
        report = outcome.job
        calibration = getattr(outcome, "calibration", None)
        config: dict = {}
        if cluster_config is not None:
            config["cluster"] = dataclasses.asdict(cluster_config)
        if execution_config is not None:
            config["execution"] = dataclasses.asdict(execution_config)
        return cls(
            query=query,
            plan=outcome.plan.describe(),
            response_time=report.response_time,
            map_makespan=report.map_makespan,
            reduce_makespan=report.reduce_makespan,
            counters=counters_to_dict(report.counters),
            breakdown=breakdown_to_dict(report.breakdown),
            reducer_loads=list(report.reducer_loads),
            load_imbalance=report.load_imbalance,
            config=config,
            metrics=metrics.to_dict() if metrics is not None else {},
            faults=dict(getattr(report, "faults", {}) or {}),
            calibration=(
                calibration.to_dict() if calibration is not None else {}
            ),
        )

    # -- round-trips ------------------------------------------------------------

    def job_counters(self) -> JobCounters:
        """The run's counters, identical to the original report's."""
        return counters_from_dict(self.counters)

    def phase_breakdown(self) -> PhaseBreakdown:
        """The run's phase breakdown as a live object."""
        return breakdown_from_dict(self.breakdown)

    def to_dict(self) -> dict:
        """The JSON document this manifest serializes to."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from its JSON document."""
        version = data.get("schema_version", SCHEMA_VERSION)
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema v{version} is newer than this "
                f"reader (v{SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    # -- persistence ------------------------------------------------------------

    def write(self, target: str | IO[str]) -> None:
        """Write the manifest as indented JSON to a path or stream."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.write(handle)
            return
        json.dump(self.to_dict(), target, indent=2, sort_keys=True)
        target.write("\n")

    @classmethod
    def load(cls, source: str | IO[str]) -> "RunManifest":
        """Read a manifest back from a path or stream."""
        if isinstance(source, str):
            with open(source) as handle:
                return cls.load(handle)
        return cls.from_dict(json.load(source))

    # -- presentation -----------------------------------------------------------

    def summary(self) -> str:
        """A multi-line human summary (what ``repro stats`` prints)."""
        breakdown = self.phase_breakdown()
        counters = self.job_counters()
        lines = [
            f"run of {self.created_at}  (schema v{self.schema_version})",
            f"query: {self.query}" if self.query else "query: (unrecorded)",
            f"plan:  {self.plan}",
            (
                f"simulated response time {self.response_time:.4f}s "
                f"(map {self.map_makespan:.4f}s + "
                f"reduce {self.reduce_makespan:.4f}s)"
            ),
            "phases: "
            + "  ".join(
                f"{name}={value:.4f}s"
                for name, value in self.breakdown.items()
            ),
            "cumulative: "
            + "  ".join(
                f"{name}={value:.4f}s"
                for name, value in breakdown.cumulative().items()
            ),
            "counters:",
        ]
        for name, value in sorted(self.counters.items()):
            if name == "extra":
                for key, extra_value in sorted(value.items()):
                    lines.append(f"  extra.{key:<26} {extra_value}")
            else:
                lines.append(f"  {name:<32} {value}")
        loads = self.reducer_loads
        if loads:
            lines.append(
                f"reducers: {len(loads)} loads, max {max(loads)}, "
                f"imbalance {self.load_imbalance:.2f} "
                f"(replication x{counters.replication_factor:.2f})"
            )
        if self.calibration:
            lines.append(
                CalibrationReport.from_dict(self.calibration).describe()
            )
        if self.faults:
            plan = self.faults.get("plan", {})
            lines.append(
                "faults: chaos seed "
                f"{plan.get('seed', '?')}, "
                f"{len(plan.get('machine_crashes', []))} crashes, "
                f"p_fail={plan.get('task_failure_probability', 0.0):.2f}, "
                f"p_straggle={plan.get('straggler_probability', 0.0):.2f}, "
                f"p_lost={plan.get('lost_partition_probability', 0.0):.2f}"
            )
            for phase in ("map", "reduce"):
                stats = self.faults.get(phase)
                if not stats:
                    continue
                lines.append(
                    f"  {phase}: {stats.get('attempts', 0)} attempts for "
                    f"{stats.get('tasks', 0)} tasks, "
                    f"{stats.get('retries', 0)} retries, "
                    f"{stats.get('crash_kills', 0)} crash kills, "
                    f"{stats.get('speculative_launched', 0)} speculative "
                    f"({stats.get('speculative_wins', 0)} won), "
                    f"{stats.get('exhausted_tasks', 0)} exhausted"
                )
        env = ", ".join(
            f"{key}={value}"
            for key, value in self.environment.items()
            if value is not None
        )
        if env:
            lines.append(f"environment: {env}")
        return "\n".join(lines)
