"""Run manifests: one JSON artifact per evaluation, fully reproducible.

A :class:`RunManifest` captures everything needed to interpret (and
re-run) one evaluation after the fact: the query, the chosen plan, the
cluster and execution configuration, the full
:class:`~repro.mapreduce.counters.JobCounters` and
:class:`~repro.mapreduce.counters.PhaseBreakdown`, per-reducer loads,
the metrics snapshot, and the environment (Python version, platform,
git commit).  ``repro trace`` writes one next to every exported trace;
``repro stats`` renders one back into a human summary.

Counters and breakdowns are serialized field-by-field via
:func:`dataclasses.fields`, so the manifest schema follows the engine's
counter set automatically and :meth:`RunManifest.job_counters`
round-trips bit-identically to the original report.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import pathlib
import platform
import subprocess
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import IO, Optional

from repro.mapreduce.counters import JobCounters, PhaseBreakdown
from repro.obs.calibration import CalibrationReport

__all__ = [
    "RunManifest",
    "counters_from_dict",
    "counters_to_dict",
    "environment_info",
]

#: Manifest schema version, bumped on incompatible layout changes.
#: v2 added the ``calibration`` section (predicted-vs-measured audit of
#: the cost model); v3 added the ``batch`` section (share groups and
#: measure-cache traffic of ``repro batch`` runs); v4 added the
#: ``workers`` section (per-worker resource accounting and counters
#: merged from the cross-process telemetry channel) and the
#: ``telemetry`` section (the final live-telemetry frame); v5 added the
#: ``serving`` section (the ``repro serve`` daemon's post-mortem:
#: arrivals, sheds by reason, deadline misses, admission-window and
#: breaker activity, latency percentiles) plus the batch section's
#: ``resumed_components`` count; v6 added the ``tracing`` section (the
#: latency-attribution ledger book: per-query phase breakdowns that sum
#: to end-to-end latency, per-tenant means, completeness counts); v7
#: added the ``slo`` section (per-tenant latency objectives with
#: lifetime good/bad counts and windowed burn rates); v8 added the
#: ``incremental`` section (the append flow's maintenance report:
#: per-measure delta classification and patch/regional/derived/
#: recomputed outcomes, fingerprints, partition-chain length).  Older
#: manifests still load, with the newer sections empty; manifests
#: *newer* than this reader load too, with a one-line warning and any
#: unknown fields dropped.
SCHEMA_VERSION = 8

logger = logging.getLogger(__name__)


def counters_to_dict(counters: JobCounters) -> dict:
    """Serialize counters field-by-field (``extra`` becomes a mapping)."""
    data = {}
    for f in dataclasses.fields(counters):
        value = getattr(counters, f.name)
        data[f.name] = dict(value) if isinstance(value, Counter) else value
    return data


def counters_from_dict(data: dict) -> JobCounters:
    """Rebuild :class:`JobCounters`; inverse of :func:`counters_to_dict`."""
    kwargs = dict(data)
    kwargs["extra"] = Counter(kwargs.get("extra", {}))
    return JobCounters(**kwargs)


def breakdown_to_dict(breakdown: PhaseBreakdown) -> dict:
    """Serialize a phase breakdown field-by-field."""
    return {
        f.name: getattr(breakdown, f.name)
        for f in dataclasses.fields(breakdown)
    }


def breakdown_from_dict(data: dict) -> PhaseBreakdown:
    """Rebuild a :class:`PhaseBreakdown` from its mapping form."""
    return PhaseBreakdown(**data)


def git_revision() -> Optional[str]:
    """The repository's current commit sha, or ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(pathlib.Path(__file__).parent),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_info() -> dict:
    """Python/platform/git facts pinned into every manifest."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "git_sha": git_revision(),
    }


@dataclass
class RunManifest:
    """Everything about one evaluation, as a JSON-ready record."""

    query: str
    plan: str
    response_time: float
    map_makespan: float
    reduce_makespan: float
    counters: dict
    breakdown: dict
    reducer_loads: list
    load_imbalance: float
    config: dict = field(default_factory=dict)
    environment: dict = field(default_factory=environment_info)
    metrics: dict = field(default_factory=dict)
    #: Fault plan, retry policy and per-phase recovery accounting when
    #: the run executed under chaos (empty for clean runs); mirrors
    #: :attr:`repro.mapreduce.counters.JobReport.faults`.
    faults: dict = field(default_factory=dict)
    #: Predicted-vs-measured cost-model audit
    #: (:meth:`repro.obs.calibration.CalibrationReport.to_dict`); empty
    #: when the run predates schema v2 or the executor skipped it.
    calibration: dict = field(default_factory=dict)
    #: Batch-run section (schema v3): share groups with members and
    #: per-group calibration, component dispositions, and measure-cache
    #: hit/miss/store counts.  Empty for single-query runs and for
    #: manifests written before v3.
    batch: dict = field(default_factory=dict)
    #: Per-worker resource accounting (schema v4): one section per
    #: worker process merged from the telemetry channel -- cumulative
    #: counters (tasks, rows) and the final resource odometer (CPU
    #: seconds, RSS bytes, GC collections).  Empty for in-process runs
    #: and for manifests written before v4.
    workers: dict = field(default_factory=dict)
    #: Serving-daemon section (schema v5):
    #: :meth:`repro.serving.daemon.ServeReport.to_dict` written at
    #: graceful drain -- offered/completed/shed traffic, deadline
    #: misses, admission-window and circuit-breaker activity, queue
    #: high-water marks and end-to-end latency percentiles.  Empty for
    #: non-serving runs and manifests written before v5.
    serving: dict = field(default_factory=dict)
    #: Final live-telemetry frame (schema v4):
    #: :meth:`repro.obs.telemetry.TelemetryRegistry.snapshot` of the
    #: run's last state.  Empty when telemetry was off.
    telemetry: dict = field(default_factory=dict)
    #: Latency-attribution ledger book (schema v6):
    #: :meth:`repro.obs.ledger.LedgerBook.to_dict` -- per-query phase
    #: breakdowns (queue wait, admission hold, cache lookup, planning,
    #: map, shuffle, reduce, retry overhead, result split) that tile
    #: end-to-end latency, plus per-tenant means and the count of
    #: ledgers whose residual stayed within tolerance.  Empty for
    #: non-serving runs and manifests written before v6.
    tracing: dict = field(default_factory=dict)
    #: SLO section (schema v7):
    #: :meth:`repro.obs.slo.SloTracker.snapshot` -- per-tenant latency
    #: objectives with lifetime good/bad counts and the windowed
    #: error-budget burn rate.  Empty when no objective was set and for
    #: manifests written before v7.
    slo: dict = field(default_factory=dict)
    #: Incremental-maintenance section (schema v8):
    #: :meth:`repro.serving.incremental.AppendReport.to_dict` plus the
    #: partition-chain length and the verification verdict -- what one
    #: ``repro append`` did to the measure cache: per-measure delta
    #: classification (patchable/regional/full) and the action taken
    #: (patched, regional repair, derived, recomputed, left stale).
    #: Empty for non-append runs and manifests written before v8.
    incremental: dict = field(default_factory=dict)
    created_at: str = field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%S%z")
    )
    schema_version: int = SCHEMA_VERSION

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_result(
        cls,
        outcome,
        query: str = "",
        cluster_config=None,
        execution_config=None,
        metrics=None,
        workers=None,
        telemetry=None,
    ) -> "RunManifest":
        """Build a manifest from a parallel evaluation outcome.

        *outcome* is a :class:`~repro.parallel.report.ParallelResult`
        (anything with ``.plan`` and ``.job``); the configs are the
        dataclasses used for the run, *metrics* an optional
        :class:`~repro.obs.metrics.MetricsRegistry`, *workers* the
        per-worker sections from
        :meth:`repro.obs.telemetry.TelemetryRegistry.worker_totals`,
        and *telemetry* the final live-telemetry frame.
        """
        report = outcome.job
        calibration = getattr(outcome, "calibration", None)
        config: dict = {}
        if cluster_config is not None:
            config["cluster"] = dataclasses.asdict(cluster_config)
        if execution_config is not None:
            config["execution"] = dataclasses.asdict(execution_config)
        return cls(
            query=query,
            plan=outcome.plan.describe(),
            response_time=report.response_time,
            map_makespan=report.map_makespan,
            reduce_makespan=report.reduce_makespan,
            counters=counters_to_dict(report.counters),
            breakdown=breakdown_to_dict(report.breakdown),
            reducer_loads=list(report.reducer_loads),
            load_imbalance=report.load_imbalance,
            config=config,
            metrics=metrics.to_dict() if metrics is not None else {},
            faults=dict(getattr(report, "faults", {}) or {}),
            calibration=(
                calibration.to_dict() if calibration is not None else {}
            ),
            workers=dict(workers or {}),
            telemetry=dict(telemetry or {}),
        )

    @classmethod
    def from_batch(
        cls,
        outcome,
        cluster_config=None,
        execution_config=None,
        metrics=None,
    ) -> "RunManifest":
        """Build a manifest from a batch evaluation outcome.

        *outcome* is a :class:`~repro.serving.executor.BatchResult`.
        Counters, phase breakdowns and reducer loads aggregate over the
        batch's shared jobs; the ``batch`` section keeps the per-group
        detail (members, attempts, per-group calibration) plus the
        component dispositions and cache traffic.
        """
        counters = JobCounters()
        breakdown = PhaseBreakdown()
        reducer_loads: list = []
        response_time = 0.0
        map_makespan = 0.0
        reduce_makespan = 0.0
        groups = []
        for group_outcome in outcome.groups:
            entry = {
                "queries": list(group_outcome.group.queries),
                "members": [
                    {"query": query, "measures": measures}
                    for query, measures in group_outcome.group.members()
                ],
                "plan": group_outcome.group.plan.describe(),
                "attempts": group_outcome.attempts,
                "succeeded": group_outcome.succeeded,
            }
            job = group_outcome.result
            if job is not None:
                report = job.job
                counters.add(report.counters)
                breakdown.add(report.breakdown)
                reducer_loads.extend(report.reducer_loads)
                response_time += report.response_time
                map_makespan += report.map_makespan
                reduce_makespan += report.reduce_makespan
                entry["response_time"] = report.response_time
                entry["shuffle_bytes"] = report.counters.shuffle_bytes
                if job.calibration is not None:
                    entry["calibration"] = job.calibration.to_dict()
            else:
                entry["error"] = group_outcome.error
            groups.append(entry)
        loads = reducer_loads
        imbalance = (
            max(loads) / (sum(loads) / len(loads))
            if loads and sum(loads)
            else 0.0
        )
        config: dict = {}
        if cluster_config is not None:
            config["cluster"] = dataclasses.asdict(cluster_config)
        if execution_config is not None:
            config["execution"] = dataclasses.asdict(execution_config)
        plan = outcome.plan
        return cls(
            query="batch(" + ", ".join(sorted(outcome.results)) + ")",
            plan=(
                f"{len(plan.queries)} queries -> "
                f"{len(outcome.groups)} shared jobs"
            ),
            response_time=response_time,
            map_makespan=map_makespan,
            reduce_makespan=reduce_makespan,
            counters=counters_to_dict(counters),
            breakdown=breakdown_to_dict(breakdown),
            reducer_loads=loads,
            load_imbalance=imbalance,
            config=config,
            metrics=metrics.to_dict() if metrics is not None else {},
            batch={
                "queries": sorted(outcome.results),
                "groups": groups,
                "dispositions": plan.disposition_counts(),
                "resumed_components": outcome.resumed_components,
                "jobless_queries": list(outcome.jobless_queries),
                "cache": (
                    outcome.cache_stats.to_dict()
                    if outcome.cache_stats is not None
                    else {}
                ),
                "decision": plan.decision.to_dict(),
            },
        )

    @classmethod
    def from_serve(
        cls,
        report,
        query: str = "",
        cluster_config=None,
        execution_config=None,
        telemetry=None,
        tracing=None,
        slo=None,
    ) -> "RunManifest":
        """Build a manifest from a serving daemon's drain report.

        *report* is a :class:`~repro.serving.daemon.ServeReport` (or
        its ``to_dict`` form).  A serving manifest has no single job,
        so the per-job fields are zero; the story lives in the
        ``serving`` section.  *tracing* is the daemon's ledger book
        (:meth:`repro.obs.ledger.LedgerBook.to_dict`) and *slo* the
        tracker snapshot (:meth:`repro.obs.slo.SloTracker.snapshot`).
        """
        serving = report if isinstance(report, dict) else report.to_dict()
        config: dict = {}
        if cluster_config is not None:
            config["cluster"] = dataclasses.asdict(cluster_config)
        if execution_config is not None:
            config["execution"] = dataclasses.asdict(execution_config)
        latency = serving.get("latency_ms", {})
        return cls(
            query=query
            or f"serve({serving.get('arrivals', 0)} arrivals)",
            plan=(
                f"{serving.get('groups_dispatched', 0)} share groups "
                "over the admission window"
            ),
            response_time=latency.get("p99", 0.0) / 1000.0,
            map_makespan=0.0,
            reduce_makespan=0.0,
            counters=counters_to_dict(JobCounters()),
            breakdown=breakdown_to_dict(PhaseBreakdown()),
            reducer_loads=[],
            load_imbalance=0.0,
            config=config,
            serving=serving,
            telemetry=dict(telemetry or {}),
            tracing=dict(tracing or {}),
            slo=dict(slo or {}),
        )

    @classmethod
    def from_append(
        cls,
        report,
        query: str = "",
        cluster_config=None,
        execution_config=None,
        partitions: int = 0,
        verified: Optional[bool] = None,
        telemetry=None,
    ) -> "RunManifest":
        """Build a manifest from an incremental append's report.

        *report* is a :class:`~repro.serving.incremental.AppendReport`
        (or its ``to_dict`` form).  An append runs no MapReduce job, so
        the per-job fields are zero; the story lives in the
        ``incremental`` section.  *partitions* is the length of the
        dataset's partition chain after the append and *verified* the
        outcome of the optional cold-recompute bit-identity check
        (``None`` when the check was skipped).
        """
        section = report if isinstance(report, dict) else report.to_dict()
        outcomes = section.get("outcomes", [])
        actions = Counter(o.get("action", "?") for o in outcomes)
        section = dict(section)
        section["partitions"] = partitions
        if verified is not None:
            section["verified"] = bool(verified)
        config: dict = {}
        if cluster_config is not None:
            config["cluster"] = dataclasses.asdict(cluster_config)
        if execution_config is not None:
            config["execution"] = dataclasses.asdict(execution_config)
        return cls(
            query=query
            or f"append({section.get('delta_records', 0)} records)",
            plan=", ".join(
                f"{action}={count}"
                for action, count in sorted(actions.items())
            )
            or "no cached measures",
            response_time=section.get("duration", 0.0),
            map_makespan=0.0,
            reduce_makespan=0.0,
            counters=counters_to_dict(JobCounters()),
            breakdown=breakdown_to_dict(PhaseBreakdown()),
            reducer_loads=[],
            load_imbalance=0.0,
            config=config,
            telemetry=dict(telemetry or {}),
            incremental=section,
        )

    # -- round-trips ------------------------------------------------------------

    def job_counters(self) -> JobCounters:
        """The run's counters, identical to the original report's."""
        return counters_from_dict(self.counters)

    def phase_breakdown(self) -> PhaseBreakdown:
        """The run's phase breakdown as a live object."""
        return breakdown_from_dict(self.breakdown)

    def to_dict(self) -> dict:
        """The JSON document this manifest serializes to."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from its JSON document."""
        version = data.get("schema_version", SCHEMA_VERSION)
        known = {f.name for f in dataclasses.fields(cls)}
        if isinstance(version, int) and version > SCHEMA_VERSION:
            dropped = sorted(set(data) - known)
            logger.warning(
                "manifest schema v%d is newer than this reader (v%d); "
                "loading the known fields%s",
                version,
                SCHEMA_VERSION,
                f" and ignoring {', '.join(dropped)}" if dropped else "",
            )
        return cls(**{k: v for k, v in data.items() if k in known})

    # -- persistence ------------------------------------------------------------

    def write(self, target: str | IO[str]) -> None:
        """Write the manifest as indented JSON to a path or stream."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                self.write(handle)
            return
        json.dump(self.to_dict(), target, indent=2, sort_keys=True)
        target.write("\n")

    @classmethod
    def load(cls, source: str | IO[str]) -> "RunManifest":
        """Read a manifest back from a path or stream."""
        if isinstance(source, str):
            with open(source) as handle:
                return cls.load(handle)
        return cls.from_dict(json.load(source))

    # -- presentation -----------------------------------------------------------

    def summary(self) -> str:
        """A multi-line human summary (what ``repro stats`` prints)."""
        breakdown = self.phase_breakdown()
        counters = self.job_counters()
        lines = [
            f"run of {self.created_at}  (schema v{self.schema_version})",
            f"query: {self.query}" if self.query else "query: (unrecorded)",
            f"plan:  {self.plan}",
            (
                f"simulated response time {self.response_time:.4f}s "
                f"(map {self.map_makespan:.4f}s + "
                f"reduce {self.reduce_makespan:.4f}s)"
            ),
            "phases: "
            + "  ".join(
                f"{name}={value:.4f}s"
                for name, value in self.breakdown.items()
            ),
            "cumulative: "
            + "  ".join(
                f"{name}={value:.4f}s"
                for name, value in breakdown.cumulative().items()
            ),
            "counters:",
        ]
        for name, value in sorted(self.counters.items()):
            if name == "extra":
                for key, extra_value in sorted(value.items()):
                    lines.append(f"  extra.{key:<26} {extra_value}")
            else:
                lines.append(f"  {name:<32} {value}")
        loads = self.reducer_loads
        if loads:
            lines.append(
                f"reducers: {len(loads)} loads, max {max(loads)}, "
                f"imbalance {self.load_imbalance:.2f} "
                f"(replication x{counters.replication_factor:.2f})"
            )
        if self.calibration:
            lines.append(
                CalibrationReport.from_dict(self.calibration).describe()
            )
        if self.batch:
            dispositions = self.batch.get("dispositions", {})
            lines.append(
                f"batch: {len(self.batch.get('queries', []))} queries, "
                f"{len(self.batch.get('groups', []))} shared jobs "
                f"(components: {dispositions.get('execute', 0)} executed, "
                f"{dispositions.get('derive', 0)} derived, "
                f"{dispositions.get('cache', 0)} cached)"
            )
            for index, group in enumerate(self.batch.get("groups", [])):
                status = (
                    f"{group.get('response_time', 0.0):.4f}s, "
                    f"{group.get('shuffle_bytes', 0)} shuffle bytes, "
                    f"{group.get('attempts', 1)} attempt(s)"
                    if group.get("succeeded", True)
                    else f"FAILED: {group.get('error', '?')}"
                )
                lines.append(
                    f"  group {index} "
                    f"[{', '.join(group.get('queries', []))}]: {status}"
                )
            jobless = self.batch.get("jobless_queries", [])
            if jobless:
                lines.append(
                    f"  answered without a job: {', '.join(jobless)}"
                )
            resumed = self.batch.get("resumed_components", 0)
            if resumed:
                lines.append(
                    f"  resumed from cache: {resumed} component(s)"
                )
            cache = self.batch.get("cache", {})
            if cache:
                lines.append(
                    f"cache: {cache.get('hits', 0)} hits, "
                    f"{cache.get('misses', 0)} misses, "
                    f"{cache.get('stores', 0)} stores"
                    + (
                        f", {cache.get('corrupt', 0)} corrupt"
                        if cache.get("corrupt")
                        else ""
                    )
                )
        if self.serving:
            serving = self.serving
            shed = serving.get("shed", {})
            latency = serving.get("latency_ms", {})
            lines.append(
                f"serving: {serving.get('arrivals', 0)} arrivals, "
                f"{serving.get('completed', 0)} completed, "
                f"{sum(shed.values())} shed, "
                f"{serving.get('deadline_missed', 0)} deadline missed, "
                f"{serving.get('errors', 0)} errors"
                + (" (drained cleanly)" if serving.get("drained") else "")
            )
            if shed:
                lines.append(
                    "  shed by reason: "
                    + ", ".join(
                        f"{reason}={count}"
                        for reason, count in sorted(shed.items())
                    )
                )
            if latency.get("count"):
                lines.append(
                    f"  latency: p50 {latency.get('p50', 0.0):.1f}ms, "
                    f"p95 {latency.get('p95', 0.0):.1f}ms, "
                    f"p99 {latency.get('p99', 0.0):.1f}ms "
                    f"(max {latency.get('max', 0.0):.1f}ms over "
                    f"{latency.get('count', 0)} queries)"
                )
            admission = serving.get("admission", {})
            if admission:
                lines.append(
                    f"  admission: {admission.get('offered', 0)} offered, "
                    f"{admission.get('merges_accepted', 0)} merges won, "
                    f"{admission.get('merges_rejected', 0)} lost, "
                    f"{serving.get('groups_dispatched', 0)} groups "
                    f"({serving.get('grouped_queries', 0)} members)"
                )
            if serving.get("fallbacks") or serving.get("breaker_trips"):
                lines.append(
                    f"  breaker: {serving.get('breaker_trips', 0)} trips, "
                    f"{serving.get('fallbacks', 0)} centralized fallbacks"
                )
        if self.tracing:
            total = self.tracing.get("total", 0)
            complete = self.tracing.get("complete", 0)
            lines.append(
                f"ledger: {total} queries attributed, "
                f"{complete} within tolerance"
            )
            for tenant, section in sorted(
                self.tracing.get("tenants", {}).items()
            ):
                phases = section.get("mean_phase_ms", {})
                top = sorted(
                    phases.items(), key=lambda kv: -kv[1]
                )[:3]
                detail = ", ".join(
                    f"{name} {value:.1f}ms" for name, value in top
                )
                lines.append(
                    f"  {tenant}: {section.get('queries', 0)} queries, "
                    f"mean {section.get('mean_total_ms', 0.0):.1f}ms "
                    f"(residual {section.get('mean_residual_ms', 0.0):.1f}ms)"
                    + (f" -- {detail}" if detail else "")
                )
        if self.slo:
            for tenant, section in sorted(
                self.slo.get("tenants", {}).items()
            ):
                lines.append(
                    f"slo {tenant}: "
                    f"{section.get('objective_ms', 0.0):.0f}ms @ "
                    f"{section.get('target', 0.0):.2%}, "
                    f"{section.get('good', 0)} good / "
                    f"{section.get('bad', 0)} bad, "
                    f"burn {section.get('burn_rate', 0.0):.2f}x"
                )
        if self.incremental:
            inc = self.incremental
            outcomes = inc.get("outcomes", [])
            actions = Counter(o.get("action", "?") for o in outcomes)
            verdict = inc.get("verified")
            lines.append(
                f"incremental: {inc.get('delta_records', 0)} appended "
                f"records, {len(outcomes)} cached measures, "
                f"partition chain {inc.get('partitions', 0)} long"
                + (
                    ""
                    if verdict is None
                    else (
                        ", verified bit-identical"
                        if verdict
                        else ", VERIFICATION FAILED"
                    )
                )
            )
            if actions:
                lines.append(
                    "  actions: "
                    + ", ".join(
                        f"{action}={count}"
                        for action, count in sorted(actions.items())
                    )
                )
            for outcome in outcomes:
                detail = outcome.get("reason", "")
                regions = outcome.get("recomputed_regions", 0)
                if regions:
                    detail = (
                        f"{detail + '; ' if detail else ''}"
                        f"{regions} anchors re-evaluated"
                    )
                lines.append(
                    f"  {outcome.get('measure', '?')}: "
                    f"{outcome.get('classification', '?')} -> "
                    f"{outcome.get('action', '?')}"
                    f" ({outcome.get('rows', 0)} rows"
                    + (f"; {detail})" if detail else ")")
                )
        if self.workers:
            lines.append(f"workers: {len(self.workers)} processes")
            for worker, section in sorted(self.workers.items()):
                resources = section.get("resources", {})
                counters = section.get("counters", {})
                rss_mib = resources.get("rss_bytes", 0) / (1024 * 1024)
                lines.append(
                    f"  {worker}: "
                    f"cpu {resources.get('cpu_seconds', 0.0):.2f}s, "
                    f"rss {rss_mib:.1f} MiB, "
                    f"gc {resources.get('gc_collections', 0)}, "
                    f"tasks {counters.get('tasks', 0):g}"
                )
        if self.faults:
            plan = self.faults.get("plan", {})
            lines.append(
                "faults: chaos seed "
                f"{plan.get('seed', '?')}, "
                f"{len(plan.get('machine_crashes', []))} crashes, "
                f"p_fail={plan.get('task_failure_probability', 0.0):.2f}, "
                f"p_straggle={plan.get('straggler_probability', 0.0):.2f}, "
                f"p_lost={plan.get('lost_partition_probability', 0.0):.2f}"
            )
            for phase in ("map", "reduce"):
                stats = self.faults.get(phase)
                if not stats:
                    continue
                lines.append(
                    f"  {phase}: {stats.get('attempts', 0)} attempts for "
                    f"{stats.get('tasks', 0)} tasks, "
                    f"{stats.get('retries', 0)} retries, "
                    f"{stats.get('crash_kills', 0)} crash kills, "
                    f"{stats.get('speculative_launched', 0)} speculative "
                    f"({stats.get('speculative_wins', 0)} won), "
                    f"{stats.get('exhausted_tasks', 0)} exhausted"
                )
        env = ", ".join(
            f"{key}={value}"
            for key, value in self.environment.items()
            if value is not None
        )
        if env:
            lines.append(f"environment: {env}")
        return "\n".join(lines)
