"""Distribution keys, possibly with range annotations.

A distribution key names one hierarchy level per attribute -- the
granularity that records are grouped by for redistribution -- and may
attach a *range annotation* ``(low, high)`` to numeric attributes.  An
annotated component means: the block responsible for outputting results
anchored at coordinate ``t`` (at the component's level) must also hold
the data of coordinates ``t + low`` through ``t + high``.  Annotations
are what let one block serve a sliding window locally; they also force
records to be replicated into neighbouring blocks (overlapping
distribution, Section III-B.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cube.domains import ALL
from repro.cube.records import Schema, SchemaError
from repro.cube.regions import Granularity


class DistributionError(ValueError):
    """Raised for invalid distribution keys or infeasible schemes."""


@dataclass(frozen=True)
class KeyComponent:
    """One attribute's slot in a distribution key."""

    level: str
    low: int = 0
    high: int = 0

    def __post_init__(self):
        if self.low > self.high:
            raise DistributionError(
                f"annotation ({self.low}, {self.high}) has low > high"
            )
        if self.level == ALL and self.annotated:
            raise DistributionError("the ALL level cannot carry an annotation")

    @property
    def annotated(self) -> bool:
        return self.low != 0 or self.high != 0

    @property
    def span(self) -> int:
        """The paper's ``d``: width of the annotation interval."""
        return self.high - self.low

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.annotated:
            return f"{self.level}({self.low},{self.high})"
        return self.level


@dataclass(frozen=True)
class DistributionKey:
    """A full distribution key: one :class:`KeyComponent` per attribute."""

    schema: Schema
    components: tuple[KeyComponent, ...]

    def __post_init__(self):
        if len(self.components) != len(self.schema.attributes):
            raise DistributionError(
                f"key has {len(self.components)} components for "
                f"{len(self.schema.attributes)} attributes"
            )
        for attr, component in zip(self.schema.attributes, self.components):
            attr.hierarchy.level(component.level)  # validate the level name
            if component.annotated and not attr.supports_ranges:
                raise DistributionError(
                    f"attribute {attr.name!r} is nominal and cannot carry "
                    "a range annotation"
                )

    @classmethod
    def of(
        cls, schema: Schema, spec: Mapping[str, object]
    ) -> "DistributionKey":
        """Build a key from ``{attr: level}`` or ``{attr: (level, lo, hi)}``.

        Attributes not mentioned default to ``ALL``.
        """
        unknown = set(spec) - set(schema.attribute_names)
        if unknown:
            raise SchemaError(
                f"distribution key names unknown attributes {sorted(unknown)}"
            )
        components = []
        for attr in schema.attributes:
            entry = spec.get(attr.name, ALL)
            if isinstance(entry, str):
                components.append(KeyComponent(entry))
            else:
                level, low, high = entry
                components.append(KeyComponent(level, low, high))
        return cls(schema, tuple(components))

    # -- accessors ----------------------------------------------------------------

    def component(self, attr_name: str) -> KeyComponent:
        return self.components[self.schema.attribute_index(attr_name)]

    @property
    def granularity(self) -> Granularity:
        """The key's region granularity, annotations dropped."""
        return Granularity(
            self.schema, tuple(c.level for c in self.components)
        )

    def annotated_attributes(self) -> tuple[str, ...]:
        return tuple(
            attr.name
            for attr, component in zip(self.schema.attributes, self.components)
            if component.annotated
        )

    @property
    def is_overlapping(self) -> bool:
        """Whether blocks under this key share records."""
        return any(component.annotated for component in self.components)

    def max_span(self) -> int:
        """Largest annotation width across attributes (the model's d)."""
        return max((c.span for c in self.components), default=0)

    # -- transformations --------------------------------------------------------------

    def replace_component(
        self, attr_name: str, component: KeyComponent
    ) -> "DistributionKey":
        index = self.schema.attribute_index(attr_name)
        components = list(self.components)
        components[index] = component
        return DistributionKey(self.schema, tuple(components))

    def drop_annotations(
        self, keep: str | None = None
    ) -> "DistributionKey":
        """Roll every annotated attribute except *keep* up to ``ALL``.

        This is the optimizer's single-annotated-attribute normalization
        (Section IV-B): the search keeps one attribute annotated at a time
        and generalizes the rest of the annotated attributes away.
        """
        components = []
        for attr, component in zip(self.schema.attributes, self.components):
            if component.annotated and attr.name != keep:
                components.append(KeyComponent(ALL))
            else:
                components.append(component)
        return DistributionKey(self.schema, tuple(components))

    def covers(self, other: "DistributionKey") -> bool:
        """Whether this key is feasible whenever *other* is (Theorem 1).

        Component-wise: this key's level must generalize *other*'s, and
        *other*'s annotation interval, converted up to this key's level,
        must fit inside this key's interval.  ``ALL`` components cover
        everything.  The conversion is conservative, so ``True`` always
        implies feasibility.
        """
        if self.schema != other.schema:
            raise DistributionError("keys belong to different schemas")
        for attr, mine, theirs in zip(
            self.schema.attributes, self.components, other.components
        ):
            if mine.level == ALL:
                continue
            hierarchy = attr.hierarchy
            if theirs.level == ALL:
                return False
            if hierarchy.is_more_general(theirs.level, mine.level):
                return False
            if not theirs.annotated:
                low, high = 0, 0
            elif theirs.level == mine.level:
                low, high = theirs.low, theirs.high
            else:
                low, high = hierarchy.convert_range(
                    theirs.low, theirs.high, theirs.level, mine.level
                )
            if low < mine.low or high > mine.high:
                return False
        return True

    def __repr__(self) -> str:
        parts = [
            f"{attr.name}:{component!r}"
            for attr, component in zip(self.schema.attributes, self.components)
            if component.level != ALL
        ]
        return "<" + ", ".join(parts) + ">" if parts else "<ALL>"
