"""Rendering block layouts (the paper's Figure 3, as text).

For an annotated attribute of a :class:`~repro.distribution.clustering.
BlockScheme`, :func:`render_blocks` draws one row per distribution block
showing which coordinates the block *owns* (``#``, the gray regions of
Figure 3) and which it merely holds as fringe input for windows (``.``,
the white regions).  Comparing the clustering factor's effect becomes a
matter of looking at two pictures:

    cf=1   |#.|                 cf=2   |##.|
           |.#.|                       |..##.|
           | .#.|                      |    ..##|
           ...

:func:`layout_summary` reports the duplication the picture implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distribution.clustering import BlockScheme
from repro.distribution.keys import DistributionError


@dataclass(frozen=True)
class LayoutSummary:
    """Aggregate geometry of one annotated axis under a scheme."""

    blocks: int
    coordinates: int
    owned_cells: int
    fringe_cells: int

    @property
    def duplication(self) -> float:
        """Stored cells per coordinate (1.0 means no overlap)."""
        return (self.owned_cells + self.fringe_cells) / self.coordinates


def _axis_geometry(scheme: BlockScheme, attr_name: str):
    component = scheme.key.component(attr_name)
    if not component.annotated:
        raise DistributionError(
            f"attribute {attr_name!r} is not annotated in this key; only "
            "annotated axes have overlapping layouts to draw"
        )
    attr = scheme.schema.attribute(attr_name)
    cardinality = attr.hierarchy.level(component.level).cardinality
    return component, cardinality


def iter_blocks(scheme: BlockScheme, attr_name: str):
    """Yield ``(block, (own_lo, own_hi), (hold_lo, hold_hi))`` per block."""
    component, cardinality = _axis_geometry(scheme, attr_name)
    for block in range(scheme.max_block_index(attr_name) + 1):
        own_lo, own_hi = scheme.owned_range(attr_name, block)
        hold_lo = max(0, own_lo + component.low)
        hold_hi = min(cardinality - 1, own_hi + component.high)
        yield block, (own_lo, own_hi), (hold_lo, hold_hi)


def layout_summary(scheme: BlockScheme, attr_name: str) -> LayoutSummary:
    """Count owned and fringe cells across all blocks of one axis."""
    _component, cardinality = _axis_geometry(scheme, attr_name)
    owned = fringe = 0
    blocks = 0
    for _block, (own_lo, own_hi), (hold_lo, hold_hi) in iter_blocks(
        scheme, attr_name
    ):
        blocks += 1
        owned += own_hi - own_lo + 1
        fringe += (hold_hi - hold_lo + 1) - (own_hi - own_lo + 1)
    return LayoutSummary(
        blocks=blocks,
        coordinates=cardinality,
        owned_cells=owned,
        fringe_cells=fringe,
    )


def render_blocks(
    scheme: BlockScheme,
    attr_name: str,
    max_blocks: int = 12,
    max_width: int = 72,
) -> str:
    """Draw the axis layout: ``#`` owned, ``.`` fringe, per block.

    Long axes are clipped to *max_blocks* rows and *max_width* columns;
    a trailing summary line always reports the exact totals.
    """
    component, cardinality = _axis_geometry(scheme, attr_name)
    width = min(cardinality, max_width)
    lines = [
        f"axis {attr_name!r} at level {component.level!r}: "
        f"{cardinality} coordinates, annotation "
        f"({component.low},{component.high}), cf={scheme.factor(attr_name)}"
    ]
    shown = 0
    for block, (own_lo, own_hi), (hold_lo, hold_hi) in iter_blocks(
        scheme, attr_name
    ):
        if shown >= max_blocks:
            lines.append(f"... {scheme.max_block_index(attr_name) + 1 - shown} "
                         "more blocks")
            break
        cells = []
        for coordinate in range(width):
            if own_lo <= coordinate <= own_hi:
                cells.append("#")
            elif hold_lo <= coordinate <= hold_hi:
                cells.append(".")
            else:
                cells.append(" ")
        clipped = "+" if cardinality > width else "|"
        lines.append(f"block {block:>3} |{''.join(cells)}{clipped}")
        shown += 1
    summary = layout_summary(scheme, attr_name)
    lines.append(
        f"{summary.blocks} blocks, {summary.owned_cells} owned + "
        f"{summary.fringe_cells} fringe cells over {summary.coordinates} "
        f"coordinates (x{summary.duplication:.2f} duplication)"
    )
    return "\n".join(lines)
