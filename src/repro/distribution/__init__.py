"""Distribution schemes: feasible keys, overlap, clustering factors."""

from repro.distribution.clustering import BlockScheme
from repro.distribution.derive import (
    candidate_keys,
    candidate_keys_annotated,
    feasible_parallelism,
    is_feasible,
    key_of_granularity,
    lca_key,
    measure_keys,
    minimal_feasible_key,
    non_overlapping_key,
    op_combine,
    op_convert,
)
from repro.distribution.keys import (
    DistributionError,
    DistributionKey,
    KeyComponent,
)
from repro.distribution.layout import (
    LayoutSummary,
    iter_blocks,
    layout_summary,
    render_blocks,
)

__all__ = [
    "BlockScheme",
    "DistributionError",
    "DistributionKey",
    "KeyComponent",
    "LayoutSummary",
    "candidate_keys",
    "candidate_keys_annotated",
    "feasible_parallelism",
    "is_feasible",
    "iter_blocks",
    "key_of_granularity",
    "layout_summary",
    "lca_key",
    "measure_keys",
    "minimal_feasible_key",
    "non_overlapping_key",
    "op_combine",
    "op_convert",
    "render_blocks",
]
