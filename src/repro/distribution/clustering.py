"""Block assignment under a distribution key and clustering factor.

The *clustering factor* ``cf`` merges ``cf`` adjacent regions along each
annotated attribute into one distribution block (Section III-C).  A block
with index ``b`` *owns* coordinates ``b*cf .. b*cf + cf - 1`` and is the
only block allowed to output results anchored there; to make that
possible it additionally receives the records of coordinates reaching
``low`` before its first owned coordinate and ``high`` past its last one.
Larger ``cf`` amortizes the duplicated fringe over more owned regions at
the price of fewer blocks (less parallelism) -- the trade-off the
optimizer resolves.

The scheme produces, per record, the set of block keys the record must be
shipped to (:meth:`BlockScheme.make_mapper`) and, per block, the
ownership predicate that filters duplicate results in the reducers
(:meth:`BlockScheme.make_result_filter`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Mapping

from repro.cube.domains import ALL, ALL_VALUE
from repro.cube.regions import Granularity
from repro.distribution.keys import DistributionError, DistributionKey


@dataclass(frozen=True)
class BlockScheme:
    """A distribution key plus clustering factors for annotated attributes."""

    key: DistributionKey
    clustering_factors: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self):
        annotated = set(self.key.annotated_attributes())
        factors = dict(self.clustering_factors)
        unknown = set(factors) - annotated
        if unknown:
            raise DistributionError(
                f"clustering factors given for non-annotated attributes "
                f"{sorted(unknown)}"
            )
        for name in annotated:
            factors.setdefault(name, 1)
            if factors[name] < 1:
                raise DistributionError(
                    f"clustering factor for {name!r} must be >= 1"
                )
        object.__setattr__(self, "clustering_factors", factors)

    # -- geometry -----------------------------------------------------------------

    @property
    def schema(self):
        return self.key.schema

    def factor(self, attr_name: str) -> int:
        return self.clustering_factors.get(attr_name, 1)

    def _axis(self, attr_name: str):
        """(component, hierarchy, level cardinality, cf) for one attribute."""
        attr = self.schema.attribute(attr_name)
        component = self.key.component(attr_name)
        cardinality = attr.hierarchy.level(component.level).cardinality
        return component, attr.hierarchy, cardinality, self.factor(attr_name)

    def max_block_index(self, attr_name: str) -> int:
        _component, _hierarchy, cardinality, cf = self._axis(attr_name)
        return (cardinality - 1) // cf

    def owned_range(self, attr_name: str, block_index: int) -> tuple[int, int]:
        """Coordinates (at the key level) owned by *block_index*."""
        _component, _hierarchy, cardinality, cf = self._axis(attr_name)
        low = block_index * cf
        high = min(cardinality - 1, low + cf - 1)
        return low, high

    def num_blocks(self) -> int:
        """Total distribution blocks (the model's n_G / cf per axis)."""
        count = 1
        for attr, component in zip(self.schema.attributes, self.key.components):
            if component.level == ALL:
                continue
            cardinality = attr.hierarchy.level(component.level).cardinality
            if component.annotated:
                count *= self.max_block_index(attr.name) + 1
            else:
                count *= cardinality
        return count

    def expected_replication(self) -> float:
        """Expected copies of each record ((d + cf) / cf per axis)."""
        copies = 1.0
        for attr, component in zip(self.schema.attributes, self.key.components):
            if component.annotated:
                cf = self.factor(attr.name)
                copies *= (component.span + cf) / cf
        return copies

    # -- record -> blocks ------------------------------------------------------------

    def make_mapper(self):
        """Build ``record -> list[block key tuple]``.

        A record whose coordinate along an annotated axis is ``c`` is
        needed by every block owning some ``t`` with
        ``t + low <= c <= t + high``, i.e. blocks
        ``floor((c - high)/cf) .. floor((c - low)/cf)`` (clamped).
        Non-annotated axes contribute the single mapped coordinate.
        """
        steps = []
        for index, (attr, component) in enumerate(
            zip(self.schema.attributes, self.key.components)
        ):
            if component.level == ALL:
                steps.append((index, None, None))
                continue
            to_level = attr.hierarchy.base_mapper(component.level)
            if not component.annotated:
                steps.append((index, to_level, None))
            else:
                cf = self.factor(attr.name)
                max_block = self.max_block_index(attr.name)
                steps.append(
                    (
                        index,
                        to_level,
                        (component.low, component.high, cf, max_block),
                    )
                )

        def blocks_of(record) -> list[tuple[int, ...]]:
            axes = []
            for index, to_level, annotation in steps:
                if to_level is None:
                    axes.append((ALL_VALUE,))
                    continue
                coordinate = to_level(record[index])
                if annotation is None:
                    axes.append((coordinate,))
                else:
                    low, high, cf, max_block = annotation
                    first = max(0, (coordinate - high) // cf)
                    # Negative numerators floor-divide downward in Python,
                    # which is exactly the clamp-from-below we want.
                    last = min(max_block, (coordinate - low) // cf)
                    axes.append(tuple(range(first, last + 1)))
            return [key for key in product(*axes)]

        return blocks_of

    def make_batch_router(self):
        """Build ``RecordBatch -> list[(block key, row index array)]``
        (see ``route`` for the ``prefix``/``flat`` variants).

        The vectorized counterpart of :meth:`make_mapper`: coordinates
        are mapped for whole columns at once, annotated axes replicate
        rows into their covering block range with ``np.repeat``
        arithmetic, and the replicas are grouped by block key with one
        stable lexsort.  Within each block the returned row indices are
        ascending, matching the record order the scalar mapper feeds
        into each block's group.
        """
        import numpy as np

        from repro.cube.batches import row_tuples

        steps = []
        for index, (attr, component) in enumerate(
            zip(self.schema.attributes, self.key.components)
        ):
            if component.level == ALL:
                steps.append((index, None, None))
                continue
            to_array = attr.hierarchy.base_mapper_array(component.level)
            if not component.annotated:
                steps.append((index, to_array, None))
            else:
                cf = self.factor(attr.name)
                max_block = self.max_block_index(attr.name)
                steps.append(
                    (
                        index,
                        to_array,
                        (component.low, component.high, cf, max_block),
                    )
                )

        varying_positions = [
            position
            for position, (_index, to_array, _annotation) in enumerate(steps)
            if to_array is not None
        ]

        def route(batch, prefix=(), flat=False, raw=False):
            """Group *batch*'s rows (with replication) by block key.

            *prefix* values become leading components of every returned
            key, folded into the key matrix before the bulk conversion
            -- far cheaper than per-block tuple concatenation after the
            fact.  With ``flat=False`` returns
            ``[(block key, ascending row index array)]``; with
            ``flat=True`` returns ``(keys, rows, counts)`` -- the block
            keys, one flat row-index array (block-major, ascending
            within each block), and per-block replica counts -- skipping
            the per-block slice objects entirely for consumers that
            immediately re-flatten.  With ``raw=True`` returns the
            *unsorted* ``(key matrix, source rows, varying columns)``
            replica table so early aggregation can fold the block
            grouping into its own per-measure sort instead of sorting
            twice.
            """
            base = len(prefix)
            varying = [base + position for position in varying_positions]
            total = len(batch)
            if not total:
                if raw:
                    return (
                        np.empty((0, base + len(steps)), dtype=np.int64),
                        np.empty(0, dtype=np.int64),
                        varying,
                    )
                if flat:
                    empty = np.empty(0, dtype=np.int64)
                    return [], empty, empty
                return []
            coords_by_step = [
                to_array(batch.column(index)) if to_array is not None else None
                for index, to_array, _annotation in steps
            ]

            # Replicate rows across annotated axes.  ``sel`` holds the
            # source row of every replica; previously expanded block
            # columns are re-indexed alongside it.
            sel = np.arange(total, dtype=np.int64)
            expanded: list[tuple[int, np.ndarray]] = []
            for position, (_index, _to_array, annotation) in enumerate(steps):
                if annotation is None:
                    continue
                low, high, cf, max_block = annotation
                coords = coords_by_step[position]
                first = np.maximum(0, (coords - high) // cf)
                last = np.minimum(max_block, (coords - low) // cf)
                first_sel = first[sel]
                counts = (last - first + 1)[sel]
                reps = np.repeat(
                    np.arange(len(sel), dtype=np.int64), counts
                )
                offsets = np.arange(
                    int(counts.sum()), dtype=np.int64
                ) - np.repeat(np.cumsum(counts) - counts, counts)
                block_column = first_sel[reps] + offsets
                sel = sel[reps]
                expanded = [
                    (pos, column[reps]) for pos, column in expanded
                ]
                expanded.append((position, block_column))

            expanded_columns = dict(expanded)
            replicated = bool(expanded)
            keys = np.empty((len(sel), base + len(steps)), dtype=np.int64)
            for offset, value in enumerate(prefix):
                keys[:, offset] = value
            for position, (_index, to_array, annotation) in enumerate(steps):
                if to_array is None:
                    keys[:, base + position] = ALL_VALUE
                elif annotation is None:
                    column = coords_by_step[position]
                    keys[:, base + position] = (
                        column[sel] if replicated else column
                    )
                else:
                    keys[:, base + position] = expanded_columns[position]

            if raw:
                return keys, sel, varying

            # Prefix and ALL columns are constant -- sort and group on
            # the varying ones only.
            if varying:
                order = np.lexsort(keys.T[varying][::-1])
                sorted_keys = keys[order]
                sorted_rows = sel[order] if replicated else order
                data = sorted_keys[:, varying]
                boundary = np.ones(len(data), dtype=bool)
                boundary[1:] = (data[1:] != data[:-1]).any(axis=1)
            else:
                # Every component is ALL: one block owns everything.
                sorted_keys = keys
                sorted_rows = sel
                boundary = np.zeros(len(keys), dtype=bool)
                boundary[0] = True
            starts = np.flatnonzero(boundary)
            # Plain python ints (np.int64 repr differs, which would
            # change stable_hash partitioning), converted in bulk --
            # see :func:`repro.cube.batches.row_tuples`.
            block_keys = row_tuples(sorted_keys[starts])
            if flat:
                counts = np.diff(np.append(starts, len(sorted_keys)))
                return block_keys, sorted_rows, counts
            stops = np.append(starts[1:], len(sorted_keys))
            return [
                (key, sorted_rows[start:stop])
                for key, start, stop in zip(
                    block_keys, starts.tolist(), stops.tolist()
                )
            ]

        return route

    def home_block(self, record) -> tuple[int, ...]:
        """The unique block that owns a record's own region."""
        key = []
        for index, (attr, component) in enumerate(
            zip(self.schema.attributes, self.key.components)
        ):
            if component.level == ALL:
                key.append(ALL_VALUE)
                continue
            hierarchy = attr.hierarchy
            coordinate = hierarchy.map_value(
                record[index], hierarchy.base.name, component.level
            )
            if component.annotated:
                key.append(coordinate // self.factor(attr.name))
            else:
                key.append(coordinate)
        return tuple(key)

    def linear_index(self, block_key: tuple[int, ...]) -> int:
        """Row-major position of a block key in the block grid.

        Used by round-robin partitioning: consecutive blocks go to
        consecutive reducers, which balances uniform block sizes better
        than the random assignment the cost model conservatively assumes.
        """
        index = 0
        for attr, component, coordinate in zip(
            self.schema.attributes, self.key.components, block_key
        ):
            if component.level == ALL:
                extent = 1
            elif component.annotated:
                extent = self.max_block_index(attr.name) + 1
            else:
                extent = attr.hierarchy.level(component.level).cardinality
            index = index * extent + coordinate
        return index

    # -- block -> ownership filter ------------------------------------------------------

    def make_result_filter(self, granularity: Granularity):
        """Build ``block_key -> predicate(coords)`` for one measure.

        A reducer may compute a measure row from fringe data that another
        block owns; the predicate keeps exactly the rows whose region (at
        the measure's *granularity*) maps into the block's owned
        coordinate range on every annotated axis.  Non-annotated axes
        need no check: all of a block's records share those coordinates.
        """
        checks = []
        for index, (attr, component) in enumerate(
            zip(self.schema.attributes, self.key.components)
        ):
            if not component.annotated:
                continue
            hierarchy = attr.hierarchy
            measure_level = granularity.levels[index]
            if measure_level == ALL:
                raise DistributionError(
                    f"measure granularity {granularity} is coarser than the "
                    f"key level on annotated attribute {attr.name!r}; the "
                    "key cannot be feasible"
                )
            checks.append(
                (index, attr.name, hierarchy, measure_level, component.level)
            )

        def filter_for(block_key: tuple[int, ...]):
            bounds = []
            for index, attr_name, hierarchy, measure_level, key_level in checks:
                low, high = self.owned_range(attr_name, block_key[index])
                bounds.append((index, hierarchy, measure_level, key_level,
                               low, high))

            def keep(coords: tuple[int, ...]) -> bool:
                for index, hierarchy, measure_level, key_level, low, high in bounds:
                    mapped = hierarchy.map_value(
                        coords[index], measure_level, key_level
                    )
                    if not low <= mapped <= high:
                        return False
                return True

            return keep

        return filter_for
