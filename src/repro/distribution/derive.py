"""Deriving feasible distribution keys from a workflow.

Implements the paper's Section III-B algorithm:

* ``opConvert`` (Table III) widens a source measure's key by a sibling
  window, expressed in the key's own level via exact range conversion;
* ``opCombine`` (Table IV) merges the keys of several source measures:
  per attribute, the coarsest common level, and the hull of the
  annotation intervals converted into it;
* :func:`minimal_feasible_key` walks the workflow in topological order,
  computing one key per measure and combining them all.  For queries
  without sibling edges the result degenerates to the least common
  ancestor of all measure granularities (Theorem 2).

Sign convention: a sibling window ``(l, h)`` means the measure at
coordinate ``t`` reads source values at ``t+l .. t+h``; a key annotation
``(l, h)`` means the block owning ``t`` also holds data of ``t+l .. t+h``.
Composition is therefore plain interval addition, and because every
measure's own granularity joins the combination with interval ``(0, 0)``,
derived keys always have ``low <= 0 <= high``.
"""

from __future__ import annotations

from typing import Sequence

from repro.cube.domains import ALL
from repro.cube.lattice import least_common_ancestor
from repro.cube.regions import Granularity
from repro.query.measures import Relationship, SiblingWindow
from repro.query.workflow import Workflow
from repro.distribution.keys import (
    DistributionError,
    DistributionKey,
    KeyComponent,
)


def key_of_granularity(granularity: Granularity) -> DistributionKey:
    """The granularity itself as an annotation-free key."""
    return DistributionKey(
        granularity.schema,
        tuple(KeyComponent(level) for level in granularity.levels),
    )


def op_convert(
    key: DistributionKey,
    window: SiblingWindow,
    window_level: str,
) -> DistributionKey:
    """Widen *key* to cover a sibling window (the paper's ``opConvert``).

    *window_level* is the level the window offsets are expressed in (the
    sibling measures' granularity at the window attribute).  The offsets
    are converted into the key's own level for that attribute and added
    to the existing annotation interval.

    A key whose component is ``ALL`` on the window attribute already
    covers every sibling and is returned unchanged.
    """
    schema = key.schema
    attr = schema.attribute(window.attribute)
    component = key.component(attr.name)
    if component.level == ALL:
        return key
    low, high = attr.hierarchy.convert_range(
        window.low, window.high, window_level, component.level
    )
    widened = KeyComponent(
        component.level, component.low + low, component.high + high
    )
    return key.replace_component(attr.name, widened)


def op_combine(keys: Sequence[DistributionKey]) -> DistributionKey:
    """Merge several feasible keys into one feasible for all of them.

    Per attribute: pick the coarsest level appearing in any key (``ALL``
    dominates), convert every annotation interval into it, and take the
    interval hull (the paper's ``opCombine``).
    """
    if not keys:
        raise DistributionError("op_combine of an empty key list")
    schema = keys[0].schema
    if any(key.schema != schema for key in keys):
        raise DistributionError("keys belong to different schemas")

    components = []
    for index, attr in enumerate(schema.attributes):
        hierarchy = attr.hierarchy
        levels = [key.components[index].level for key in keys]
        coarsest = max(levels, key=lambda name: hierarchy.level(name).depth)
        if coarsest == ALL:
            components.append(KeyComponent(ALL))
            continue
        low = high = 0
        for key in keys:
            component = key.components[index]
            if component.level == coarsest:
                clow, chigh = component.low, component.high
            elif not component.annotated:
                # Nothing to convert -- and nominal hierarchies (which
                # can never be annotated) have no range arithmetic.
                clow, chigh = 0, 0
            else:
                clow, chigh = hierarchy.convert_range(
                    component.low, component.high, component.level, coarsest
                )
            low = min(low, clow)
            high = max(high, chigh)
        components.append(KeyComponent(coarsest, low, high))
    return DistributionKey(schema, tuple(components))


def measure_keys(workflow: Workflow) -> dict[str, DistributionKey]:
    """Per-measure feasible keys, computed in topological order.

    A basic measure's key is its own granularity.  A composite measure
    combines its sources' keys -- each widened by its edge's sibling
    window if any -- together with its own granularity (its value is
    anchored at its own region, which therefore must live in the block).
    """
    keys: dict[str, DistributionKey] = {}
    for measure in workflow.topological_order():
        if measure.is_basic:
            keys[measure.name] = key_of_granularity(measure.granularity)
            continue
        parts = [key_of_granularity(measure.granularity)]
        for edge in measure.inputs:
            source_key = keys[edge.source.name]
            if edge.relationship is Relationship.SIBLING:
                window_level = measure.granularity.level_of(
                    edge.window.attribute
                )
                source_key = op_convert(source_key, edge.window, window_level)
            parts.append(source_key)
        keys[measure.name] = op_combine(parts)
    return keys


def minimal_feasible_key(workflow: Workflow) -> DistributionKey:
    """The minimal feasible distribution key of the whole query.

    Every other feasible key covers this one (Theorem 2 for queries
    without sibling edges; the annotated analogue of Section III-B.2
    otherwise).
    """
    return op_combine(list(measure_keys(workflow).values()))


def non_overlapping_key(workflow: Workflow) -> DistributionKey:
    """The minimal feasible key with no annotations.

    Obtained by rolling every annotated attribute of the minimal key up
    to ``ALL`` -- always feasible, at the price of coarser parallelism.
    For sibling-free queries this equals the least common ancestor of all
    measure granularities.
    """
    return minimal_feasible_key(workflow).drop_annotations()


def lca_key(workflow: Workflow) -> DistributionKey:
    """Theorem 2's key: the LCA of all measure granularities."""
    return key_of_granularity(
        least_common_ancestor([m.granularity for m in workflow.measures])
    )


def candidate_keys(workflow: Workflow) -> list[DistributionKey]:
    """The optimizer's candidate set (Section IV-B).

    The minimal key may annotate several attributes; execution keeps one
    annotated attribute at a time, so the candidates are: for each
    annotated attribute, the minimal key with all *other* annotated
    attributes rolled up to ``ALL``; plus the fully non-overlapping
    fallback.  For sibling-free queries this is just the minimal key.
    """
    return [key for key, _provenance in candidate_keys_annotated(workflow)]


def candidate_keys_annotated(
    workflow: Workflow,
) -> list[tuple[DistributionKey, str]]:
    """:func:`candidate_keys` plus the provenance of each candidate.

    The provenance string says how the candidate was built from the
    minimal feasible key -- which annotated attribute it kept (rolling
    the others up to ``ALL``), or that it is the non-overlapping
    fallback / the annotation-free minimal key itself.  ``repro
    explain`` shows it next to every candidate so a rejected key can be
    traced back to its construction.
    """
    minimal = minimal_feasible_key(workflow)
    annotated = minimal.annotated_attributes()
    if not annotated:
        return [(minimal, "minimal feasible key (no annotations needed)")]
    candidates = []
    for name in annotated:
        others = [a for a in annotated if a != name]
        provenance = f"minimal key keeping the {name!r} annotation"
        if others:
            provenance += (
                ", other annotated attributes "
                f"({', '.join(repr(o) for o in others)}) rolled up to ALL"
            )
        candidates.append((minimal.drop_annotations(keep=name), provenance))
    candidates.append(
        (
            minimal.drop_annotations(),
            "non-overlapping fallback (every annotation rolled up to ALL)",
        )
    )
    return candidates


def is_feasible(key: DistributionKey, workflow: Workflow) -> bool:
    """Whether *key* is a feasible distribution key for *workflow*.

    Checked against the derived minimal key via the covering relation;
    conservative (a ``True`` is always correct).
    """
    return key.covers(minimal_feasible_key(workflow))


def feasible_parallelism(key: DistributionKey) -> int:
    """Number of distinct regions the key can split the data into."""
    return key.granularity.region_count()
