"""Irregular (calendar) hierarchies.

The paper's range-conversion examples are calendar arithmetic: a
``T:day(-1,+6)`` annotation becomes ``T:month(-1,+3)`` because a ten-day
window spans at most two months and a sixty-day window at most three.
Months do not have a fixed fanout over days, so :class:`UniformHierarchy`
cannot express them; :class:`IrregularHierarchy` supports levels whose
buckets have varying sizes, with the conservative range conversion the
paper sketches:

* converting an offset of ``k`` fine units up to a coarse level uses the
  *smallest* coarse bucket: ``k`` fine units cross at most
  ``ceil(k / min_bucket)`` coarse boundaries;
* converting down uses the *largest* bucket, plus the slack for the
  anchor sitting anywhere inside its own bucket.

Both directions always over-cover, so feasibility is preserved exactly
as for uniform hierarchies.
"""

from __future__ import annotations

import datetime
from bisect import bisect_right
from typing import Mapping, Sequence

from repro.cube.domains import ALL, ALL_VALUE, DomainError, Hierarchy, Level


class IrregularHierarchy(Hierarchy):
    """A numeric hierarchy whose levels have variable bucket sizes.

    Args:
        name: Hierarchy name.
        base_cardinality: Number of base-level values ``[0, card)``.
        level_boundaries: Mapping from level name to the sorted list of
            *start offsets* of that level's buckets (the first entry must
            be 0 and offsets must be strictly increasing and below the
            base cardinality).  Levels must be listed fine-to-coarse and
            must nest: every coarser boundary must also be a boundary of
            every finer level.
        base_level_name: Name of the unit base level.
    """

    def __init__(
        self,
        name: str,
        base_cardinality: int,
        level_boundaries: Mapping[str, Sequence[int]],
        base_level_name: str = "unit",
    ):
        if base_cardinality <= 0:
            raise DomainError("base_cardinality must be positive")
        levels = [Level(base_level_name, 0, 1, base_cardinality)]
        self._boundaries: dict[str, list[int]] = {
            base_level_name: list(range(base_cardinality))
        }
        previous: list[int] = self._boundaries[base_level_name]
        for depth, (level_name, raw) in enumerate(level_boundaries.items(), 1):
            boundaries = list(raw)
            if not boundaries or boundaries[0] != 0:
                raise DomainError(
                    f"level {level_name!r}: boundaries must start at 0"
                )
            if any(b <= a for a, b in zip(boundaries, boundaries[1:])):
                raise DomainError(
                    f"level {level_name!r}: boundaries must be increasing"
                )
            if boundaries[-1] >= base_cardinality:
                raise DomainError(
                    f"level {level_name!r}: boundary {boundaries[-1]} is "
                    f"outside the base domain [0, {base_cardinality})"
                )
            missing = set(boundaries) - set(previous)
            if missing:
                raise DomainError(
                    f"level {level_name!r} does not nest into the previous "
                    f"level: boundaries {sorted(missing)[:3]} are not "
                    "boundaries there"
                )
            self._boundaries[level_name] = boundaries
            levels.append(
                Level(level_name, depth, None, cardinality=len(boundaries))
            )
            previous = boundaries
        levels.append(Level(ALL, len(levels), None, 1))
        super().__init__(name, levels)
        self.base_cardinality = base_cardinality

    @property
    def supports_ranges(self) -> bool:
        return True

    # -- bucket geometry ---------------------------------------------------

    def _bucket_sizes(self, level_name: str) -> tuple[int, int]:
        """(smallest, largest) bucket size of a level, in base units."""
        boundaries = self._boundaries[level_name]
        edges = boundaries + [self.base_cardinality]
        sizes = [b - a for a, b in zip(edges, edges[1:])]
        return min(sizes), max(sizes)

    def bucket_of(self, base_value: int, level_name: str) -> int:
        boundaries = self._boundaries[level_name]
        return bisect_right(boundaries, base_value) - 1

    def _to_base(self, value: int, level_name: str) -> int:
        """Start offset of a level bucket, in base units."""
        boundaries = self._boundaries[level_name]
        if not 0 <= value < len(boundaries):
            raise DomainError(
                f"{self.name}.{level_name} has no bucket {value}"
            )
        return boundaries[value]

    # -- Hierarchy API -------------------------------------------------------

    def map_value(self, value: int, from_level: str, to_level: str) -> int:
        src, dst = self.level(from_level), self.level(to_level)
        if src.depth > dst.depth:
            raise DomainError(
                f"cannot map {self.name}.{from_level} down to finer "
                f"level {to_level}"
            )
        if dst.is_all:
            return ALL_VALUE
        if src.depth == dst.depth:
            return value
        return self.bucket_of(self._to_base(value, from_level), to_level)

    def base_mapper(self, to_level: str):
        level = self.level(to_level)
        if level.is_all:
            return lambda _value: ALL_VALUE
        if level.depth == 0:
            return lambda value: value
        boundaries = self._boundaries[to_level]

        def mapper(value: int, boundaries=boundaries) -> int:
            return bisect_right(boundaries, value) - 1

        return mapper

    def convert_range(
        self, low: int, high: int, from_level: str, to_level: str
    ) -> tuple[int, int]:
        if low > high:
            raise DomainError(f"invalid range ({low}, {high}): low > high")
        src, dst = self.level(from_level), self.level(to_level)
        if src.is_all or dst.is_all:
            raise DomainError("cannot convert ranges through the ALL level")
        if src.depth == dst.depth:
            return (low, high)
        if src.depth < dst.depth:
            # Fine -> coarse: k fine units cross at most ceil(k*src_max /
            # dst_min) coarse boundaries (each fine unit spans up to
            # src_max base units; each coarse bucket at least dst_min).
            _src_min, src_max = self._bucket_sizes(from_level)
            dst_min, _dst_max = self._bucket_sizes(to_level)
            new_low = -_ceil_div(abs(low) * src_max, dst_min) if low < 0 else 0
            new_high = _ceil_div(high * src_max, dst_min) if high > 0 else 0
            return (new_low, new_high)
        # Coarse -> fine: k coarse units span at most k*src_max base
        # units, plus the anchor's own bucket in either direction; each
        # fine unit covers at least dst_min base units.
        _src_min, src_max = self._bucket_sizes(from_level)
        dst_min, _dst_max = self._bucket_sizes(to_level)
        reach_low = abs(low) * src_max + (src_max - 1) if low < 0 else src_max - 1
        reach_high = high * src_max + (src_max - 1) if high > 0 else src_max - 1
        return (-_ceil_div(reach_low, dst_min), _ceil_div(reach_high, dst_min))


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def calendar_hierarchy(
    name: str,
    start: datetime.date,
    end: datetime.date,
    with_weeks: bool = False,
) -> IrregularHierarchy:
    """day -> (week) -> month -> quarter -> year over ``[start, end)``.

    Days are numbered from *start* (day 0).  Month, quarter and year
    buckets are clipped to the covered range, so the first bucket of each
    level starts at day 0 even mid-month -- exactly how a data warehouse
    would partition a bounded fact table.
    """
    if end <= start:
        raise DomainError("calendar range must be non-empty")
    n_days = (end - start).days

    def boundary_days(matches) -> list[int]:
        days = [0]
        current = start + datetime.timedelta(days=1)
        while current < end:
            if matches(current):
                days.append((current - start).days)
            current += datetime.timedelta(days=1)
        return days

    levels: dict[str, list[int]] = {}
    if with_weeks:
        levels["week"] = boundary_days(lambda d: d.weekday() == 0)
    levels["month"] = boundary_days(lambda d: d.day == 1)
    levels["quarter"] = boundary_days(
        lambda d: d.day == 1 and d.month in (1, 4, 7, 10)
    )
    levels["year"] = boundary_days(lambda d: d.day == 1 and d.month == 1)
    if with_weeks:
        # Weeks do not nest into months; expose them as an alternative
        # fine level only when they still nest (they generally do not),
        # so reject the combination explicitly rather than mis-derive.
        raise DomainError(
            "weeks do not nest into months; build a separate hierarchy "
            "with only week boundaries instead"
        )
    return IrregularHierarchy(
        name, n_days, levels, base_level_name="day"
    )


def week_hierarchy(
    name: str, start: datetime.date, end: datetime.date
) -> IrregularHierarchy:
    """day -> week over ``[start, end)`` (weeks begin on Monday)."""
    if end <= start:
        raise DomainError("calendar range must be non-empty")
    n_days = (end - start).days
    days = [0]
    current = start + datetime.timedelta(days=1)
    while current < end:
        if current.weekday() == 0:
            days.append((current - start).days)
        current += datetime.timedelta(days=1)
    return IrregularHierarchy(
        name, n_days, {"week": days}, base_level_name="day"
    )
