"""The generalization lattice over granularities.

Granularities of one schema form a product of chains (one chain per
attribute), hence a lattice.  The *least common ancestor* of a set of
granularities -- per attribute, the most general of the named levels --
is the cornerstone of the paper's Theorem 2: it is the minimal feasible
non-overlapping distribution key.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Sequence

from repro.cube.records import SchemaError
from repro.cube.regions import Granularity


def least_common_ancestor(granularities: Sequence[Granularity]) -> Granularity:
    """Per-attribute most general level among *granularities*.

    This is the finest granularity that is a generalization of every
    input, i.e. their join in the generalization lattice.
    """
    if not granularities:
        raise SchemaError("least_common_ancestor of an empty set")
    schema = granularities[0].schema
    if any(g.schema != schema for g in granularities):
        raise SchemaError("granularities belong to different schemas")
    levels = []
    for index, attr in enumerate(schema.attributes):
        hierarchy = attr.hierarchy
        deepest = max(
            (g.levels[index] for g in granularities),
            key=lambda name: hierarchy.level(name).depth,
        )
        levels.append(deepest)
    return Granularity(schema, tuple(levels))


def greatest_common_descendant(
    granularities: Sequence[Granularity],
) -> Granularity:
    """Per-attribute most specific level: the lattice meet."""
    if not granularities:
        raise SchemaError("greatest_common_descendant of an empty set")
    schema = granularities[0].schema
    levels = []
    for index, attr in enumerate(schema.attributes):
        hierarchy = attr.hierarchy
        shallowest = min(
            (g.levels[index] for g in granularities),
            key=lambda name: hierarchy.level(name).depth,
        )
        levels.append(shallowest)
    return Granularity(schema, tuple(levels))


def generalizations_of(granularity: Granularity) -> Iterator[Granularity]:
    """Enumerate every generalization of *granularity* (including itself).

    The count is the product of remaining chain lengths per attribute, so
    callers should only use this on the shallow hierarchies typical of
    OLAP schemas.
    """
    schema = granularity.schema
    choices = []
    for attr, level in zip(schema.attributes, granularity.levels):
        choices.append(
            [lvl.name for lvl in attr.hierarchy.generalizations(level)]
        )
    for combo in product(*choices):
        yield Granularity(schema, tuple(combo))


def chain_distance(a: Granularity, b: Granularity) -> int:
    """Total per-attribute depth difference; 0 iff equal granularities."""
    if a.schema != b.schema:
        raise SchemaError("granularities belong to different schemas")
    distance = 0
    for attr, la, lb in zip(a.schema.attributes, a.levels, b.levels):
        hierarchy = attr.hierarchy
        distance += abs(hierarchy.level(la).depth - hierarchy.level(lb).depth)
    return distance


def is_feasible_order(
    granularities: Iterable[Granularity],
) -> bool:
    """True when the granularities form a chain (each pair comparable)."""
    items = list(granularities)
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            if not (a.is_generalization_of(b) or b.is_generalization_of(a)):
                return False
    return True
