"""Cube-space substrate: hierarchies, schemas, records, regions."""

from repro.cube.calendar import (
    IrregularHierarchy,
    calendar_hierarchy,
    week_hierarchy,
)
from repro.cube.domains import (
    ALL,
    ALL_VALUE,
    DomainError,
    Hierarchy,
    Level,
    MappingHierarchy,
    UniformHierarchy,
    banded_hierarchy,
    temporal_hierarchy,
)
from repro.cube.lattice import (
    chain_distance,
    generalizations_of,
    greatest_common_descendant,
    is_feasible_order,
    least_common_ancestor,
)
from repro.cube.records import (
    Attribute,
    Record,
    Schema,
    SchemaError,
    estimated_record_bytes,
    make_records,
)
from repro.cube.regions import Granularity, Region, all_granularity

#: Columnar batch API, loaded lazily: repro.cube.batches needs NumPy,
#: which the scalar cube substrate deliberately does not.
_BATCH_EXPORTS = (
    "ColumnPayload",
    "RecordBatch",
    "compact_array",
    "decode_buffer",
    "encode_buffer",
    "estimated_pickle_bytes",
    "row_tuples",
    "wire_dtype",
)


def __getattr__(name):
    if name in _BATCH_EXPORTS:
        from repro.cube import batches

        return getattr(batches, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALL",
    "ALL_VALUE",
    "Attribute",
    "ColumnPayload",
    "RecordBatch",
    "DomainError",
    "Granularity",
    "Hierarchy",
    "IrregularHierarchy",
    "Level",
    "MappingHierarchy",
    "Record",
    "Region",
    "Schema",
    "SchemaError",
    "UniformHierarchy",
    "all_granularity",
    "banded_hierarchy",
    "calendar_hierarchy",
    "chain_distance",
    "compact_array",
    "decode_buffer",
    "encode_buffer",
    "estimated_pickle_bytes",
    "estimated_record_bytes",
    "generalizations_of",
    "greatest_common_descendant",
    "is_feasible_order",
    "least_common_ancestor",
    "make_records",
    "row_tuples",
    "temporal_hierarchy",
    "week_hierarchy",
    "wire_dtype",
]
