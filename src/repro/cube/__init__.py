"""Cube-space substrate: hierarchies, schemas, records, regions."""

from repro.cube.calendar import (
    IrregularHierarchy,
    calendar_hierarchy,
    week_hierarchy,
)
from repro.cube.domains import (
    ALL,
    ALL_VALUE,
    DomainError,
    Hierarchy,
    Level,
    MappingHierarchy,
    UniformHierarchy,
    banded_hierarchy,
    temporal_hierarchy,
)
from repro.cube.lattice import (
    chain_distance,
    generalizations_of,
    greatest_common_descendant,
    is_feasible_order,
    least_common_ancestor,
)
from repro.cube.records import (
    Attribute,
    Record,
    Schema,
    SchemaError,
    estimated_record_bytes,
    make_records,
)
from repro.cube.regions import Granularity, Region, all_granularity

__all__ = [
    "ALL",
    "ALL_VALUE",
    "Attribute",
    "DomainError",
    "Granularity",
    "Hierarchy",
    "IrregularHierarchy",
    "Level",
    "MappingHierarchy",
    "Record",
    "Region",
    "Schema",
    "SchemaError",
    "UniformHierarchy",
    "all_granularity",
    "banded_hierarchy",
    "calendar_hierarchy",
    "chain_distance",
    "estimated_record_bytes",
    "generalizations_of",
    "greatest_common_descendant",
    "is_feasible_order",
    "least_common_ancestor",
    "make_records",
    "temporal_hierarchy",
    "week_hierarchy",
]
