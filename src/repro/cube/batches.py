"""Typed columnar record batches.

A :class:`RecordBatch` holds one block of records as contiguous NumPy
columns -- one per schema field -- so the hot loops of the parallel
evaluator (map-side block routing, early aggregation, cross-process
transport) can run vectorized over whole columns instead of iterating
Python record tuples.

Batches are strictly an accelerated *representation*: they are built
once at load time from a :class:`~repro.cube.records.Schema` and round
trip exactly to the plain record tuples every scalar code path consumes
(:meth:`RecordBatch.to_records`).  Two storage planes exist:

* the **int plane** -- every column is an int64 code; the batch exposes
  a contiguous 2-D matrix (:attr:`RecordBatch.matrix`) that the
  vectorized evaluators and routers consume directly;
* **typed columns** -- a :class:`Column` per field, covering float64
  measure columns, dictionary-encoded string columns (sorted-unique
  dictionary, int64 codes), and a validity bitmap for ``None`` slots.
  Typed batches route and ship columnar but evaluate through the
  scalar path (:attr:`RecordBatch.matrix` is ``None``), which keeps
  results bit-identical.

Construction stays best-effort -- :meth:`RecordBatch.from_records`
returns ``None`` only for data no column type covers (mixed-type
columns, arbitrary objects, ragged rows, values outside int64), which
is the signal for callers to fall back to the scalar path per block.

For cross-process transport a batch compacts into a
:class:`ColumnPayload`: raw little-endian column buffers
(``ndarray.tobytes()``) using the *smallest* dtype that covers each
column's value range (floats stay float64 -- narrowing would round),
plus dictionaries, packed validity bitmaps and a tiny dtype/length
header.  On typical OLAP data this is several times smaller than
pickling lists of record tuples, and it deserializes with one
``np.frombuffer`` per column instead of one object per field.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.cube.records import Record, Schema

#: zlib level for ``codec="zlib"`` buffers: best ratio; these buffers
#: are small enough that compression time is negligible next to the
#: per-object pickling it replaces.
_ZLIB_LEVEL = 6

#: Candidate wire dtypes, tried smallest first when compacting columns.
_WIRE_DTYPES = (
    np.uint8,
    np.int8,
    np.uint16,
    np.int16,
    np.uint32,
    np.int32,
    np.int64,
)

#: Fixed serialized overhead charged per column (dtype tag + length).
_COLUMN_HEADER_BYTES = 8

#: Charged per dictionary entry beyond its UTF-8 bytes (pickle frames
#: each short string with roughly this much structure).
_DICT_ENTRY_BYTES = 6

#: Fixed pickle overhead of one payload object (class path, field
#: names, tuple framing) -- measured, not derived; asserted against
#: actual ``pickle.dumps`` sizes by the accounting tests.
_PAYLOAD_OVERHEAD_BYTES = 140


def row_tuples(matrix: np.ndarray) -> list[tuple[int, ...]]:
    """The rows of a 2-D integer array as plain-int tuples.

    ``matrix.tolist()`` allocates an intermediate list per row before
    any tuple exists; transposing first yields one flat list per column
    and lets ``zip`` assemble the row tuples directly at C speed --
    about twice as fast when rows number in the hundreds of thousands
    (fine clustering routinely produces that many near-singleton
    blocks).
    """
    if not len(matrix):
        return []
    if not matrix.shape[1]:
        return [()] * len(matrix)
    return list(zip(*matrix.T.tolist()))


def wire_dtype(low: int, high: int) -> np.dtype:
    """The smallest candidate dtype whose range covers ``[low, high]``."""
    for candidate in _WIRE_DTYPES:
        info = np.iinfo(candidate)
        if info.min <= low and high <= info.max:
            return np.dtype(candidate)
    raise OverflowError(f"column range [{low}, {high}] exceeds int64")


def compact_array(values: np.ndarray) -> tuple[str, bytes]:
    """Serialize an array as (dtype string, smallest wire bytes).

    Integer arrays shrink to the smallest dtype covering their value
    range; float arrays stay float64 (narrowing would round values and
    break the exact round trip); empty arrays ship as uint8.
    """
    if np.issubdtype(values.dtype, np.floating):
        return (
            np.dtype(np.float64).str,
            np.ascontiguousarray(
                values.astype(np.float64, copy=False)
            ).tobytes(),
        )
    if len(values):
        dtype = wire_dtype(int(values.min()), int(values.max()))
    else:
        dtype = np.dtype(np.uint8)
    return dtype.str, np.ascontiguousarray(
        values.astype(dtype, copy=False)
    ).tobytes()


def encode_buffer(buffer: bytes, codec: str) -> bytes:
    """Apply the named codec to a raw wire buffer."""
    if codec == "zlib":
        return zlib.compress(buffer, _ZLIB_LEVEL)
    if codec == "raw":
        return buffer
    raise ValueError(f"unknown wire codec {codec!r}")


def decode_buffer(buffer: bytes, codec: str) -> bytes:
    """Invert :func:`encode_buffer`."""
    if codec == "zlib":
        return zlib.decompress(buffer)
    if codec == "raw":
        return buffer
    raise ValueError(f"unknown wire codec {codec!r}")


class Column:
    """One typed field of a batch: values plus optional dict/validity.

    Args:
        values: 1-D array -- int64 codes (plain ints or dictionary
            codes) or float64 measure values.
        dictionary: For string columns, the sorted tuple of distinct
            strings the codes index; ``None`` for numeric columns.
        validity: Boolean array, ``True`` where the record held a real
            value and ``False`` where it held ``None`` (the slot's
            stored value is then a zero filler); ``None`` when every
            value is present.
    """

    __slots__ = ("values", "dictionary", "validity")

    def __init__(self, values, dictionary=None, validity=None):
        self.values = values
        self.dictionary = dictionary
        self.validity = validity

    @property
    def is_plain_int(self) -> bool:
        """Whether this column is int codes with no dict and no nulls."""
        return (
            self.dictionary is None
            and self.validity is None
            and np.issubdtype(self.values.dtype, np.integer)
        )

    def take(self, rows: np.ndarray) -> "Column":
        return Column(
            self.values[rows],
            self.dictionary,
            None if self.validity is None else self.validity[rows],
        )

    def slice(self, start: int, stop: int) -> "Column":
        return Column(
            self.values[start:stop],
            self.dictionary,
            None
            if self.validity is None
            else self.validity[start:stop],
        )

    def to_list(self) -> list:
        """The column's original Python values (decoded, with Nones)."""
        if self.dictionary is not None:
            out = [self.dictionary[code] for code in self.values.tolist()]
        else:
            out = self.values.tolist()
        if self.validity is not None:
            flags = self.validity.tolist()
            out = [
                value if valid else None
                for value, valid in zip(out, flags)
            ]
        return out


def _build_column(values: list) -> Column | None:
    """Type one field's values, or ``None`` when no column type fits."""
    validity = None
    present = values
    if any(value is None for value in values):
        validity = np.array(
            [value is not None for value in values], dtype=bool
        )
        present = [value for value in values if value is not None]
    if all(
        type(value) is int for value in present
    ):  # bools are not ints here: True round-trips as True, not 1
        if present and not (
            min(present) >= -(2**63) and max(present) < 2**63
        ):
            return None
        column = np.zeros(len(values), dtype=np.int64)
        filler = _fill(column, values, validity)
        if filler is None:
            return None
        return Column(column, None, validity)
    if all(type(value) is float for value in present):
        column = np.zeros(len(values), dtype=np.float64)
        if _fill(column, values, validity) is None:
            return None
        return Column(column, None, validity)
    if all(type(value) is str for value in present):
        dictionary = tuple(sorted(set(present)))
        index = {value: code for code, value in enumerate(dictionary)}
        column = np.zeros(len(values), dtype=np.int64)
        for row, value in enumerate(values):
            if value is not None:
                column[row] = index[value]
        return Column(column, dictionary, validity)
    return None


def _fill(column: np.ndarray, values: list, validity) -> bool | None:
    """Copy *values* into *column*, skipping null slots; None on error."""
    try:
        if validity is None:
            column[:] = values
        else:
            for row, value in enumerate(values):
                if value is not None:
                    column[row] = value
    except (ValueError, OverflowError, TypeError):
        return None
    return True


@dataclass(frozen=True)
class ColumnPayload:
    """Typed columns serialized as compact per-column buffers.

    Plain bytes, strings and ints only, so payloads cross process
    boundaries (pickle, sockets, shared memory) without carrying NumPy
    object graphs; the arrays are rebuilt zero-copy with
    ``np.frombuffer`` on arrival.  With ``codec="zlib"`` each column
    buffer is additionally deflated, which pays off on the repetitive
    low-entropy columns (block keys, sorted coordinates) that dominate
    wide shuffles.

    ``dictionaries`` and ``validity`` are empty tuples for pure integer
    payloads (the common OLAP case) and per-column entries (``None``
    for absent) otherwise.
    """

    length: int
    dtypes: tuple[str, ...]
    buffers: tuple[bytes, ...]
    codec: str = "raw"
    dictionaries: tuple = ()
    validity: tuple = ()

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, codec: str = "raw"
    ) -> "ColumnPayload":
        """Compact a 2-D integer array into per-column wire buffers."""
        dtypes = []
        buffers = []
        for index in range(matrix.shape[1]):
            dtype, buffer = compact_array(matrix[:, index])
            dtypes.append(dtype)
            buffers.append(encode_buffer(buffer, codec))
        return cls(
            length=matrix.shape[0],
            dtypes=tuple(dtypes),
            buffers=tuple(buffers),
            codec=codec,
        )

    @classmethod
    def from_columns(
        cls, columns: tuple, length: int, codec: str = "raw"
    ) -> "ColumnPayload":
        """Compact typed columns (dict/validity aware) for the wire."""
        dtypes = []
        buffers = []
        dictionaries = []
        validity = []
        for column in columns:
            dtype, buffer = compact_array(column.values)
            dtypes.append(dtype)
            buffers.append(encode_buffer(buffer, codec))
            dictionaries.append(column.dictionary)
            validity.append(
                None
                if column.validity is None
                else encode_buffer(
                    np.packbits(column.validity).tobytes(), codec
                )
            )
        if all(entry is None for entry in dictionaries):
            dictionaries = []
        if all(entry is None for entry in validity):
            validity = []
        return cls(
            length=length,
            dtypes=tuple(dtypes),
            buffers=tuple(buffers),
            codec=codec,
            dictionaries=tuple(dictionaries),
            validity=tuple(validity),
        )

    @property
    def nbytes(self) -> int:
        """Dtype-aware serialized size: buffers, headers, dictionaries
        and validity bitmaps.

        Tracks what ``pickle.dumps(payload)`` actually produces (the
        accounting tests assert the two stay within a few percent), so
        transport reports cannot undercount dictionary-encoded string
        columns or null bitmaps.
        """
        total = _PAYLOAD_OVERHEAD_BYTES
        total += sum(
            len(buffer) + _COLUMN_HEADER_BYTES for buffer in self.buffers
        )
        for dictionary in self.dictionaries:
            if dictionary:
                total += sum(
                    len(entry.encode("utf-8")) + _DICT_ENTRY_BYTES
                    for entry in dictionary
                )
        for bitmap in self.validity:
            if bitmap is not None:
                total += len(bitmap) + _COLUMN_HEADER_BYTES
        return total

    @property
    def is_int_plane(self) -> bool:
        """Whether this payload rebuilds into an int64 matrix batch."""
        return (
            not self.dictionaries
            and not self.validity
            and all(
                np.issubdtype(np.dtype(dtype), np.integer)
                for dtype in self.dtypes
            )
        )

    def to_matrix(self) -> np.ndarray:
        """Rebuild the int64 matrix this payload was compacted from."""
        matrix = np.empty((self.length, len(self.dtypes)), dtype=np.int64)
        for index, (dtype, buffer) in enumerate(
            zip(self.dtypes, self.buffers)
        ):
            matrix[:, index] = np.frombuffer(
                decode_buffer(buffer, self.codec), dtype=np.dtype(dtype)
            )
        return matrix

    def to_columns(self) -> tuple[Column, ...]:
        """Rebuild typed :class:`Column` objects from the wire buffers."""
        columns = []
        for index, (dtype, buffer) in enumerate(
            zip(self.dtypes, self.buffers)
        ):
            raw = np.frombuffer(
                decode_buffer(buffer, self.codec), dtype=np.dtype(dtype)
            )
            if np.issubdtype(raw.dtype, np.integer):
                values = raw.astype(np.int64, copy=False)
            else:
                values = raw
            dictionary = (
                self.dictionaries[index] if self.dictionaries else None
            )
            bitmap = self.validity[index] if self.validity else None
            validity = None
            if bitmap is not None:
                validity = np.unpackbits(
                    np.frombuffer(
                        decode_buffer(bitmap, self.codec), dtype=np.uint8
                    ),
                    count=self.length,
                ).astype(bool)
            columns.append(Column(values, dictionary, validity))
        return tuple(columns)

    def to_batch(self, schema: Schema) -> "RecordBatch":
        """Rebuild the batch this payload was compacted from."""
        if len(self.dtypes) != schema.width:
            raise ValueError(
                f"payload has {len(self.dtypes)} columns, schema expects "
                f"{schema.width}"
            )
        if self.is_int_plane:
            return RecordBatch(schema, self.to_matrix())
        return RecordBatch(schema, self.to_columns(), length=self.length)


class RecordBatch:
    """One block of records in columnar form.

    Args:
        schema: The records' schema; one column per field.
        data: Either a 2-D int64 matrix of shape
            ``(records, schema.width)`` (the int plane) or a tuple of
            :class:`Column` objects (typed columns).
        length: Record count; required for typed columns (a matrix
            carries its own shape).
    """

    __slots__ = ("schema", "columns", "_matrix", "_length")

    def __init__(self, schema: Schema, data, length: int | None = None):
        self.schema = schema
        if isinstance(data, np.ndarray):
            if data.ndim != 2 or data.shape[1] != schema.width:
                raise ValueError(
                    f"matrix shape {data.shape} does not fit schema "
                    f"width {schema.width}"
                )
            self._matrix = data
            self.columns = None
            self._length = data.shape[0]
        else:
            columns = tuple(data)
            if len(columns) != schema.width:
                raise ValueError(
                    f"{len(columns)} columns do not fit schema width "
                    f"{schema.width}"
                )
            if length is None:
                length = len(columns[0].values) if columns else 0
            self.columns = columns
            self._matrix = None
            self._length = length

    # -- construction -------------------------------------------------------

    @classmethod
    def from_records(
        cls, schema: Schema, records
    ) -> "RecordBatch | None":
        """Build a batch, or ``None`` when no column type covers the data.

        The fast path accepts rectangular all-int data as one int64
        matrix.  Anything else is typed per column: float64 measures,
        dictionary-encoded strings, and validity bitmaps for ``None``
        slots.  ``None`` (rather than an exception) is the per-block
        fallback signal: mixed-type columns, arbitrary objects and
        values outside int64 all take the scalar path without aborting
        the evaluation.
        """
        rows = records if isinstance(records, list) else list(records)
        if not rows:
            return cls(
                schema, np.empty((0, schema.width), dtype=np.int64)
            )
        try:
            matrix = np.asarray(rows)
        except (ValueError, OverflowError):
            matrix = None
        if (
            matrix is not None
            and matrix.ndim == 2
            and matrix.shape[1] == schema.width
            and np.issubdtype(matrix.dtype, np.integer)
        ):
            return cls(schema, matrix.astype(np.int64, copy=False))
        if any(len(row) != schema.width for row in rows):
            return None
        columns = []
        for index in range(schema.width):
            column = _build_column([row[index] for row in rows])
            if column is None:
                return None
            columns.append(column)
        return cls(schema, tuple(columns), length=len(rows))

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def matrix(self) -> np.ndarray | None:
        """The int plane: a 2-D int64 matrix, or ``None`` for typed
        batches (floats, dictionaries or nulls present).

        The vectorized evaluators consume this directly; typed batches
        answer ``None`` and evaluate through the exact scalar path.
        """
        if self._matrix is not None:
            return self._matrix
        if self.columns is not None and all(
            column.is_plain_int for column in self.columns
        ):
            if self.columns:
                self._matrix = np.column_stack(
                    [
                        column.values.astype(np.int64, copy=False)
                        for column in self.columns
                    ]
                )
            else:
                self._matrix = np.empty((self._length, 0), dtype=np.int64)
            return self._matrix
        return None

    def column(self, index: int) -> np.ndarray:
        """The stored values of field *index* (a view).

        Int columns yield int64 codes (dictionary codes for string
        columns); float columns yield float64.  Null slots hold zero
        fillers -- consult :meth:`column_typed` for validity.
        """
        if self._matrix is not None:
            return self._matrix[:, index]
        return self.columns[index].values

    def column_typed(self, index: int) -> Column:
        """Field *index* as a :class:`Column` (dict/validity included)."""
        if self.columns is not None:
            return self.columns[index]
        return Column(self._matrix[:, index])

    def field(self, name: str) -> np.ndarray:
        """The values of the named field (dimension or fact)."""
        return self.column(self.schema.field_index(name))

    def routable(self) -> bool:
        """Whether every dimension column is plain int codes.

        Block routing maps dimension values through hierarchy levels,
        which is meaningful only for integer codes with no nulls; fact
        columns may still be typed (floats, strings, validity).
        """
        if self._matrix is not None:
            return True
        return all(
            self.columns[index].is_plain_int
            for index in range(len(self.schema.attributes))
        )

    # -- slicing ------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A zero-copy view of rows ``start:stop``."""
        if self._matrix is not None:
            return RecordBatch(self.schema, self._matrix[start:stop])
        stop = min(stop, self._length)
        start = min(start, stop)
        return RecordBatch(
            self.schema,
            tuple(column.slice(start, stop) for column in self.columns),
            length=stop - start,
        )

    def take(self, rows: np.ndarray) -> "RecordBatch":
        """A new batch holding the given rows (fancy indexing copies)."""
        if self._matrix is not None:
            return RecordBatch(self.schema, self._matrix[rows])
        return RecordBatch(
            self.schema,
            tuple(column.take(rows) for column in self.columns),
            length=len(rows),
        )

    # -- scalar round trip --------------------------------------------------

    def to_records(self) -> list[Record]:
        """The exact record tuples this batch was built from."""
        if self._matrix is not None:
            return [tuple(row) for row in self._matrix.tolist()]
        if not self.columns:
            return [()] * self._length
        return list(
            zip(*(column.to_list() for column in self.columns))
        )

    def reduction_safe(self) -> bool:
        """Whether int64 reductions over this batch cannot overflow.

        Mirrors the vectorized evaluator's conservative guard: the sum
        of ``len(batch)`` values each bounded by the batch's largest
        magnitude must stay inside int64.  Typed batches (no int
        plane) answer ``False`` -- they evaluate via the scalar path.
        """
        if not len(self):
            return True
        matrix = self.matrix
        if matrix is None:
            return False
        peak = int(np.abs(matrix).max())
        return peak <= (2**62) // max(1, len(self))

    # -- transport ----------------------------------------------------------

    def to_payload(self, codec: str = "raw") -> ColumnPayload:
        """Compact the batch into per-column wire buffers."""
        if self._matrix is not None:
            return ColumnPayload.from_matrix(self._matrix, codec=codec)
        return ColumnPayload.from_columns(
            self.columns, self._length, codec=codec
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordBatch({len(self)} records x {self.schema.width} cols)"


def estimated_pickle_bytes(records) -> int:
    """Measured pickle size of a scalar record payload (for reporting)."""
    import pickle

    return len(pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL))
