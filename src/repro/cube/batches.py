"""Columnar record batches.

A :class:`RecordBatch` holds one block of records as a contiguous NumPy
integer matrix -- one row per record, one column per schema field -- so
the hot loops of the parallel evaluator (map-side block routing, early
aggregation, cross-process transport) can run vectorized over whole
columns instead of iterating Python record tuples.

Batches are strictly an accelerated *representation*: they are built
once at load time from a :class:`~repro.cube.records.Schema` and round
trip exactly to the plain record tuples every scalar code path consumes
(:meth:`RecordBatch.to_records`).  Construction is best-effort --
:meth:`RecordBatch.from_records` returns ``None`` for data that cannot
be represented as int64 columns (float facts, arbitrary objects,
overflowing values), which is the signal for callers to fall back to
the scalar path for that block.

For cross-process transport a batch compacts into a
:class:`ColumnPayload`: raw little-endian column buffers
(``ndarray.tobytes()``) using the *smallest* integer dtype that covers
each column's value range, plus a tiny dtype/length header.  On typical
OLAP data (small dimension codes, bounded facts) this is several times
smaller than pickling lists of record tuples, and it deserializes with
one ``np.frombuffer`` per column instead of one object per field.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cube.records import Record, Schema

#: zlib level for ``codec="zlib"`` buffers: best ratio; these buffers
#: are small enough that compression time is negligible next to the
#: per-object pickling it replaces.
_ZLIB_LEVEL = 6

#: Candidate wire dtypes, tried smallest first when compacting columns.
_WIRE_DTYPES = (
    np.uint8,
    np.int8,
    np.uint16,
    np.int16,
    np.uint32,
    np.int32,
    np.int64,
)

#: Fixed serialized overhead charged per column (dtype tag + length).
_COLUMN_HEADER_BYTES = 8


def row_tuples(matrix: np.ndarray) -> list[tuple[int, ...]]:
    """The rows of a 2-D integer array as plain-int tuples.

    ``matrix.tolist()`` allocates an intermediate list per row before
    any tuple exists; transposing first yields one flat list per column
    and lets ``zip`` assemble the row tuples directly at C speed --
    about twice as fast when rows number in the hundreds of thousands
    (fine clustering routinely produces that many near-singleton
    blocks).
    """
    if not len(matrix):
        return []
    if not matrix.shape[1]:
        return [()] * len(matrix)
    return list(zip(*matrix.T.tolist()))


def wire_dtype(low: int, high: int) -> np.dtype:
    """The smallest candidate dtype whose range covers ``[low, high]``."""
    for candidate in _WIRE_DTYPES:
        info = np.iinfo(candidate)
        if info.min <= low and high <= info.max:
            return np.dtype(candidate)
    raise OverflowError(f"column range [{low}, {high}] exceeds int64")


def compact_array(values: np.ndarray) -> tuple[str, bytes]:
    """Serialize an integer array as (dtype string, smallest wire bytes)."""
    if len(values):
        dtype = wire_dtype(int(values.min()), int(values.max()))
    else:
        dtype = np.dtype(np.uint8)
    return dtype.str, np.ascontiguousarray(
        values.astype(dtype, copy=False)
    ).tobytes()


def encode_buffer(buffer: bytes, codec: str) -> bytes:
    """Apply the named codec to a raw wire buffer."""
    if codec == "zlib":
        return zlib.compress(buffer, _ZLIB_LEVEL)
    if codec == "raw":
        return buffer
    raise ValueError(f"unknown wire codec {codec!r}")


def decode_buffer(buffer: bytes, codec: str) -> bytes:
    """Invert :func:`encode_buffer`."""
    if codec == "zlib":
        return zlib.decompress(buffer)
    if codec == "raw":
        return buffer
    raise ValueError(f"unknown wire codec {codec!r}")


@dataclass(frozen=True)
class ColumnPayload:
    """An integer matrix serialized as compact column buffers.

    Plain bytes and strings only, so payloads cross process boundaries
    (pickle, sockets) without carrying NumPy object graphs; the arrays
    are rebuilt zero-copy with ``np.frombuffer`` on arrival.  With
    ``codec="zlib"`` each column buffer is additionally deflated, which
    pays off on the repetitive low-entropy columns (block keys, sorted
    coordinates) that dominate wide shuffles.
    """

    length: int
    dtypes: tuple[str, ...]
    buffers: tuple[bytes, ...]
    codec: str = "raw"

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, codec: str = "raw"
    ) -> "ColumnPayload":
        """Compact a 2-D integer array into per-column wire buffers."""
        dtypes = []
        buffers = []
        for index in range(matrix.shape[1]):
            dtype, buffer = compact_array(matrix[:, index])
            dtypes.append(dtype)
            buffers.append(encode_buffer(buffer, codec))
        return cls(
            length=matrix.shape[0],
            dtypes=tuple(dtypes),
            buffers=tuple(buffers),
            codec=codec,
        )

    @property
    def nbytes(self) -> int:
        """Serialized size: column buffers plus per-column headers."""
        return (
            sum(len(buffer) for buffer in self.buffers)
            + _COLUMN_HEADER_BYTES * len(self.buffers)
        )

    def to_matrix(self) -> np.ndarray:
        """Rebuild the int64 matrix this payload was compacted from."""
        matrix = np.empty((self.length, len(self.dtypes)), dtype=np.int64)
        for index, (dtype, buffer) in enumerate(
            zip(self.dtypes, self.buffers)
        ):
            matrix[:, index] = np.frombuffer(
                decode_buffer(buffer, self.codec), dtype=np.dtype(dtype)
            )
        return matrix

    def to_batch(self, schema: Schema) -> "RecordBatch":
        """Rebuild the batch this payload was compacted from."""
        if len(self.dtypes) != schema.width:
            raise ValueError(
                f"payload has {len(self.dtypes)} columns, schema expects "
                f"{schema.width}"
            )
        return RecordBatch(schema, self.to_matrix())


class RecordBatch:
    """One block of records in columnar form.

    Args:
        schema: The records' schema; one matrix column per field.
        matrix: 2-D int64 array, shape ``(len(records), schema.width)``.
    """

    __slots__ = ("schema", "matrix")

    def __init__(self, schema: Schema, matrix: np.ndarray):
        if matrix.ndim != 2 or matrix.shape[1] != schema.width:
            raise ValueError(
                f"matrix shape {matrix.shape} does not fit schema width "
                f"{schema.width}"
            )
        self.schema = schema
        self.matrix = matrix

    # -- construction -------------------------------------------------------

    @classmethod
    def from_records(
        cls, schema: Schema, records
    ) -> "RecordBatch | None":
        """Build a batch, or ``None`` when the data is not int-columnar.

        ``None`` (rather than an exception) is the per-block fallback
        signal: float facts, mixed types, and values outside int64 all
        take the scalar path without aborting the evaluation.
        """
        rows = records if isinstance(records, list) else list(records)
        if not rows:
            return cls(
                schema, np.empty((0, schema.width), dtype=np.int64)
            )
        try:
            matrix = np.asarray(rows)
        except (ValueError, OverflowError):
            return None
        if (
            matrix.ndim != 2
            or matrix.shape[1] != schema.width
            or not np.issubdtype(matrix.dtype, np.integer)
        ):
            return None
        return cls(schema, matrix.astype(np.int64, copy=False))

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def column(self, index: int) -> np.ndarray:
        """The values of field *index*, one entry per record (a view)."""
        return self.matrix[:, index]

    def field(self, name: str) -> np.ndarray:
        """The values of the named field (dimension or fact)."""
        return self.column(self.schema.field_index(name))

    # -- slicing ------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """A zero-copy view of rows ``start:stop``."""
        return RecordBatch(self.schema, self.matrix[start:stop])

    def take(self, rows: np.ndarray) -> "RecordBatch":
        """A new batch holding the given rows (fancy indexing copies)."""
        return RecordBatch(self.schema, self.matrix[rows])

    # -- scalar round trip --------------------------------------------------

    def to_records(self) -> list[Record]:
        """The exact record tuples this batch was built from."""
        return [tuple(row) for row in self.matrix.tolist()]

    def reduction_safe(self) -> bool:
        """Whether int64 reductions over this batch cannot overflow.

        Mirrors the vectorized evaluator's conservative guard: the sum
        of ``len(batch)`` values each bounded by the batch's largest
        magnitude must stay inside int64.
        """
        if not len(self):
            return True
        peak = int(np.abs(self.matrix).max())
        return peak <= (2**62) // max(1, len(self))

    # -- transport ----------------------------------------------------------

    def to_payload(self, codec: str = "raw") -> ColumnPayload:
        """Compact the batch into per-column wire buffers."""
        return ColumnPayload.from_matrix(self.matrix, codec=codec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordBatch({len(self)} records x {self.schema.width} cols)"


def estimated_pickle_bytes(records) -> int:
    """Measured pickle size of a scalar record payload (for reporting)."""
    import pickle

    return len(pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL))
