"""Schemas and records.

A record is a plain tuple of base-level values, one slot per schema
attribute (dimension attributes first, in schema order), followed by any
purely-numeric *fact* fields that measures aggregate but that never act as
grouping dimensions.  Keeping records as tuples keeps the MapReduce
substrate simple and cheap to serialize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cube.domains import DomainError, Hierarchy


@dataclass(frozen=True)
class Attribute:
    """A dimension attribute: a name bound to a hierarchy."""

    name: str
    hierarchy: Hierarchy

    @property
    def supports_ranges(self) -> bool:
        return self.hierarchy.supports_ranges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Attribute({self.name!r})"


class SchemaError(ValueError):
    """Raised for invalid schema definitions or unknown attribute names."""


@dataclass(frozen=True)
class Schema:
    """An ordered set of dimension attributes plus named fact fields.

    Args:
        attributes: Dimension attributes, in record-slot order.
        facts: Names of trailing numeric fields carried by each record
            (may be empty; dimension values can be aggregated directly).
    """

    attributes: tuple[Attribute, ...]
    facts: tuple[str, ...] = ()
    _index: dict = field(init=False, repr=False, compare=False, hash=False)

    def __init__(
        self, attributes: Sequence[Attribute], facts: Sequence[str] = ()
    ):
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "facts", tuple(facts))
        names = [attr.name for attr in self.attributes] + list(self.facts)
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        object.__setattr__(
            self, "_index", {name: i for i, name in enumerate(names)}
        )

    # -- lookup ------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of slots in each record tuple."""
        return len(self.attributes) + len(self.facts)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"schema has no dimension attribute {name!r}")

    def attribute_index(self, name: str) -> int:
        """Slot index of dimension attribute *name*."""
        index = self._index.get(name)
        if index is None or index >= len(self.attributes):
            raise SchemaError(f"schema has no dimension attribute {name!r}")
        return index

    def field_index(self, name: str) -> int:
        """Slot index of any field (dimension or fact)."""
        index = self._index.get(name)
        if index is None:
            raise SchemaError(f"schema has no field {name!r}")
        return index

    def has_field(self, name: str) -> bool:
        return name in self._index

    def validate_record(self, record: Sequence) -> None:
        """Raise :class:`SchemaError` when *record* has the wrong arity."""
        if len(record) != self.width:
            raise SchemaError(
                f"record {record!r} has {len(record)} fields, schema "
                f"expects {self.width}"
            )

    def level(self, attr_name: str, level_name: str):
        """Resolve ``attr.level`` with uniform error reporting."""
        try:
            return self.attribute(attr_name).hierarchy.level(level_name)
        except DomainError as exc:
            raise SchemaError(str(exc)) from exc


Record = tuple
"""Type alias: records are plain tuples (see module docstring)."""


def make_records(schema: Schema, rows: Iterable[Sequence]) -> list[Record]:
    """Validate and normalize an iterable of rows into record tuples."""
    records = []
    for row in rows:
        schema.validate_record(row)
        records.append(tuple(row))
    return records


def estimated_record_bytes(schema: Schema) -> int:
    """Deterministic per-record size estimate used by the timing model.

    Eight bytes per slot plus tuple overhead; the exact constant only
    scales simulated times, it never changes which plan wins.
    """
    return 8 * schema.width + 16
