"""Granularities, regions and coordinate mapping in cube space.

A *granularity* names one hierarchy level per schema attribute (the
paper's ``<K:keyword, T:minute>`` notation; attributes left at ``ALL`` may
be omitted).  A *region* is one concrete cell at a granularity, identified
by its coordinate tuple.  Records map to regions by rolling their base
values up to the granularity's levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import Mapping, Sequence

from repro.cube.domains import ALL, ALL_VALUE
from repro.cube.records import Record, Schema, SchemaError


@dataclass(frozen=True)
class Granularity:
    """One hierarchy level per attribute of a schema.

    Instances are created through :meth:`of`, which accepts the sparse
    ``{attr: level}`` notation used throughout the paper and fills the
    remaining attributes with ``ALL``.
    """

    schema: Schema
    levels: tuple[str, ...]

    @classmethod
    def of(cls, schema: Schema, levels: Mapping[str, str]) -> "Granularity":
        """Build a granularity from a sparse ``{attribute: level}`` map."""
        unknown = set(levels) - set(schema.attribute_names)
        if unknown:
            raise SchemaError(
                f"granularity names unknown attributes {sorted(unknown)}"
            )
        resolved = []
        for attr in schema.attributes:
            level_name = levels.get(attr.name, ALL)
            attr.hierarchy.level(level_name)  # validate
            resolved.append(level_name)
        return cls(schema, tuple(resolved))

    # -- accessors ----------------------------------------------------------

    def level_of(self, attr_name: str) -> str:
        return self.levels[self.schema.attribute_index(attr_name)]

    def non_all_attributes(self) -> tuple[str, ...]:
        """Names of attributes not rolled up to ``ALL``."""
        return tuple(
            attr.name
            for attr, level in zip(self.schema.attributes, self.levels)
            if level != ALL
        )

    def replace(self, **levels: str) -> "Granularity":
        """A copy with some attributes moved to different levels."""
        updated = dict(zip(self.schema.attribute_names, self.levels))
        updated.update(levels)
        return Granularity.of(self.schema, updated)

    # -- ordering in the generalization lattice ------------------------------

    def is_generalization_of(self, other: "Granularity") -> bool:
        """True when every attribute level is at least as general.

        A generalization describes *larger* regions: any region of *other*
        is contained in exactly one region of ``self``.
        """
        if self.schema is not other.schema and self.schema != other.schema:
            raise SchemaError("granularities belong to different schemas")
        for attr, mine, theirs in zip(
            self.schema.attributes, self.levels, other.levels
        ):
            hierarchy = attr.hierarchy
            if hierarchy.level(mine).depth < hierarchy.level(theirs).depth:
                return False
        return True

    def is_specialization_of(self, other: "Granularity") -> bool:
        return other.is_generalization_of(self)

    # -- coordinates ----------------------------------------------------------

    def coordinates_of(self, record: Record) -> tuple[int, ...]:
        """Map a record to its region coordinates at this granularity."""
        coords = []
        for i, (attr, level) in enumerate(
            zip(self.schema.attributes, self.levels)
        ):
            if level == ALL:
                coords.append(ALL_VALUE)
            else:
                hierarchy = attr.hierarchy
                coords.append(
                    hierarchy.map_value(record[i], hierarchy.base.name, level)
                )
        return tuple(coords)

    def coordinate_mapper(self):
        """A fast ``record -> coords`` callable with levels pre-resolved.

        Each attribute contributes a pre-built base mapper (a plain
        divide or table lookup), so the per-record cost is a handful of
        arithmetic operations rather than level resolution.
        """
        steps = [
            attr.hierarchy.base_mapper(level)
            for attr, level in zip(self.schema.attributes, self.levels)
        ]

        def mapper(record: Record) -> tuple[int, ...]:
            return tuple(
                step(record[i]) for i, step in enumerate(steps)
            )

        return mapper

    def refinements(
        self,
        coords: Sequence[int],
        target: "Granularity",
        limit: int | None = None,
    ) -> list[tuple[int, ...]] | None:
        """All *target*-granularity coordinates rolling up into *coords*.

        The inverse of :meth:`map_coords`: expands one coarse region
        into the finer regions it covers, for bounded-repair scans that
        would otherwise map every fine coordinate upward.  Returns
        ``None`` when a hierarchy cannot enumerate children
        (:meth:`~repro.cube.domains.Hierarchy.refine_values`) or when
        the expansion would exceed *limit* coordinates -- callers fall
        back to scanning in both cases.
        """
        if not self.is_generalization_of(target):
            raise SchemaError(
                f"{self} is not a generalization of {target}; cannot "
                "refine coordinates upward"
            )
        axes: list[Sequence[int]] = []
        total = 1
        for attr, value, src, dst in zip(
            self.schema.attributes, coords, self.levels, target.levels
        ):
            if src == dst:
                axes.append((value,))
                continue
            members = attr.hierarchy.refine_values(value, src, dst)
            if members is None:
                return None
            axes.append(members)
            total *= len(members)
            if limit is not None and total > limit:
                return None
        return list(product(*axes))

    def coords_mapper(self, target: "Granularity"):
        """A fast ``coords -> coords`` roll-up with levels pre-resolved.

        :meth:`map_coords` validates the direction and resolves both
        levels on every call; scans that roll thousands of coordinates
        up to the same target (incremental maintenance's dirty-anchor
        tests) build the per-attribute steps once here instead.
        """
        if not target.is_generalization_of(self):
            raise SchemaError(
                f"{target} is not a generalization of {self}; cannot map "
                "coordinates downward"
            )
        steps: list = []
        for attr, src, dst in zip(
            self.schema.attributes, self.levels, target.levels
        ):
            if dst == ALL:
                steps.append(None)
            elif src == dst:
                steps.append(False)
            else:
                steps.append(
                    lambda value, h=attr.hierarchy, s=src, d=dst: (
                        h.map_value(value, s, d)
                    )
                )

        def mapper(coords: Sequence[int]) -> tuple[int, ...]:
            return tuple(
                ALL_VALUE if step is None
                else value if step is False
                else step(value)
                for value, step in zip(coords, steps)
            )

        return mapper

    def map_coords(
        self, coords: Sequence[int], target: "Granularity"
    ) -> tuple[int, ...]:
        """Roll region coordinates up to a more general granularity."""
        if not target.is_generalization_of(self):
            raise SchemaError(
                f"{target} is not a generalization of {self}; cannot map "
                "coordinates downward"
            )
        result = []
        for attr, value, src, dst in zip(
            self.schema.attributes, coords, self.levels, target.levels
        ):
            if dst == ALL:
                result.append(ALL_VALUE)
            elif src == dst:
                result.append(value)
            else:
                result.append(attr.hierarchy.map_value(value, src, dst))
        return tuple(result)

    def region_count(self) -> int:
        """Number of regions with this granularity in cube space (n_G)."""
        count = 1
        for attr, level in zip(self.schema.attributes, self.levels):
            count *= attr.hierarchy.level(level).cardinality
        return count

    def __repr__(self) -> str:
        parts = [
            f"{attr.name}:{level}"
            for attr, level in zip(self.schema.attributes, self.levels)
            if level != ALL
        ]
        return "<" + ", ".join(parts) + ">" if parts else "<ALL>"


@dataclass(frozen=True)
class Region:
    """A single cell of cube space: a granularity plus coordinates."""

    granularity: Granularity
    coords: tuple[int, ...]

    def contains_record(self, record: Record) -> bool:
        return self.granularity.coordinates_of(record) == self.coords

    def parent(self, target: Granularity) -> "Region":
        """The unique containing region at a more general granularity."""
        return Region(target, self.granularity.map_coords(self.coords, target))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = [
            f"{attr.name}={value}"
            for attr, value, level in zip(
                self.granularity.schema.attributes,
                self.coords,
                self.granularity.levels,
            )
            if level != ALL
        ]
        return "Region[" + ", ".join(pairs) + "]"


@lru_cache(maxsize=None)
def _all_granularity_cached(schema: Schema) -> Granularity:
    return Granularity.of(schema, {})


def all_granularity(schema: Schema) -> Granularity:
    """The coarsest granularity: every attribute at ``ALL``."""
    return _all_granularity_cached(schema)
