"""Hierarchical value domains for cube-space attributes.

Every attribute of a composite-subset-measure schema draws its values from
a chain of *domains* (the paper's term; we call them :class:`Level` here to
avoid clashing with the mathematical notion of a domain).  The chain runs
from the most specific level (depth 0, the *base* level that raw record
values live in) up to the special ``ALL`` level, which has a single value.

Two kinds of hierarchies are provided:

* :class:`UniformHierarchy` -- for numeric and temporal attributes whose
  levels are fixed-fanout groupings of an integer base domain (seconds ->
  minutes -> hours -> days, or value -> level buckets).  These support the
  exact range-conversion arithmetic needed by ``opConvert``/``opCombine``.
* :class:`MappingHierarchy` -- for nominal attributes (keyword -> keyword
  group) whose level mappings are explicit dictionaries.  Nominal levels
  cannot carry range annotations because closeness is undefined for them.

Values at every level are plain Python ints (nominal hierarchies map
arbitrary hashable base values onto opaque group identifiers).  The single
value of the ``ALL`` level is the constant :data:`ALL_VALUE`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

#: Name of the most general level present in every hierarchy.
ALL = "ALL"

#: The single value of the ``ALL`` level.
ALL_VALUE = 0


class DomainError(ValueError):
    """Raised for invalid level names or impossible level conversions."""


@dataclass(frozen=True)
class Level:
    """One level of a hierarchy.

    Attributes:
        name: Level name, unique within its hierarchy (e.g. ``"minute"``).
        depth: Position in the chain; 0 is the base (most specific) level
            and larger depths are more general.  The ``ALL`` level always
            has the largest depth.
        unit: For uniform hierarchies, the number of *base* units that one
            value of this level spans (e.g. 60 for ``minute`` over a
            ``second`` base).  ``None`` for nominal levels and for ``ALL``.
        cardinality: Number of distinct values of this level over the
            attribute's base domain (1 for ``ALL``).
    """

    name: str
    depth: int
    unit: int | None
    cardinality: int

    @property
    def is_all(self) -> bool:
        return self.name == ALL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Level({self.name!r}, depth={self.depth})"


class Hierarchy:
    """Base class for attribute hierarchies.

    A hierarchy is an ordered chain of :class:`Level` objects, base level
    first and ``ALL`` last.  Subclasses implement :meth:`map_value`.
    """

    def __init__(self, name: str, levels: Sequence[Level]):
        if not levels or not levels[-1].is_all:
            raise DomainError("a hierarchy must end with the ALL level")
        self.name = name
        self.levels = tuple(levels)
        self._by_name = {level.name: level for level in levels}
        if len(self._by_name) != len(levels):
            raise DomainError(f"duplicate level names in hierarchy {name!r}")

    # -- level lookup -----------------------------------------------------

    @property
    def base(self) -> Level:
        """The most specific level (raw record values live here)."""
        return self.levels[0]

    @property
    def all_level(self) -> Level:
        return self.levels[-1]

    def level(self, name: str) -> Level:
        """Return the level called *name*, raising :class:`DomainError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise DomainError(
                f"hierarchy {self.name!r} has no level {name!r}; "
                f"levels are {[lvl.name for lvl in self.levels]}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def is_more_general(self, a: str, b: str) -> bool:
        """True when level *a* is strictly more general than level *b*."""
        return self.level(a).depth > self.level(b).depth

    def generalizations(self, name: str) -> tuple[Level, ...]:
        """All levels at least as general as *name*, specific first."""
        depth = self.level(name).depth
        return tuple(level for level in self.levels if level.depth >= depth)

    def common_generalization(self, a: str, b: str) -> Level:
        """The most specific level that both *a* and *b* roll up into.

        Levels of one attribute form a chain, so this is simply the deeper
        of the two.
        """
        level_a, level_b = self.level(a), self.level(b)
        return level_a if level_a.depth >= level_b.depth else level_b

    # -- value mapping ----------------------------------------------------

    def map_value(self, value: int, from_level: str, to_level: str) -> int:
        """Map *value* from one level to a more general one."""
        raise NotImplementedError

    def refine_values(
        self, value: int, from_level: str, to_level: str
    ) -> Sequence[int] | None:
        """All *to_level* values that roll up into *value* at *from_level*.

        The inverse of :meth:`map_value`: child enumeration for
        bounded-region maintenance (expanding a dirty coarse coordinate
        into the finer coordinates it covers).  Hierarchies that cannot
        enumerate children return ``None``; callers then fall back to
        scanning.
        """
        return None

    def base_mapper(self, to_level: str):
        """A fast ``base value -> to_level value`` callable.

        Level resolution happens once here instead of per record;
        subclasses return a plain arithmetic or table-lookup closure for
        the hot coordinate-mapping loops.
        """
        level = self.level(to_level)
        if level.is_all:
            return lambda _value: ALL_VALUE
        if level.depth == 0:
            return lambda value: value
        base = self.base.name
        return lambda value: self.map_value(value, base, to_level)

    def base_mapper_array(self, to_level: str):
        """Vectorized :meth:`base_mapper`: int64 column -> int64 column.

        The generic implementation precomputes a lookup table over the
        base domain; subclasses with arithmetic mappings override it.
        NumPy is imported lazily so the core cube modules stay usable
        without it.
        """
        import numpy as np

        level = self.level(to_level)
        if level.is_all:
            return lambda column: np.full(len(column), ALL_VALUE,
                                          dtype=np.int64)
        if level.depth == 0:
            return lambda column: column
        mapper = self.base_mapper(to_level)
        cardinality = self.base.cardinality
        table = np.fromiter(
            (mapper(value) for value in range(cardinality)),
            dtype=np.int64,
            count=cardinality,
        )
        return lambda column: table[column]

    @property
    def supports_ranges(self) -> bool:
        """Whether range annotations are meaningful on this attribute."""
        return False

    def convert_range(
        self, low: int, high: int, from_level: str, to_level: str
    ) -> tuple[int, int]:
        """Convert a sibling-offset range between levels (numeric only)."""
        raise DomainError(
            f"attribute hierarchy {self.name!r} is nominal and does not "
            "support range annotations"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = "/".join(level.name for level in self.levels)
        return f"{type(self).__name__}({self.name!r}: {names})"


class UniformHierarchy(Hierarchy):
    """Fixed-fanout hierarchy over an integer base domain ``[0, card)``.

    Args:
        name: Hierarchy name (usually the attribute name).
        level_units: Mapping from level name to the number of base units
            one value of the level spans, in increasing order and starting
            with the base level at unit 1.  The ``ALL`` level is appended
            automatically.
        base_cardinality: Number of distinct base values.

    Example::

        time = UniformHierarchy(
            "time",
            {"second": 1, "minute": 60, "hour": 3600, "day": 86400},
            base_cardinality=20 * 86400,
        )
        time.map_value(3725, "second", "hour")   # -> 1
        time.convert_range(-599, 0, "second", "minute")  # -> (-10, 0)
    """

    def __init__(
        self, name: str, level_units: Mapping[str, int], base_cardinality: int
    ):
        units = list(level_units.values())
        if not units or units[0] != 1:
            raise DomainError("the first (base) level must have unit 1")
        if any(b % a != 0 or b <= a for a, b in zip(units, units[1:])):
            raise DomainError(
                "level units must be strictly increasing and each a "
                "multiple of the previous one"
            )
        if base_cardinality <= 0:
            raise DomainError("base_cardinality must be positive")
        levels = [
            Level(
                level_name,
                depth,
                unit,
                cardinality=max(1, math.ceil(base_cardinality / unit)),
            )
            for depth, (level_name, unit) in enumerate(level_units.items())
        ]
        levels.append(Level(ALL, len(levels), None, 1))
        super().__init__(name, levels)
        self.base_cardinality = base_cardinality

    @property
    def supports_ranges(self) -> bool:
        return True

    def map_value(self, value: int, from_level: str, to_level: str) -> int:
        src, dst = self.level(from_level), self.level(to_level)
        if src.depth > dst.depth:
            raise DomainError(
                f"cannot map {self.name}.{from_level} down to finer "
                f"level {to_level}"
            )
        if dst.is_all:
            return ALL_VALUE
        if src.depth == dst.depth:
            return value
        # Both units are defined; integer floor division maps a fine
        # coordinate to the coarse bucket containing it.
        return (value * src.unit) // dst.unit

    def refine_values(
        self, value: int, from_level: str, to_level: str
    ) -> Sequence[int] | None:
        src, dst = self.level(from_level), self.level(to_level)
        if src.depth < dst.depth:
            raise DomainError(
                f"cannot refine {self.name}.{from_level} into coarser "
                f"level {to_level}"
            )
        if src.depth == dst.depth:
            return (value,)
        if src.is_all:
            return range(dst.cardinality)
        ratio = src.unit // dst.unit
        start = value * ratio
        return range(start, min(start + ratio, dst.cardinality))

    def base_mapper(self, to_level: str):
        level = self.level(to_level)
        if level.is_all:
            return lambda _value: ALL_VALUE
        if level.depth == 0:
            return lambda value: value
        unit = level.unit
        return lambda value: value // unit

    def base_mapper_array(self, to_level: str):
        import numpy as np

        level = self.level(to_level)
        if level.is_all:
            return lambda column: np.full(len(column), ALL_VALUE,
                                          dtype=np.int64)
        if level.depth == 0:
            return lambda column: column
        unit = level.unit
        # NumPy's // floors like Python's, so negative coordinates (not
        # that records carry any) would bucket identically.
        return lambda column: column // unit

    def convert_range(
        self, low: int, high: int, from_level: str, to_level: str
    ) -> tuple[int, int]:
        """Conservatively convert an offset interval between levels.

        An offset of ``k`` fine units, seen from a coordinate anywhere
        inside a coarse bucket, can land at most ``ceil(k / f)`` coarse
        buckets away (``f`` = fanout).  Mapping towards a finer level
        multiplies the reach accordingly.  The result always contains the
        exact coverage, mirroring the paper's ``T:day(-1,+6)`` ->
        ``T:month(-1,+3)`` example.
        """
        if low > high:
            raise DomainError(f"invalid range ({low}, {high}): low > high")
        src, dst = self.level(from_level), self.level(to_level)
        if src.is_all or dst.is_all:
            raise DomainError("cannot convert ranges through the ALL level")
        if src.depth == dst.depth:
            return (low, high)
        if src.depth < dst.depth:
            fanout = dst.unit // src.unit
            return (math.floor(low / fanout), math.ceil(high / fanout))
        fanout = src.unit // dst.unit
        # The fine anchor may sit anywhere inside its coarse bucket, so a
        # reach of k coarse units covers fine offsets up to
        # k*f + (f-1) away in either direction.
        return (low * fanout - (fanout - 1), high * fanout + (fanout - 1))


class MappingHierarchy(Hierarchy):
    """Nominal hierarchy defined by explicit parent mappings.

    Args:
        name: Hierarchy name.
        base_values: The distinct base-level values (any hashables); they
            are enumerated into contiguous int codes in iteration order.
        level_maps: Ordered mapping from level name to a dict sending each
            value of the *previous* level to its value at this level.
            Levels must be listed specific-to-general; ``ALL`` is appended
            automatically.
    """

    def __init__(
        self,
        name: str,
        base_values: Sequence[Hashable],
        level_maps: Mapping[str, Mapping[Hashable, Hashable]] | None = None,
        base_level_name: str = "value",
    ):
        level_maps = dict(level_maps or {})
        self.encode = {value: code for code, value in enumerate(base_values)}
        if len(self.encode) != len(base_values):
            raise DomainError("base_values must be distinct")
        self.decode: dict[int, list[Hashable]] = {
            0: list(base_values)
        }

        levels = [Level(base_level_name, 0, None, len(base_values))]
        # _tables[depth][code_at_base] -> code at that depth
        self._tables: list[list[int]] = [list(range(len(base_values)))]
        # _representatives[depth][code_at_depth] -> one base code mapping
        # to it; enables mapping between two intermediate levels.
        self._representatives: list[list[int]] = [list(range(len(base_values)))]
        previous_values: list[Hashable] = list(base_values)
        for depth, (level_name, mapping) in enumerate(level_maps.items(), 1):
            missing = [v for v in previous_values if v not in mapping]
            if missing:
                raise DomainError(
                    f"level {level_name!r} mapping is missing values "
                    f"{missing[:5]!r}"
                )
            parents: dict[Hashable, int] = {}
            for value in previous_values:
                parents.setdefault(mapping[value], len(parents))
            table = [
                parents[mapping[previous_values[self._tables[depth - 1][code]]]]
                for code in range(len(base_values))
            ]
            self._tables.append(table)
            representatives = [-1] * len(parents)
            for base_code, level_code in enumerate(table):
                if representatives[level_code] < 0:
                    representatives[level_code] = base_code
            self._representatives.append(representatives)
            levels.append(Level(level_name, depth, None, len(parents)))
            previous_values = list(parents)
            self.decode[depth] = previous_values
        levels.append(Level(ALL, len(levels), None, 1))
        super().__init__(name, levels)

    def map_value(self, value: int, from_level: str, to_level: str) -> int:
        src, dst = self.level(from_level), self.level(to_level)
        if src.depth > dst.depth:
            raise DomainError(
                f"cannot map {self.name}.{from_level} down to finer "
                f"level {to_level}"
            )
        if dst.is_all:
            return ALL_VALUE
        if src.depth == dst.depth:
            return value
        if src.depth != 0:
            # Intermediate-to-coarser mapping: every base value sharing
            # this code maps to the same coarser code (level maps are
            # functions of the level's values), so any representative
            # base stands in for the whole group.
            value = self._representatives[src.depth][value]
        return self._tables[dst.depth][value]

    def base_mapper(self, to_level: str):
        level = self.level(to_level)
        if level.is_all:
            return lambda _value: ALL_VALUE
        if level.depth == 0:
            return lambda value: value
        return self._tables[level.depth].__getitem__

    def base_mapper_array(self, to_level: str):
        import numpy as np

        level = self.level(to_level)
        if level.is_all:
            return lambda column: np.full(len(column), ALL_VALUE,
                                          dtype=np.int64)
        if level.depth == 0:
            return lambda column: column
        table = np.asarray(self._tables[level.depth], dtype=np.int64)
        return lambda column: table[column]


def temporal_hierarchy(
    name: str = "time", days: int = 20, base: str = "second"
) -> UniformHierarchy:
    """The paper's temporal hierarchy: second/minute/hour/day over *days*."""
    units = {"second": 1, "minute": 60, "hour": 3600, "day": 86400}
    if base not in units:
        raise DomainError(f"unknown temporal base level {base!r}")
    scale = units[base]
    level_units = {
        level: unit // scale for level, unit in units.items() if unit >= scale
    }
    return UniformHierarchy(name, level_units, base_cardinality=days * (86400 // scale))


def banded_hierarchy(
    name: str, base_cardinality: int = 256, fanout: int = 4, depth: int = 3
) -> UniformHierarchy:
    """The paper's integer-attribute hierarchy: fixed-fanout value bands.

    With the defaults this produces levels ``value`` (256 values),
    ``band1`` (64), ``band2`` (16) and ``band3`` (4) plus ``ALL`` --
    matching Section VI's four-level domains over ``[0, 255]``.
    """
    level_units = {"value": 1}
    for i in range(1, depth + 1):
        level_units[f"band{i}"] = fanout**i
    return UniformHierarchy(name, level_units, base_cardinality)
