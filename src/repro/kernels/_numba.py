"""Numba-compiled kernel implementations (the optional fast backend).

Importable only when ``numba`` is installed; :mod:`repro.kernels`
selects this table at import time and the ``--kernels`` tri-state knob
arbitrates.  Every loop folds left-to-right over the same sorted runs
as the NumPy reference in :mod:`repro.kernels._numpy`, so results are
bit-identical: integer reductions are exact in both, and float
accumulations visit values in the same order.
"""

from __future__ import annotations

import numpy as np
from numba import njit

_JIT = {"cache": True, "nogil": True}


@njit(**_JIT)
def _segment_sum(values, starts, out):  # pragma: no cover - compiled
    n = len(values)
    for i in range(len(starts)):
        stop = starts[i + 1] if i + 1 < len(starts) else n
        acc = values[starts[i]]
        for j in range(starts[i] + 1, stop):
            acc = acc + values[j]
        out[i] = acc


@njit(**_JIT)
def _segment_min(values, starts, out):  # pragma: no cover - compiled
    n = len(values)
    for i in range(len(starts)):
        stop = starts[i + 1] if i + 1 < len(starts) else n
        acc = values[starts[i]]
        for j in range(starts[i] + 1, stop):
            if values[j] < acc:
                acc = values[j]
        out[i] = acc


@njit(**_JIT)
def _segment_max(values, starts, out):  # pragma: no cover - compiled
    n = len(values)
    for i in range(len(starts)):
        stop = starts[i + 1] if i + 1 < len(starts) else n
        acc = values[starts[i]]
        for j in range(starts[i] + 1, stop):
            if values[j] > acc:
                acc = values[j]
        out[i] = acc


_SEGMENT = {"sum": _segment_sum, "min": _segment_min, "max": _segment_max}


def segment_reduce(
    values: np.ndarray, starts: np.ndarray, op: str
) -> np.ndarray:
    kernel = _SEGMENT.get(op)
    if kernel is None:
        raise ValueError(f"unknown segment reduction {op!r}")
    out = np.empty(len(starts), dtype=values.dtype)
    kernel(values, starts, out)
    return out


@njit(**_JIT)
def _row_boundaries(rows, out):  # pragma: no cover - compiled
    n, width = rows.shape
    if n:
        out[0] = True
    for i in range(1, n):
        flag = False
        for j in range(width):
            if rows[i, j] != rows[i - 1, j]:
                flag = True
                break
        out[i] = flag


def row_boundaries(sorted_rows: np.ndarray) -> np.ndarray:
    out = np.empty(len(sorted_rows), dtype=np.bool_)
    _row_boundaries(sorted_rows, out)
    return out


@njit(**_JIT)
def _window_bounds(positions, low, high, starts, stops):
    # pragma: no cover - compiled
    n = len(positions)
    lo = 0
    hi = 0
    for i in range(n):
        target_low = positions[i] + low
        target_high = positions[i] + high
        while lo < n and positions[lo] < target_low:
            lo += 1
        if hi < lo:
            hi = lo
        while hi < n and positions[hi] <= target_high:
            hi += 1
        starts[i] = lo
        stops[i] = hi


@njit(**_JIT)
def _window_sum(values, starts, stops, out):  # pragma: no cover - compiled
    for i in range(len(starts)):
        if starts[i] >= stops[i]:
            continue
        acc = values[starts[i]]
        for j in range(starts[i] + 1, stops[i]):
            acc = acc + values[j]
        out[i] = acc


@njit(**_JIT)
def _window_extreme(values, starts, stops, out, want_min):
    # pragma: no cover - compiled
    for i in range(len(starts)):
        if starts[i] >= stops[i]:
            continue
        acc = values[starts[i]]
        for j in range(starts[i] + 1, stops[i]):
            if (want_min and values[j] < acc) or (
                not want_min and values[j] > acc
            ):
                acc = values[j]
        out[i] = acc


def window_reduce(
    positions: np.ndarray,
    values: np.ndarray,
    low: int,
    high: int,
    op: str,
) -> tuple[np.ndarray, np.ndarray]:
    n = len(positions)
    starts = np.empty(n, dtype=np.int64)
    stops = np.empty(n, dtype=np.int64)
    _window_bounds(positions, low, high, starts, stops)
    mask = starts < stops
    if op == "count":
        return mask, (stops - starts).astype(np.int64)
    out = np.zeros(n, dtype=values.dtype)
    if op == "sum":
        _window_sum(values, starts, stops, out)
    elif op in ("min", "max"):
        _window_extreme(values, starts, stops, out, op == "min")
    else:
        raise ValueError(f"unknown window reduction {op!r}")
    return mask, out
