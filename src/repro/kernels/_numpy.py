"""Pure-NumPy kernel implementations (the default-install backend).

Every function here is the contract reference for
:mod:`repro.kernels._numba`: reductions fold left-to-right over sorted
runs (``np.ufunc.reduceat`` reduces sequentially, not pairwise), so the
compiled loops produce bit-identical results.
"""

from __future__ import annotations

import numpy as np

_REDUCEAT = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def segment_reduce(
    values: np.ndarray, starts: np.ndarray, op: str
) -> np.ndarray:
    ufunc = _REDUCEAT.get(op)
    if ufunc is None:
        raise ValueError(f"unknown segment reduction {op!r}")
    return ufunc.reduceat(values, starts)


def row_boundaries(sorted_rows: np.ndarray) -> np.ndarray:
    out = np.ones(len(sorted_rows), dtype=bool)
    if len(sorted_rows) > 1:
        np.any(
            sorted_rows[1:] != sorted_rows[:-1], axis=1, out=out[1:]
        )
    return out


def _window_bounds(
    positions: np.ndarray, low: int, high: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-anchor ``[start, stop)`` index ranges into sorted positions."""
    starts = np.searchsorted(positions, positions + low, side="left")
    stops = np.searchsorted(positions, positions + high, side="right")
    return starts, stops


def _sparse_table(values: np.ndarray, ufunc) -> list[np.ndarray]:
    """Doubling min/max table: level j reduces runs of length 2**j."""
    levels = [values]
    length = 1
    while length * 2 <= len(values):
        previous = levels[-1]
        levels.append(ufunc(previous[:-length], previous[length:]))
        length *= 2
    return levels


def window_reduce(
    positions: np.ndarray,
    values: np.ndarray,
    low: int,
    high: int,
    op: str,
) -> tuple[np.ndarray, np.ndarray]:
    starts, stops = _window_bounds(positions, low, high)
    mask = starts < stops
    if op == "count":
        return mask, (stops - starts).astype(np.int64)
    if op == "sum":
        prefix = np.zeros(len(values) + 1, dtype=values.dtype)
        np.cumsum(values, out=prefix[1:])
        return mask, prefix[stops] - prefix[starts]
    if op in ("min", "max"):
        ufunc = np.minimum if op == "min" else np.maximum
        table = _sparse_table(values, ufunc)
        lengths = np.maximum(stops - starts, 1)
        # floor(log2) is exact here: window lengths are far below 2**52.
        levels = np.floor(np.log2(lengths)).astype(np.int64)
        out = np.empty(len(starts), dtype=values.dtype)
        for level in np.unique(levels[mask]):
            span = 1 << int(level)
            rows = np.flatnonzero(mask & (levels == level))
            left = table[int(level)][starts[rows]]
            right = table[int(level)][stops[rows] - span]
            out[rows] = ufunc(left, right)
        return mask, out
    raise ValueError(f"unknown window reduction {op!r}")


def pack_rows(
    matrix: np.ndarray, split: int = 0
) -> tuple[np.ndarray, int] | None:
    if matrix.ndim != 2:
        raise ValueError("pack_rows expects a 2-D matrix")
    rows, cols = matrix.shape
    if not cols:
        return None
    if not rows:
        return np.zeros(0, dtype=np.int64), 0
    lows = matrix.min(axis=0).astype(np.int64)
    highs = matrix.max(axis=0).astype(np.int64)
    spans = highs - lows  # >= 0
    bits = [int(span).bit_length() for span in spans]
    if sum(bits) > 63:
        return None
    packed = np.zeros(rows, dtype=np.int64)
    low_bits = 0
    for index in range(cols):
        width = bits[index]
        packed <<= width
        if width:
            packed |= matrix[:, index].astype(np.int64) - lows[index]
        if split and index >= split:
            low_bits += width
    return packed, low_bits
