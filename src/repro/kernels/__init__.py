"""Compiled kernels for the hottest inner loops, with safe fallbacks.

The data plane's remaining interpreted hot spots -- the sort/scan
grouping sweep, the sibling-window sweep, and the early-aggregation
partial-state fold -- dispatch through this package.  Two backends
implement the same contract:

* :mod:`repro.kernels._numba` -- ``@njit``-compiled single-pass loops,
  available only when the optional ``numba`` extra is installed;
* :mod:`repro.kernels._numpy` -- pure-NumPy ufunc implementations that
  ship with the default install.

The backend is selected **at import time**: if ``numba`` imports, the
compiled table becomes eligible; otherwise the NumPy table is the only
one.  Both produce bit-identical results -- every reduction folds
left-to-right over the same sorted runs, so integer aggregates are
exact in both and float accumulations round identically.  The test
suite asserts this equivalence wherever both backends are installed.

A process-wide tri-state knob (mirroring ``--columnar``) picks between
them:

``auto``
    use the compiled backend when numba is installed, NumPy otherwise
    (the default -- a plain install behaves exactly as before);
``on``
    require the compiled backend; raises
    :class:`KernelsUnavailableError` when numba is missing;
``off``
    force the NumPy fallback even when numba is installed.

Callers never look at the mode: they call the dispatching functions
(:func:`segment_sum`, :func:`window_reduce`, ...) exported here, and the
active table is consulted per call.  Worker processes receive the
driver's mode through their init args so a forced mode crosses process
boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import _numpy as _numpy_backend

#: Valid values of the tri-state knob.
KERNEL_MODES = ("auto", "on", "off")


class KernelsUnavailableError(RuntimeError):
    """``kernels='on'`` was requested but the numba backend is missing."""


try:  # backend selection happens here, at import time
    from repro.kernels import _numba as _numba_backend

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on numba-free installs
    _numba_backend = None
    NUMBA_AVAILABLE = False

#: Process-wide tri-state mode; see :func:`set_kernels_mode`.
_MODE = "auto"


def set_kernels_mode(mode: str | None) -> str:
    """Set the process-wide kernels mode; returns the mode installed.

    ``None`` is accepted as ``"auto"`` so config plumbing can pass
    optional knobs through unchanged.  ``"on"`` validates that the
    compiled backend actually imported.
    """
    global _MODE
    if mode is None:
        mode = "auto"
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernels mode {mode!r}; choose one of {KERNEL_MODES}"
        )
    if mode == "on" and not NUMBA_AVAILABLE:
        raise KernelsUnavailableError(
            "kernels='on' requires the optional numba backend "
            "(pip install numba); install it or use 'auto'/'off'"
        )
    _MODE = mode
    return _MODE


def kernels_mode() -> str:
    """The current tri-state mode (``auto``/``on``/``off``)."""
    return _MODE


def kernels_backend() -> str:
    """Name of the backend the current mode resolves to."""
    if _MODE == "off" or not NUMBA_AVAILABLE:
        return "numpy"
    return "numba"


def _table():
    if _MODE != "off" and NUMBA_AVAILABLE:
        return _numba_backend
    return _numpy_backend


# -- dispatching entry points ------------------------------------------------
#
# All functions take already-sorted inputs ("starts" mark run starts in
# the sorted stream) and are bit-identical across backends.


def segment_reduce(
    values: np.ndarray, starts: np.ndarray, op: str
) -> np.ndarray:
    """Reduce each ``[starts[i], starts[i+1])`` run of sorted *values*.

    *op* is one of ``sum``/``min``/``max``; the reduction folds
    left-to-right so integer results are exact and float results round
    identically in every backend.
    """
    if not len(starts):
        return np.empty(0, dtype=values.dtype)
    return _table().segment_reduce(values, starts, op)


def segment_counts(starts: np.ndarray, total: int) -> np.ndarray:
    """Run lengths for runs starting at *starts* in a stream of *total*."""
    if not len(starts):
        return np.empty(0, dtype=np.int64)
    return np.diff(np.append(starts, total))


def row_boundaries(sorted_rows: np.ndarray) -> np.ndarray:
    """Boundary mask over lexicographically sorted matrix rows.

    ``out[i]`` is True when row *i* differs from row ``i-1`` (row 0 is
    always a boundary) -- the grouping primitive of the sort/scan sweep.
    """
    if sorted_rows.ndim == 1:
        sorted_rows = sorted_rows[:, None]
    if not len(sorted_rows):
        return np.empty(0, dtype=bool)
    return _table().row_boundaries(np.ascontiguousarray(sorted_rows))


def window_reduce(
    positions: np.ndarray,
    values: np.ndarray,
    low: int,
    high: int,
    op: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding sibling-window reduction over sorted integer *positions*.

    For every anchor position ``t`` aggregates the values whose position
    lies in ``[t+low, t+high]``.  Returns ``(mask, out)`` where *mask*
    flags anchors with a non-empty window and *out* holds their
    aggregated values (entries of *out* outside the mask are
    meaningless).  *op* is ``sum``/``count``/``min``/``max``; ``avg`` is
    built by callers from ``sum`` and ``count`` so the division matches
    the scalar path exactly.
    """
    if not len(positions):
        empty = np.empty(0, dtype=values.dtype)
        return np.empty(0, dtype=bool), empty
    return _table().window_reduce(positions, values, int(low), int(high), op)


def pack_rows(
    matrix: np.ndarray, split: int = 0
) -> tuple[np.ndarray, int] | None:
    """Bit-pack matrix rows into single int64 keys, when they fit.

    Packs each row's columns (leading columns into the high bits) into
    one non-negative int64 so a single stable ``argsort`` replaces a
    k-column lexsort and run detection becomes a 1-D ``diff``.  Returns
    ``(packed, low_bits)`` where ``packed >> low_bits`` recovers a key
    of the first *split* columns alone (``low_bits`` is 0 when *split*
    is 0 or covers every column), or ``None`` when the value ranges
    cannot fit in 63 bits -- callers then fall back to ``np.lexsort``.
    Shared by both backends: packing is pure NumPy either way.
    """
    return _numpy_backend.pack_rows(matrix, split)
