"""The shared batch executor: one job per share group, cache in front.

:class:`BatchEvaluator` runs a :class:`~repro.serving.planner.BatchPlan`
over one dataset:

* ``cache`` components load their tables straight from the measure
  cache -- no job, no shuffle;
* ``derive`` components recompute composites centrally from cached
  basic tables (the exact tables a parallel run would produce, so the
  derivation is bit-identical) -- no shuffle;
* each share group of ``execute`` components runs as ONE map/shuffle/
  reduce over the merged workflow, then the merged output is split back
  into per-query tables by the ``query/`` name prefix.

Per-query answers are bit-identical to standalone runs: a share group
evaluates under a key feasible for every member (Theorems 1-2), each
block evaluates over the same globally-ordered record subsequence a
solo run would see, and filtering happens per measure region -- the
shared job changes *where* work happens, never its inputs or fold
order.

Fault semantics: a group's cache entries are stored immediately after
that group succeeds, and a failing group is retried ``group_retries``
times in-line; if it still fails the remaining groups run anyway and a
:class:`BatchExecutionError` carrying the partial result is raised.
Completed groups' cache entries are never invalidated by another
group's failure, so re-running the batch against a warm cache resumes
where it left off.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.cube.records import Record
from repro.local.measure_table import MeasureTable, ResultSet
from repro.local.sortscan import BlockEvaluator
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.dfs import DistributedFile
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.tracectx import NULL_QUERY_TRACER
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.optimizer import QueryPlan
from repro.parallel.executor import ExecutionConfig, ParallelEvaluator
from repro.parallel.report import ParallelResult
from repro.query.workflow import Workflow
from repro.serving.cache import CacheStats, MeasureCache
from repro.serving.groups import QUERY_SEPARATOR, ShareGroup
from repro.serving.planner import (
    DISPOSITION_CACHE,
    DISPOSITION_DERIVE,
    BatchPlan,
    BatchPlanner,
    ComponentPlan,
)

__all__ = [
    "BatchEvaluator",
    "BatchExecutionError",
    "BatchResult",
    "GroupOutcome",
]

logger = logging.getLogger(__name__)


class BatchExecutionError(RuntimeError):
    """A share group kept failing after its retries.

    Carries the :class:`BatchResult` of everything that *did* complete
    (``partial``); completed groups' cache entries are already stored,
    so a re-run against the same cache resumes from them.
    """

    def __init__(self, message: str, partial: "BatchResult | None" = None):
        super().__init__(message)
        self.partial = partial


@dataclass
class GroupOutcome:
    """One share group's execution record."""

    group: ShareGroup
    #: The shared job's result (``None`` when the group failed).
    result: Optional[ParallelResult]
    attempts: int = 1
    error: str = ""

    @property
    def succeeded(self) -> bool:
        return self.result is not None


@dataclass
class BatchResult:
    """Everything one batch run produced."""

    #: Per-query answers under their original measure names.
    results: dict[str, ResultSet]
    plan: BatchPlan
    groups: list[GroupOutcome] = field(default_factory=list)
    #: Cache traffic of this run (hits/misses/stores), or ``None``.
    cache_stats: Optional[CacheStats] = None
    #: Queries answered without any job (all components cached/derived).
    jobless_queries: list[str] = field(default_factory=list)

    @property
    def jobs(self) -> list[ParallelResult]:
        return [o.result for o in self.groups if o.result is not None]

    @property
    def resumed_components(self) -> int:
        """Components answered from the cache instead of re-executing.

        After a mid-batch failure, a warm re-run classifies every
        completed group's components as ``cache``/``derive`` -- this is
        the count of work units the resume skipped.
        """
        return sum(
            1
            for planned in self.plan.queries
            for component in planned.components
            if component.disposition in (
                DISPOSITION_CACHE, DISPOSITION_DERIVE
            )
        )

    @property
    def total_response_time(self) -> float:
        return sum(job.job.response_time for job in self.jobs)

    @property
    def total_map_time(self) -> float:
        return sum(job.job.map_makespan for job in self.jobs)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(job.job.counters.shuffle_bytes for job in self.jobs)

    def describe(self) -> str:
        lines = [
            f"batch: {len(self.results)} queries answered by "
            f"{len(self.jobs)} shared jobs "
            f"(response time {self.total_response_time:.2f}, "
            f"shuffle bytes {self.total_shuffle_bytes})",
        ]
        for index, outcome in enumerate(self.groups):
            status = (
                f"ok after {outcome.attempts} attempt(s)"
                if outcome.succeeded
                else f"FAILED: {outcome.error}"
            )
            lines.append(
                f"  group {index} "
                f"[{', '.join(outcome.group.queries)}]: {status}"
            )
        if self.cache_stats is not None:
            lines.append(f"  cache: {self.cache_stats.to_dict()}")
        return "\n".join(lines)


class BatchEvaluator:
    """Co-evaluates a batch of queries on one simulated cluster.

    Wraps a :class:`~repro.parallel.executor.ParallelEvaluator` for the
    shared jobs.  *cache* enables the cross-run measure cache;
    *group_retries* bounds in-line retries per failing group (on top of
    the engine's own task-level fault tolerance).
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExecutionConfig | None = None,
        tracer=None,
        metrics=None,
        cache: MeasureCache | None = None,
        group_retries: int = 1,
        telemetry=None,
        query_tracer=None,
    ):
        config = config or ExecutionConfig()
        if config.early_aggregation:
            raise ValueError(
                "batch evaluation requires early_aggregation=False: "
                "partial-state merging can reorder float folds, which "
                "would break the bit-identical-to-standalone guarantee"
            )
        self.cluster = cluster
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        #: Per-query trace roots + share-group execution spans (the
        #: batch-mode mirror of the daemon's trace plane).
        self.query_tracer = (
            query_tracer if query_tracer is not None else NULL_QUERY_TRACER
        )
        self.inner = ParallelEvaluator(
            cluster, config, tracer=tracer, metrics=metrics,
            telemetry=telemetry,
        )
        self.cache = cache
        if cache is not None:
            cache.attach_telemetry(self.telemetry)
        self.group_retries = group_retries

    # -- planning ---------------------------------------------------------

    def plan(
        self,
        queries: Mapping[str, Workflow],
        data: Sequence[Record] | DistributedFile,
    ) -> BatchPlan:
        """Plan the batch without running it (``repro explain --batch``)."""
        num_reducers = self.config.num_reducers or self.cluster.reduce_slots
        planner = BatchPlanner(self.inner.optimizer, self.cache)
        return planner.plan(queries, data, num_reducers)

    # -- execution --------------------------------------------------------

    def evaluate(
        self,
        queries: Mapping[str, Workflow],
        data: Sequence[Record] | DistributedFile,
        plan: BatchPlan | None = None,
    ) -> BatchResult:
        """Run the batch; per-query answers match their standalone runs.

        Raises :class:`BatchExecutionError` (with the partial result
        attached) if any share group still fails after its retries; all
        other groups run to completion first.
        """
        contexts: dict = {}
        trace_started = 0.0
        if self.query_tracer.enabled:
            trace_started = self.query_tracer.now()
            contexts = {
                name: self.query_tracer.mint(name) for name in queries
            }
        with self.tracer.span("evaluate-batch", queries=len(queries)):
            input_file = self._resolve_input(data)
            if plan is None:
                plan = self.plan(queries, input_file)

            stats_before = (
                self.cache.stats.snapshot()
                if self.cache is not None
                else None
            )
            tables: dict[str, dict[str, MeasureTable]] = {
                name: {} for name in queries
            }
            jobless: list[str] = []

            # Cached / derived components first: no jobs, no shuffle.
            for planned in plan.queries:
                for component in planned.components:
                    if component.disposition == DISPOSITION_CACHE:
                        self._load_cached(component, input_file, tables)
                    elif component.disposition == DISPOSITION_DERIVE:
                        self._derive(component, input_file, tables)
                if planned.fully_cached and planned.components:
                    jobless.append(planned.name)

            unit_components = {
                id(component.unit): component
                for planned in plan.queries
                for component in planned.components
                if component.unit is not None
            }
            self.telemetry.phase("batch-groups", 0, len(plan.groups))
            outcomes = []
            for index, group in enumerate(plan.groups):
                outcomes.append(
                    self._run_group(
                        index, group, input_file, tables,
                        unit_components, contexts,
                    )
                )
                self.telemetry.phase(
                    "batch-groups", index + 1, len(plan.groups)
                )

            failures = [o for o in outcomes if not o.succeeded]
            results = {
                name: ResultSet(
                    {
                        measure: tables[name][measure]
                        for measure in workflow.names
                        if measure in tables[name]
                    }
                )
                for name, workflow in queries.items()
            }
            batch_result = BatchResult(
                results=results,
                plan=plan,
                groups=outcomes,
                cache_stats=self._stats_delta(stats_before),
                jobless_queries=jobless,
            )
            if contexts:
                failed = {
                    query
                    for outcome in failures
                    for query in outcome.group.queries
                }
                end = self.query_tracer.now()
                for name, ctx in contexts.items():
                    self.query_tracer.close(
                        ctx, name, trace_started, end,
                        status="error" if name in failed else "ok",
                        jobless=name in jobless,
                    )
        if failures:
            names = [
                ", ".join(outcome.group.queries) for outcome in failures
            ]
            raise BatchExecutionError(
                f"{len(failures)} share group(s) failed after "
                f"{self.group_retries + 1} attempt(s): "
                f"[{'; '.join(names)}] -- completed groups' results and "
                "cache entries are preserved; re-run to resume",
                partial=batch_result,
            )
        return batch_result

    # -- dispositions -----------------------------------------------------

    def _load_cached(
        self,
        component: ComponentPlan,
        input_file: DistributedFile,
        tables: dict[str, dict[str, MeasureTable]],
    ) -> None:
        """Serve a fully cached component; fall back to a solo job if an
        entry vanished or went corrupt between planning and execution."""
        assert self.cache is not None
        loaded: dict[str, MeasureTable] = {}
        for measure in component.workflow.measures:
            table = self.cache.get(
                component.keys[measure.name], measure.granularity
            )
            if table is None:
                logger.warning(
                    "cache entry for %s/%s disappeared; re-executing "
                    "component",
                    component.query,
                    measure.name,
                )
                self._execute_solo(component, input_file, tables)
                return
            loaded[measure.name] = table
        tables[component.query].update(loaded)

    def _derive(
        self,
        component: ComponentPlan,
        input_file: DistributedFile,
        tables: dict[str, dict[str, MeasureTable]],
    ) -> None:
        """Recompute composites centrally from cached basic tables.

        Cached basics equal the exact centralized tables (the parallel
        invariant), and composite operators are deterministic functions
        of their source tables, so derivation is bit-identical to a
        full run.  Newly derived composites are stored back."""
        assert self.cache is not None
        basic_tables: dict[str, MeasureTable] = {}
        for measure in component.workflow.basic_measures():
            table = self.cache.get(
                component.keys[measure.name], measure.granularity
            )
            if table is None:
                logger.warning(
                    "cached basics for %s:%s disappeared; re-executing",
                    component.query,
                    list(component.names),
                )
                self._execute_solo(component, input_file, tables)
                return
            basic_tables[measure.name] = table
        result = BlockEvaluator(
            component.workflow, tracer=self.tracer
        ).evaluate(basic_tables=basic_tables)
        tables[component.query].update(result.tables)
        for measure in component.workflow.composite_measures():
            self.cache.put(
                component.keys[measure.name],
                result.tables[measure.name],
                measure_name=f"{component.query}/{measure.name}",
            )

    def _execute_solo(
        self,
        component: ComponentPlan,
        input_file: DistributedFile,
        tables: dict[str, dict[str, MeasureTable]],
    ) -> None:
        """Degradation path: run one component as its own job."""
        outcome = self.inner.evaluate(component.workflow, input_file)
        tables[component.query].update(outcome.result.tables)
        self._store_component(component, tables[component.query])

    # -- shared jobs ------------------------------------------------------

    def _run_group(
        self,
        index: int,
        group: ShareGroup,
        input_file: DistributedFile,
        tables: dict[str, dict[str, MeasureTable]],
        unit_components: dict[int, ComponentPlan],
        contexts: dict | None = None,
    ) -> GroupOutcome:
        # One execution span per share group: it lives in the primary
        # member's trace and links to the other members' roots, so
        # every member's reconstructed tree includes the shared job.
        member_ctxs = [
            (contexts or {})[query]
            for query in group.queries
            if query in (contexts or {})
        ]
        exec_ctx = None
        exec_start = 0.0
        if member_ctxs:
            exec_ctx = self.query_tracer.fork(
                member_ctxs[0],
                links=[
                    (ctx.trace_id, ctx.span_id)
                    for ctx in member_ctxs[1:]
                ],
            )
            exec_start = self.query_tracer.now()
        attempts = 0
        last_error = ""
        while attempts <= self.group_retries:
            attempts += 1
            try:
                with self.tracer.span(
                    "batch-group", index=index, attempt=attempts,
                    queries=",".join(group.queries),
                ):
                    outcome = self.inner.evaluate(
                        group.workflow,
                        input_file,
                        plan=QueryPlan([(group.workflow, group.plan)]),
                    )
            except Exception as exc:  # noqa: BLE001 - group-level retry
                last_error = f"{type(exc).__name__}: {exc}"
                logger.warning(
                    "share group %d attempt %d failed: %s",
                    index, attempts, last_error,
                )
                if exec_ctx is not None:
                    self.query_tracer.event(
                        exec_ctx, "group-retry",
                        attempt=attempts, error=last_error,
                    )
                continue
            self._split_group_result(
                group, outcome, tables, unit_components
            )
            if exec_ctx is not None:
                self.query_tracer.close(
                    exec_ctx, "execute", exec_start,
                    self.query_tracer.now(),
                    queries=",".join(group.queries),
                    group=index, attempts=attempts,
                )
            return GroupOutcome(group, outcome, attempts)
        if exec_ctx is not None:
            self.query_tracer.close(
                exec_ctx, "execute", exec_start,
                self.query_tracer.now(),
                queries=",".join(group.queries),
                group=index, attempts=attempts, error=last_error,
            )
        return GroupOutcome(group, None, attempts, error=last_error)

    def _split_group_result(
        self,
        group: ShareGroup,
        outcome: ParallelResult,
        tables: dict[str, dict[str, MeasureTable]],
        unit_components: dict[int, ComponentPlan],
    ) -> None:
        """Route merged ``query/measure`` tables back to their queries."""
        counters = outcome.job.counters
        for name, table in outcome.result.items():
            query, _, original = name.partition(QUERY_SEPARATOR)
            tables[query][original] = table
            counters.extra[f"batch.rows.{query}"] += len(table)
            counters.extra[f"batch.measures.{query}"] += 1
        # Store this group's entries NOW: a later group's failure must
        # not cost us what already completed.
        for unit in group.units:
            component = unit_components.get(id(unit))
            if component is not None:
                self._store_component(component, tables[unit.query])

    def _store_component(self, component: ComponentPlan, query_tables) -> None:
        if self.cache is None or not component.keys:
            return
        for measure in component.workflow.measures:
            self.cache.put(
                component.keys[measure.name],
                query_tables[measure.name],
                measure_name=f"{component.query}/{measure.name}",
            )

    # -- helpers ----------------------------------------------------------

    def _resolve_input(
        self, data: Sequence[Record] | DistributedFile
    ) -> DistributedFile:
        if isinstance(data, DistributedFile):
            return data
        return self.cluster.dfs.write("batch-input", list(data))

    def _stats_delta(
        self, before: CacheStats | None
    ) -> Optional[CacheStats]:
        if self.cache is None or before is None:
            return None
        now = self.cache.stats
        return CacheStats(
            hits=now.hits - before.hits,
            misses=now.misses - before.misses,
            stores=now.stores - before.stores,
            corrupt=now.corrupt - before.corrupt,
            store_errors=now.store_errors - before.store_errors,
            evictions=now.evictions - before.evictions,
        )
