"""The batch planner: cache pruning + share-group formation.

Given N parsed queries over one dataset, :class:`BatchPlanner` produces
a :class:`BatchPlan` in two stages:

1. **Cache pruning.**  Each query splits into weakly connected
   components, and each component is classified against the measure
   cache *before* any key derivation: ``cache`` (every measure's table
   is already materialized for this dataset fingerprint -- no job at
   all), ``derive`` (every basic measure is cached and the composites
   can be recomputed centrally from those exact tables -- no shuffle),
   or ``execute`` (at least one basic measure must be computed from raw
   records).  Only ``execute`` components reach the optimizer.

2. **Share-group formation.**  The surviving components become
   :class:`~repro.serving.groups.BatchUnit`\\ s (measure names prefixed
   by their query) and :func:`~repro.serving.groups.form_share_groups`
   partitions them into share groups under the Formula 2/4 cost model.
   Each group runs as ONE map/shuffle/reduce.

The resulting plan carries the full decision trail (dispositions and
every considered merge) for ``repro explain --batch``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.cube.records import Record
from repro.mapreduce.dfs import DistributedFile
from repro.optimizer.optimizer import Optimizer
from repro.query.measures import Relationship, WorkflowError
from repro.query.workflow import Workflow, connected_components
from repro.serving.cache import MeasureCache
from repro.serving.groups import (
    QUERY_SEPARATOR,
    BatchDecision,
    BatchUnit,
    ShareGroup,
    form_share_groups,
    prefix_workflow,
)
from repro.serving.signature import cache_key, dataset_fingerprint

__all__ = ["BatchPlan", "BatchPlanner", "ComponentPlan", "PlannedQuery"]

#: Component dispositions, in decreasing order of luck.
DISPOSITION_CACHE = "cache"
DISPOSITION_DERIVE = "derive"
DISPOSITION_EXECUTE = "execute"


@dataclass
class ComponentPlan:
    """What the batch does with one query component."""

    query: str
    #: The component with its original (unprefixed) measure names.
    workflow: Workflow
    disposition: str
    #: ``measure name -> cache key`` (empty when no cache is attached).
    keys: dict[str, str] = field(default_factory=dict)
    #: The schedulable unit, for ``execute`` components only.
    unit: Optional[BatchUnit] = None
    reason: str = ""

    @property
    def names(self) -> tuple[str, ...]:
        return self.workflow.names

    def describe(self) -> str:
        return (
            f"{self.query}:{list(self.names)} -> {self.disposition}"
            + (f" ({self.reason})" if self.reason else "")
        )


@dataclass
class PlannedQuery:
    """One query of the batch: its workflow and component dispositions."""

    name: str
    workflow: Workflow
    components: list[ComponentPlan]

    @property
    def fully_cached(self) -> bool:
        return all(
            c.disposition == DISPOSITION_CACHE for c in self.components
        )


@dataclass
class BatchPlan:
    """The executable plan for a whole batch of queries."""

    queries: list[PlannedQuery]
    #: Share groups over the ``execute`` components; each runs one job.
    groups: list[ShareGroup]
    #: The formation trail for ``repro explain --batch``.
    decision: BatchDecision
    #: Dataset fingerprint the cache keys are bound to ("" = no cache).
    fingerprint: str
    n_records: int
    num_reducers: int

    def components(self) -> list[ComponentPlan]:
        return [c for q in self.queries for c in q.components]

    def disposition_counts(self) -> dict[str, int]:
        counts = {
            DISPOSITION_CACHE: 0,
            DISPOSITION_DERIVE: 0,
            DISPOSITION_EXECUTE: 0,
        }
        for component in self.components():
            counts[component.disposition] += 1
        return counts

    def to_dict(self) -> dict:
        return {
            "n_records": self.n_records,
            "num_reducers": self.num_reducers,
            "fingerprint": self.fingerprint,
            "queries": [
                {
                    "name": q.name,
                    "components": [
                        {
                            "measures": list(c.names),
                            "disposition": c.disposition,
                            "reason": c.reason,
                        }
                        for c in q.components
                    ],
                }
                for q in self.queries
            ],
            "groups": [
                {
                    "members": [
                        {"query": query, "measures": measures}
                        for query, measures in group.members()
                    ],
                    "key": repr(group.plan.scheme.key),
                    "predicted_max_load": group.plan.predicted_max_load,
                }
                for group in self.groups
            ],
            "decision": self.decision.to_dict(),
        }

    def describe(self) -> str:
        """The full human-readable plan, used by ``repro explain --batch``."""
        counts = self.disposition_counts()
        lines = [
            f"batch plan: {len(self.queries)} queries, "
            f"{len(self.groups)} shared jobs "
            f"(components: {counts['execute']} execute, "
            f"{counts['derive']} derive, {counts['cache']} cached)",
        ]
        for planned in self.queries:
            for component in planned.components:
                lines.append(f"  {component.describe()}")
        lines.append(self.decision.describe())
        return "\n".join(lines)


def _derivable(component: Workflow) -> bool:
    """Whether composites can be recomputed from cached basic tables.

    Mirrors the early-aggregation anchoring rule: a composite whose
    edges are all parent/child (ALIGN) has no raw records to anchor its
    regions, so it needs a basic measure at a finer granularity in the
    same component.
    """
    basics = component.basic_measures()
    for measure in component.composite_measures():
        if all(
            edge.relationship is Relationship.ALIGN
            for edge in measure.inputs
        ) and not any(
            measure.granularity.is_generalization_of(basic.granularity)
            for basic in basics
        ):
            return False
    return True


class BatchPlanner:
    """Plans a batch of queries against one dataset.

    *optimizer* prices candidate keys and merged groups; *cache* (when
    given) is probed -- via stat-free :meth:`MeasureCache.contains` --
    to prune already-materialized components before key derivation.
    """

    def __init__(
        self,
        optimizer: Optimizer | None = None,
        cache: MeasureCache | None = None,
    ):
        self.optimizer = optimizer if optimizer is not None else Optimizer()
        self.cache = cache

    def plan(
        self,
        queries: Mapping[str, Workflow],
        data: Sequence[Record] | DistributedFile,
        num_reducers: int,
        fingerprint: str | None = None,
    ) -> BatchPlan:
        """Classify components, form share groups, return the plan.

        *fingerprint* short-circuits the dataset hash for callers that
        already maintain it (the daemon's incrementally-updated
        :class:`~repro.serving.signature.DatasetHasher`, or an append
        flow that just computed it); it must equal
        ``dataset_fingerprint(data, schema)`` or cache keys will miss.
        """
        schema = None
        for name, workflow in queries.items():
            if QUERY_SEPARATOR in name:
                raise WorkflowError(
                    f"query name {name!r} must not contain "
                    f"{QUERY_SEPARATOR!r}"
                )
            if schema is None:
                schema = workflow.schema
            elif workflow.schema != schema:
                raise WorkflowError(
                    f"query {name!r} uses a different schema; a batch "
                    "must share one dataset"
                )

        if isinstance(data, DistributedFile):
            n_records = data.num_records
        else:
            data = list(data)
            n_records = len(data)

        if fingerprint is None:
            fingerprint = ""
            if self.cache is not None and schema is not None:
                fingerprint = dataset_fingerprint(data, schema)

        planned: list[PlannedQuery] = []
        units: list[BatchUnit] = []
        pruning_notes: list[str] = []
        for name, workflow in queries.items():
            components: list[ComponentPlan] = []
            for component in connected_components(workflow):
                component_plan = self._classify(name, component, fingerprint)
                if component_plan.disposition == DISPOSITION_EXECUTE:
                    prefixed = prefix_workflow(
                        component, name + QUERY_SEPARATOR
                    )
                    solo = self.optimizer.plan(
                        prefixed, n_records, num_reducers
                    )
                    component_plan.unit = BatchUnit(name, prefixed, solo)
                    units.append(component_plan.unit)
                else:
                    pruning_notes.append(
                        f"pruned before key derivation: "
                        f"{component_plan.describe()}"
                    )
                components.append(component_plan)
            planned.append(PlannedQuery(name, workflow, components))

        groups, decision = form_share_groups(
            units, self.optimizer, n_records, num_reducers
        )
        decision.notes[:0] = pruning_notes
        return BatchPlan(
            queries=planned,
            groups=groups,
            decision=decision,
            fingerprint=fingerprint,
            n_records=n_records,
            num_reducers=num_reducers,
        )

    def _classify(
        self, query: str, component: Workflow, fingerprint: str
    ) -> ComponentPlan:
        """Disposition of one component against the cache."""
        if self.cache is None:
            return ComponentPlan(
                query, component, DISPOSITION_EXECUTE,
                reason="no cache attached",
            )
        keys = {
            measure.name: cache_key(fingerprint, measure)
            for measure in component.measures
        }
        cached = {
            name for name, key in keys.items() if self.cache.contains(key)
        }
        if cached == set(keys):
            return ComponentPlan(
                query, component, DISPOSITION_CACHE, keys,
                reason="all measures cached",
            )
        basics = {m.name for m in component.basic_measures()}
        if basics and basics <= cached and _derivable(component):
            return ComponentPlan(
                query, component, DISPOSITION_DERIVE, keys,
                reason="all basic measures cached; composites derivable",
            )
        missing = sorted(set(keys) - cached)
        return ComponentPlan(
            query, component, DISPOSITION_EXECUTE, keys,
            reason=f"uncached: {missing}" if cached else "nothing cached",
        )
