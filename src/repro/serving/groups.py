"""Share-group formation: which queries can ride one shuffle.

Theorems 1-2 compose across queries: ``opCombine`` over several
workflows' minimal feasible keys yields one key feasible for *all* of
them, so a single overlapping redistribution can serve every member --
each record is shipped once for the whole group instead of once per
query.  Whether that is *worth it* is a cost question: the combined key
is generally coarser (or carries a wider range annotation), so the
Formula 2/4 model arbitrates by comparing the merged plan's predicted
max reducer load against the sum of the members' separate loads (loads
add when jobs share the same reducers, exactly as
:attr:`~repro.optimizer.optimizer.QueryPlan.predicted_max_load` sums
over components).

:func:`form_share_groups` runs a greedy agglomerative merge over the
batch's units -- one unit per (query, connected component) -- always
taking the pair whose merge reduces the predicted load the most, until
no merge helps.  Every pair ever considered is recorded in a
:class:`BatchDecision` with its loads and verdict, which is what
``repro explain --batch`` renders: why queries did or did not share.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.distribution.keys import DistributionError
from repro.optimizer.optimizer import Optimizer, Plan
from repro.query.measures import WorkflowError
from repro.query.workflow import Workflow

__all__ = [
    "BatchDecision",
    "BatchUnit",
    "MergeDecision",
    "ShareGroup",
    "form_share_groups",
    "prefix_workflow",
]

#: Separator between the query name and the measure name in a merged
#: workflow (query names must not contain it).
QUERY_SEPARATOR = "/"


def prefix_workflow(workflow: Workflow, prefix: str) -> Workflow:
    """A copy of *workflow* with every measure renamed ``prefix + name``.

    Rebuilds the measure DAG in topological order so edges point at the
    renamed sources; structure, granularities and functions are
    untouched.  Used to merge several queries' measures into one
    workflow without name collisions.
    """
    renamed: dict[str, object] = {}
    for measure in workflow.topological_order():
        inputs = tuple(
            dataclasses.replace(edge, source=renamed[edge.source.name])
            for edge in measure.inputs
        )
        renamed[measure.name] = dataclasses.replace(
            measure, name=prefix + measure.name, inputs=inputs
        )
    return Workflow(
        workflow.schema, [renamed[m.name] for m in workflow.measures]
    )


@dataclass
class BatchUnit:
    """One schedulable unit: a single query's connected component.

    Measure names are already prefixed with ``query + "/"`` so units
    from different queries can merge into one workflow.
    """

    query: str
    component: Workflow
    #: The unit's own best plan (what it would cost unshared).
    plan: Plan

    @property
    def measures(self) -> list[str]:
        """Original (unprefixed) measure names of this unit."""
        prefix = self.query + QUERY_SEPARATOR
        return [name[len(prefix):] for name in self.component.names]

    def describe(self) -> str:
        return f"{self.query}:{self.measures}"


@dataclass
class ShareGroup:
    """A set of units co-evaluated under one distribution scheme."""

    units: list[BatchUnit]
    #: All member measures as one (possibly multi-component) workflow.
    workflow: Workflow
    #: The shared plan: one key, one clustering factor, one shuffle.
    plan: Plan

    @property
    def queries(self) -> list[str]:
        """Member query names, deduplicated, in first-seen order."""
        seen: list[str] = []
        for unit in self.units:
            if unit.query not in seen:
                seen.append(unit.query)
        return seen

    def members(self) -> list[tuple[str, list[str]]]:
        """``(query, [measure, ...])`` pairs, one per unit."""
        return [(unit.query, unit.measures) for unit in self.units]

    def describe(self) -> str:
        names = ", ".join(unit.describe() for unit in self.units)
        return f"[{names}] under {self.plan.describe()}"


@dataclass
class MergeDecision:
    """One considered merge of two groups, and its verdict."""

    round: int
    left: list[str]
    right: list[str]
    #: Sum of the two groups' separate predicted max loads.
    separate_load: float
    #: The merged plan's predicted max load (``None`` if infeasible).
    merged_load: Optional[float]
    merged_key: Optional[str]
    #: Whether this merge was the one applied in its round.
    merged: bool
    reason: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class BatchDecision:
    """The full trail of share-group formation for one batch."""

    considered: list[MergeDecision] = field(default_factory=list)
    #: Final groups: ``(member descriptions, plan description)``.
    groups: list[tuple[list[str], str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "considered": [d.to_dict() for d in self.considered],
            "groups": [
                {"members": members, "plan": plan}
                for members, plan in self.groups
            ],
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        """The human rendering behind ``repro explain --batch``."""
        lines = ["share-group formation:"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        current_round = None
        for decision in self.considered:
            if decision.round != current_round:
                current_round = decision.round
                lines.append(f"  round {current_round}:")
            left = "+".join(decision.left)
            right = "+".join(decision.right)
            verdict = "MERGED" if decision.merged else "kept apart"
            lines.append(
                f"    {left}  x  {right}: {verdict} -- {decision.reason}"
            )
        lines.append(f"final groups ({len(self.groups)}):")
        for index, (members, plan) in enumerate(self.groups):
            lines.append(f"  group {index}: {', '.join(members)}")
            lines.append(f"    {plan}")
        return "\n".join(lines)


def form_share_groups(
    units: list[BatchUnit],
    optimizer: Optimizer,
    n_records: int,
    num_reducers: int,
) -> tuple[list[ShareGroup], BatchDecision]:
    """Partition *units* into share groups by greedy load-model merging.

    Starts with one group per unit (each under its own solo plan) and
    repeatedly merges the pair with the largest predicted-load saving;
    a pair merges only when the shared plan's predicted max load is
    strictly below the sum of the separate loads.  Feasibility failures
    (e.g. no common annotated key) are recorded and treated as
    non-merges, so the result is always a valid partition.
    """
    decision = BatchDecision()
    groups = [
        ShareGroup([unit], unit.component, unit.plan) for unit in units
    ]
    if len(groups) <= 1:
        if not groups:
            decision.notes.append("empty batch: nothing to group")
        decision.groups = [
            ([u.describe() for u in g.units], g.plan.describe())
            for g in groups
        ]
        return groups, decision

    merged_cache: dict[frozenset, tuple] = {}

    def plan_merged(a: ShareGroup, b: ShareGroup):
        """(workflow, plan) for the union of two groups, or an error."""
        ids = frozenset(
            id(unit) for group in (a, b) for unit in group.units
        )
        cached = merged_cache.get(ids)
        if cached is not None:
            return cached
        try:
            workflow = Workflow(
                a.workflow.schema,
                list(a.workflow.measures) + list(b.workflow.measures),
            )
            plan = optimizer.plan(workflow, n_records, num_reducers)
            result = (workflow, plan, None)
        except (DistributionError, WorkflowError, ValueError) as exc:
            result = (None, None, str(exc))
        merged_cache[ids] = result
        return result

    round_number = 0
    while len(groups) > 1:
        round_number += 1
        best = None  # (gain, i, j, workflow, plan)
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                a, b = groups[i], groups[j]
                separate = (
                    a.plan.predicted_max_load + b.plan.predicted_max_load
                )
                workflow, plan, error = plan_merged(a, b)
                left = [u.describe() for u in a.units]
                right = [u.describe() for u in b.units]
                if error is not None:
                    decision.considered.append(
                        MergeDecision(
                            round_number, left, right, separate, None,
                            None, False, f"infeasible to share: {error}",
                        )
                    )
                    continue
                gain = separate - plan.predicted_max_load
                if gain > 0:
                    reason = (
                        f"shared load {plan.predicted_max_load:.0f} < "
                        f"separate {separate:.0f} "
                        f"(saves {gain:.0f} records on the max reducer)"
                    )
                else:
                    reason = (
                        f"shared load {plan.predicted_max_load:.0f} >= "
                        f"separate {separate:.0f}: sharing key "
                        f"{plan.scheme.key!r} would cost more than two "
                        "shuffles"
                    )
                decision.considered.append(
                    MergeDecision(
                        round_number, left, right, separate,
                        plan.predicted_max_load, repr(plan.scheme.key),
                        False, reason,
                    )
                )
                if gain > 0 and (best is None or gain > best[0]):
                    best = (gain, i, j, workflow, plan)
        if best is None:
            break
        _gain, i, j, workflow, plan = best
        merged = ShareGroup(
            groups[i].units + groups[j].units, workflow, plan
        )
        # Flag the applied merge in this round's trail.
        for entry in reversed(decision.considered):
            if entry.round != round_number:
                break
            if (
                entry.left == [u.describe() for u in groups[i].units]
                and entry.right == [u.describe() for u in groups[j].units]
            ):
                entry.merged = True
                break
        groups[i] = merged
        del groups[j]

    decision.groups = [
        ([u.describe() for u in g.units], g.plan.describe())
        for g in groups
    ]
    return groups, decision
