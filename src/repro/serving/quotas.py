"""Per-tenant token-bucket quotas for the serving daemon.

A multi-tenant service cannot let one chatty tenant starve the rest:
every tenant draws admission tokens from its own bucket, refilled at a
steady per-second rate up to a burst capacity.  A submit that finds the
bucket empty is rejected with an ``Overloaded(reason="quota")``
response before it touches the admission window or the queue -- quota
rejections are the cheapest shed the daemon has.

Buckets are lazily created per tenant from the defaults (override
individual tenants with :meth:`TenantQuotas.set_limit`).  The clock is
injectable so tests can drive refill deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["TenantQuotas", "TokenBucket"]


@dataclass
class TokenBucket:
    """A classic token bucket: *rate* tokens/second up to *capacity*."""

    capacity: float
    rate: float
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self):
        if self.capacity <= 0 or self.rate <= 0:
            raise ValueError("token bucket needs positive capacity and rate")
        self._tokens = float(self.capacity)
        self._last = self.clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(
            float(self.capacity), self._tokens + elapsed * self.rate
        )

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; ``False`` means rejected."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def seconds_until(self, tokens: float = 1.0) -> float:
        """How long until *tokens* will be available (0 if already)."""
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


class TenantQuotas:
    """One token bucket per tenant, created on first sight.

    *capacity*/*rate* are the defaults for unseen tenants; ``None``
    capacity disables quota enforcement entirely (every admit
    succeeds), which is the daemon's default for single-tenant use.
    """

    def __init__(
        self,
        capacity: Optional[float] = None,
        rate: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = capacity
        self.rate = rate
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._limits: dict[str, tuple[float, float]] = {}
        #: Per-tenant rejection tallies, for the serve report.
        self.rejections: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.capacity is not None or bool(self._limits)

    def set_limit(self, tenant: str, capacity: float, rate: float) -> None:
        """Override the default bucket for one tenant."""
        self._limits[tenant] = (capacity, rate)
        self._buckets.pop(tenant, None)

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is not None:
            return bucket
        if tenant in self._limits:
            capacity, rate = self._limits[tenant]
        elif self.capacity is not None:
            capacity, rate = self.capacity, self.rate
        else:
            return None
        bucket = TokenBucket(capacity, rate, clock=self.clock)
        self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> bool:
        """Whether *tenant* may submit one more query right now."""
        bucket = self._bucket(tenant)
        if bucket is None:
            return True
        if bucket.try_acquire():
            return True
        self.rejections[tenant] = self.rejections.get(tenant, 0) + 1
        return False

    def retry_after(self, tenant: str) -> float:
        """Seconds until *tenant*'s next token (0 when unlimited)."""
        bucket = self._bucket(tenant)
        return 0.0 if bucket is None else bucket.seconds_until()

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "default_capacity": self.capacity,
            "default_rate": self.rate,
            "rejections": dict(sorted(self.rejections.items())),
        }
