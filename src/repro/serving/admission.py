"""Incremental share-group formation over a sliding admission window.

``repro batch`` sees the whole batch at once and lets
:func:`~repro.serving.groups.form_share_groups` grind pairwise merges
to a fixed point.  A daemon sees queries one at a time, so sharing
becomes a *holding* decision: keep an arriving query's execute
component on ice for up to the admission window, hoping a partner
arrives whose merged plan wins the same Formula 2/4 test the batch
planner uses (merged predicted max reducer load strictly below the sum
of the members' solo loads).

The :class:`AdmissionController` keeps a set of open
:class:`PendingGroup`\\ s.  Each arriving unit joins the open group
with the largest predicted-load gain, or opens a new group when no
merge wins.  A group leaves the window and dispatches when:

* its window expires (``opened_at + window``, anchored at the OLDEST
  member -- joining a group never extends its wait);
* the merge stops winning: ``merge_patience`` consecutive arrivals
  failed to join it (more waiting is unlikely to pay);
* it hits ``max_group_size`` members (dispatch immediately).

Merged plans are memoized by the members' structural measure
signatures, so a steady stream of the same tenant queries prices each
merge shape once -- the optimizer does not re-run per arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.distribution.keys import DistributionError
from repro.optimizer.optimizer import Optimizer, Plan
from repro.query.measures import WorkflowError
from repro.query.workflow import Workflow
from repro.serving.groups import BatchUnit, ShareGroup
from repro.serving.signature import measure_signature

__all__ = ["AdmissionController", "AdmissionStats", "PendingGroup"]


@dataclass
class PendingGroup:
    """A share group still forming inside the admission window."""

    units: list[BatchUnit]
    workflow: Workflow
    plan: Plan
    #: Arrival time of the group's first member (window anchor).
    opened_at: float
    #: Daemon-side member contexts, parallel to :attr:`units`.
    members: list[object] = field(default_factory=list)
    #: Consecutive arrivals that considered this group and went
    #: elsewhere; resets when a member joins.
    misses: int = 0
    #: Sum of the members' solo predicted loads (the sharing baseline).
    solo_load: float = 0.0
    #: Serial id unique within one controller (trace span attribute).
    group_id: int = 0
    #: Daemon clock when the group left the window for the ready
    #: queue; the ledger's queue_wait phase starts here.
    enqueued_at: Optional[float] = None
    #: Same instant on the trace wall clock (queued-span start).
    queued_wall: float = 0.0

    def expires_at(self, window: float) -> float:
        return self.opened_at + window

    def to_share_group(self) -> ShareGroup:
        return ShareGroup(list(self.units), self.workflow, self.plan)


@dataclass
class AdmissionStats:
    """What the window did over the daemon's lifetime."""

    offered: int = 0
    groups_opened: int = 0
    merges_accepted: int = 0
    merges_rejected: int = 0
    merges_infeasible: int = 0
    dispatched_window: int = 0
    dispatched_stale: int = 0
    dispatched_full: int = 0
    dispatched_flush: int = 0
    #: Predicted records saved on the max reducer by accepted merges.
    predicted_savings: float = 0.0

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "groups_opened": self.groups_opened,
            "merges_accepted": self.merges_accepted,
            "merges_rejected": self.merges_rejected,
            "merges_infeasible": self.merges_infeasible,
            "dispatched_window": self.dispatched_window,
            "dispatched_stale": self.dispatched_stale,
            "dispatched_full": self.dispatched_full,
            "dispatched_flush": self.dispatched_flush,
            "predicted_savings": self.predicted_savings,
        }


class AdmissionController:
    """Forms share groups incrementally from a stream of units.

    *window* is the maximum hold (seconds); *merge_patience* dispatches
    a group after that many consecutive non-joining arrivals (``None``
    disables early dispatch); *max_group_size* caps members per group.
    The controller is clock-agnostic: callers pass ``now`` (the
    daemon's monotonic clock) to :meth:`offer` and :meth:`due`.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        n_records: int,
        num_reducers: int,
        window: float = 0.05,
        merge_patience: Optional[int] = 4,
        max_group_size: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.optimizer = optimizer
        self.n_records = n_records
        self.num_reducers = num_reducers
        self.window = window
        self.merge_patience = merge_patience
        self.max_group_size = max(1, max_group_size)
        self.clock = clock
        self.stats = AdmissionStats()
        self._group_serial = 0
        self._open: list[PendingGroup] = []
        #: Structural-shape -> (plan | None, error) memo for merges.
        self._merge_memo: dict[tuple, tuple[Optional[Plan], str]] = {}
        self._signature_memo: dict[int, tuple] = {}

    # -- introspection ----------------------------------------------------

    @property
    def held(self) -> int:
        """Units currently waiting inside the window."""
        return sum(len(group.units) for group in self._open)

    @property
    def open_groups(self) -> int:
        return len(self._open)

    # -- the merge test ---------------------------------------------------

    def _shape(self, unit: BatchUnit) -> tuple:
        """Name-free structural key of one unit's measures."""
        memo = self._signature_memo.get(id(unit))
        if memo is None:
            memo = tuple(
                sorted(
                    measure_signature(measure)
                    for measure in unit.component.measures
                )
            )
            self._signature_memo[id(unit)] = memo
        return memo

    def _plan_joined(
        self, group: PendingGroup, unit: BatchUnit
    ) -> tuple[Optional[Workflow], Optional[Plan], str]:
        """Price *unit* joining *group*; memoized by structure."""
        shape = tuple(
            sorted(self._shape(member) for member in group.units)
            + [self._shape(unit)]
        )
        memoized = self._merge_memo.get(shape)
        workflow = None
        if memoized is not None:
            plan, error = memoized
            if plan is None:
                return None, None, error
            # The memoized plan is name-free; only the merged workflow
            # (which carries the prefixed names) must be rebuilt.
            workflow = Workflow(
                group.workflow.schema,
                list(group.workflow.measures)
                + list(unit.component.measures),
            )
            return workflow, plan, ""
        try:
            workflow = Workflow(
                group.workflow.schema,
                list(group.workflow.measures)
                + list(unit.component.measures),
            )
            plan = self.optimizer.plan(
                workflow, self.n_records, self.num_reducers
            )
        except (DistributionError, WorkflowError, ValueError) as exc:
            self._merge_memo[shape] = (None, str(exc))
            return None, None, str(exc)
        self._merge_memo[shape] = (plan, "")
        return workflow, plan, ""

    # -- arrivals ---------------------------------------------------------

    def offer(
        self,
        unit: BatchUnit,
        member: object = None,
        now: Optional[float] = None,
    ) -> PendingGroup:
        """Admit one unit: join the best-gaining open group or open one.

        Returns the group the unit landed in (possibly freshly opened).
        Groups the unit did *not* join age toward their merge-patience
        dispatch.
        """
        now = self.clock() if now is None else now
        self.stats.offered += 1
        solo = unit.plan.predicted_max_load
        best = None  # (gain, group, workflow, plan)
        for group in self._open:
            if len(group.units) >= self.max_group_size:
                continue
            workflow, plan, error = self._plan_joined(group, unit)
            if plan is None:
                self.stats.merges_infeasible += 1
                continue
            gain = (
                group.plan.predicted_max_load + solo
            ) - plan.predicted_max_load
            if gain > 0 and (best is None or gain > best[0]):
                best = (gain, group, workflow, plan)
            elif gain <= 0:
                self.stats.merges_rejected += 1
        if best is not None:
            gain, group, workflow, plan = best
            group.units.append(unit)
            group.members.append(member)
            group.workflow = workflow
            group.plan = plan
            group.solo_load += solo
            group.misses = 0
            self.stats.merges_accepted += 1
            self.stats.predicted_savings += gain
            for other in self._open:
                if other is not group:
                    other.misses += 1
            return group
        for other in self._open:
            other.misses += 1
        self._group_serial += 1
        opened = PendingGroup(
            units=[unit],
            workflow=unit.component,
            plan=unit.plan,
            opened_at=now,
            members=[member],
            solo_load=solo,
            group_id=self._group_serial,
        )
        self._open.append(opened)
        self.stats.groups_opened += 1
        return opened

    # -- dispatch ---------------------------------------------------------

    def due(self, now: Optional[float] = None) -> list[PendingGroup]:
        """Remove and return every group whose hold is over.

        A group is due when its window expired, when it reached
        ``max_group_size``, or when ``merge_patience`` consecutive
        arrivals declined to join it (the merge stopped winning).
        """
        now = self.clock() if now is None else now
        ready: list[PendingGroup] = []
        still_open: list[PendingGroup] = []
        for group in self._open:
            if len(group.units) >= self.max_group_size:
                self.stats.dispatched_full += 1
                ready.append(group)
            elif now >= group.expires_at(self.window):
                self.stats.dispatched_window += 1
                ready.append(group)
            elif (
                self.merge_patience is not None
                and group.misses >= self.merge_patience
            ):
                self.stats.dispatched_stale += 1
                ready.append(group)
            else:
                still_open.append(group)
        self._open = still_open
        return ready

    def flush(self) -> list[PendingGroup]:
        """Remove and return every open group (drain path)."""
        ready = self._open
        self._open = []
        self.stats.dispatched_flush += len(ready)
        return ready

    def next_deadline(self) -> Optional[float]:
        """The earliest window expiry among open groups (idle sleep aid)."""
        if not self._open:
            return None
        return min(group.expires_at(self.window) for group in self._open)
