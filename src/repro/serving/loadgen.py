"""Seeded open-loop arrival generation for the serving daemon.

``repro loadgen`` simulates many tenants submitting composite-aggregate
queries as a Poisson process: exponential inter-arrival gaps at a
target *rate*, each arrival assigned a tenant (weighted), a query from
the catalog, and optionally a deadline and priority.  Open-loop means
arrivals do not wait for responses -- exactly the regime where an
unprotected service melts and a shedding one does not.

Everything is driven by one :class:`random.Random` seed, so a trace is
reproducible bit-for-bit: the CI smoke test, the chaos harness and the
latency benchmark all replay known streams.  Traces serialize to JSONL
(one arrival per line) via :func:`write_trace` / :func:`read_trace`.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Mapping, Optional, Sequence, Union

__all__ = [
    "Arrival",
    "generate_arrivals",
    "read_trace",
    "write_trace",
]


@dataclass(frozen=True)
class Arrival:
    """One query submission in an arrival trace."""

    #: Offset from trace start, seconds.
    at: float
    tenant: str
    #: Catalog name of the query to submit.
    query: str
    #: Per-query deadline (milliseconds after submission), or ``None``.
    deadline_ms: Optional[float] = None
    #: Lower runs first; ties break FIFO.
    priority: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "Arrival":
        return cls(
            at=float(data["at"]),
            tenant=str(data["tenant"]),
            query=str(data["query"]),
            deadline_ms=(
                None
                if data.get("deadline_ms") is None
                else float(data["deadline_ms"])
            ),
            priority=int(data.get("priority", 0)),
        )


def generate_arrivals(
    queries: Sequence[str],
    rate: float,
    duration: float,
    seed: int = 0,
    tenants: Union[int, Mapping[str, float]] = 4,
    deadline_ms: Optional[float] = None,
    deadline_jitter: float = 0.0,
    max_arrivals: Optional[int] = None,
) -> list[Arrival]:
    """A seeded Poisson arrival trace.

    *rate* is arrivals/second over *duration* seconds.  *tenants* is a
    tenant count (uniform weights, named ``tenant-0`` ...) or an
    explicit ``{name: weight}`` mapping.  *deadline_ms* gives every
    arrival a deadline, fuzzed up to ``+/- deadline_jitter`` fraction.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if not queries:
        raise ValueError("loadgen needs at least one query name")
    rng = random.Random(seed)
    if isinstance(tenants, int):
        weights = {f"tenant-{i}": 1.0 for i in range(max(1, tenants))}
    else:
        weights = dict(tenants)
    names = sorted(weights)
    tenant_weights = [weights[name] for name in names]

    arrivals: list[Arrival] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(rate)
        if clock >= duration:
            break
        deadline = deadline_ms
        if deadline is not None and deadline_jitter > 0:
            deadline *= 1.0 + rng.uniform(-deadline_jitter, deadline_jitter)
        arrivals.append(
            Arrival(
                at=clock,
                tenant=rng.choices(names, weights=tenant_weights)[0],
                query=rng.choice(sorted(queries)),
                deadline_ms=deadline,
            )
        )
        if max_arrivals is not None and len(arrivals) >= max_arrivals:
            break
    return arrivals


def write_trace(
    arrivals: Sequence[Arrival], target: Union[str, Path, IO[str]]
) -> None:
    """Write one JSONL line per arrival."""
    def _dump(stream: IO[str]) -> None:
        for arrival in arrivals:
            stream.write(json.dumps(arrival.to_dict()) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w") as stream:
            _dump(stream)
    else:
        _dump(target)


def read_trace(source: Union[str, Path, IO[str]]) -> list[Arrival]:
    """Read a JSONL arrival trace, sorted by arrival time."""
    def _load(stream: IO[str]) -> list[Arrival]:
        arrivals = []
        for line in stream:
            line = line.strip()
            if line:
                arrivals.append(Arrival.from_dict(json.loads(line)))
        return arrivals

    if isinstance(source, (str, Path)):
        with open(source) as stream:
            arrivals = _load(stream)
    else:
        arrivals = _load(source)
    return sorted(arrivals, key=lambda a: (a.at, a.tenant, a.query))
