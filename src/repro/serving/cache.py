"""The cross-run measure cache.

A :class:`MeasureCache` stores materialized
:class:`~repro.local.measure_table.MeasureTable` rows under
content-addressed keys (:mod:`repro.serving.signature`): the hash of
the dataset fingerprint plus the measure's structural definition and
granularity.  Keys never mention names or paths, so cache entries
survive query renames and invalidate automatically when the data
changes (a new fingerprint simply never matches old keys).

Two backing modes share one interface:

* in-memory (``MeasureCache()``) -- entries live for the process;
* directory-backed (``MeasureCache("/path")``, the CLI's
  ``--cache-dir``) -- one JSON file per entry, persisted across runs.

A long-lived process (the serving daemon) cannot let the cache grow
without bound, so both modes support eviction: *max_bytes* caps the
total serialized size and evicts least-recently-used entries past it,
and *ttl* (seconds) expires entries by age at lookup time.  Evictions
are tallied in :class:`CacheStats` and mirrored to live telemetry as
``cache.evictions`` / ``cache.bytes``.

Corrupt or unserializable entries degrade to misses/skipped stores --
each logged as a structured warning naming the cache key, counted in
:class:`CacheStats`, and evicted so the next run does not trip over the
same bad bytes; the cache never fails an evaluation.  The batch
executor stores a share group's entries only after that group's job
succeeded, so retrying or re-running a failed group never invalidates
what completed groups already cached.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional

from repro.cube.regions import Granularity
from repro.local.measure_table import MeasureTable
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["CacheStats", "MeasureCache"]

logger = logging.getLogger(__name__)


@dataclass
class CacheStats:
    """Hit/miss/store accounting for one cache over its lifetime."""

    #: ``get`` calls that found a usable entry.
    hits: int = 0
    #: Lookups that found nothing: absent keys probed during planning
    #: plus ``get`` calls that came back empty, expired or unreadable.
    misses: int = 0
    #: Entries written (in memory or to disk).
    stores: int = 0
    #: Entries that could not be read back (corrupt JSON, bad rows);
    #: each also counts as a miss and is evicted.
    corrupt: int = 0
    #: Entries skipped on store because their rows are not
    #: JSON-serializable (directory-backed mode only).
    store_errors: int = 0
    #: Entries removed: LRU pressure past ``max_bytes``, TTL expiry,
    #: or eviction-on-corruption.
    evictions: int = 0

    def snapshot(self) -> "CacheStats":
        """An immutable copy of the current tallies."""
        return replace(self)

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "store_errors": self.store_errors,
            "evictions": self.evictions,
        }


@dataclass
class _Entry:
    """In-process index record: serialized size and creation time."""

    size: int
    created: float


class MeasureCache:
    """Content-addressed store of materialized measure tables.

    *directory* selects the backing: ``None`` keeps entries in process
    memory; a path persists one ``<key>.json`` file per entry (created
    on first store).  *max_bytes* bounds the total serialized payload
    size -- stores past the bound evict least-recently-used entries
    first.  *ttl* (seconds) expires entries by age: an expired entry
    reads as absent and is evicted on discovery.  Every lookup, store
    and eviction is tallied in :attr:`stats`.  *clock* exists for
    tests (defaults to :func:`time.time`).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: Optional[int] = None,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ):
        self.directory: Optional[Path] = (
            Path(directory) if directory is not None else None
        )
        self.max_bytes = max_bytes
        self.ttl = ttl
        self._clock = clock
        self._memory: dict[str, dict] = {}
        #: LRU index, least-recently-used first.  For directory-backed
        #: caches it is seeded from the files present at construction
        #: (recency then approximated by mtime).
        self._index: "OrderedDict[str, _Entry]" = OrderedDict()
        self.stats = CacheStats()
        self.telemetry = NULL_TELEMETRY
        if self.directory is not None and self.directory.exists():
            found = sorted(
                self.directory.glob("*.json"),
                key=lambda path: path.stat().st_mtime,
            )
            for path in found:
                stat = path.stat()
                self._index[path.stem] = _Entry(
                    size=stat.st_size, created=stat.st_mtime
                )

    def attach_telemetry(self, registry) -> None:
        """Mirror hit/miss/store traffic into a live telemetry registry.

        Live counters land under ``cache.hits`` / ``cache.misses`` /
        ``cache.stores`` / ``cache.evictions`` plus the ``cache.bytes``
        gauge, which is what the ``repro top`` hit-rate line reads.
        :attr:`stats` stays the post-mortem source of truth.
        """
        self.telemetry = registry if registry is not None else NULL_TELEMETRY
        self.telemetry.set_gauge("cache.bytes", float(self.total_bytes))

    # -- lookup -----------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether a live (non-expired) entry exists.

        The planner probes with this while classifying components.  An
        absent key counts as a miss (the cache was consulted and could
        not help); a present key is *not* counted as a hit here -- the
        executor's later :meth:`get` tallies it once the entry is
        actually read back.
        """
        present = key in self._memory or (
            self.directory is not None and self._path(key).exists()
        )
        if present and self._expire_if_stale(key):
            present = False
        if not present:
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
        else:
            self._touch(key)
        return present

    def get(self, key: str, granularity: Granularity) -> MeasureTable | None:
        """The cached table under *key*, or ``None`` (counted) on a miss.

        *granularity* rebuilds the table around the stored rows; the
        caller knows it from the measure whose signature produced the
        key, so it is not trusted from disk.
        """
        if self._expire_if_stale(key):
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
            return None
        payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read(key)
        if payload is None:
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
            return None
        try:
            raw = payload["rows"]
            if isinstance(raw, dict):  # memory-mode native form
                rows = raw
            else:
                rows = {tuple(coords): value for coords, value in raw}
        except (KeyError, TypeError, ValueError) as exc:
            logger.warning(
                "cache: corrupt entry (bad rows) key=%s error=%r; evicting",
                key, exc,
            )
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
            self._evict(key)
            return None
        self.stats.hits += 1
        self.telemetry.inc("cache.hits")
        self._touch(key)
        return MeasureTable(granularity, rows)

    def get_states(self, key: str) -> dict[tuple, list] | None:
        """The sidecar accumulator states stored with *key*, if any.

        Incremental maintenance stores per-coordinate partial states
        (``coords -> accumulator``) next to finalized rows for
        aggregates whose finalize step is lossy (``avg`` keeps
        ``[sum, count]``).  Entries written by batch/serve flows carry
        no states; patching then rebuilds them from the base data once.
        Not a counted lookup -- callers have already established the
        entry via :meth:`contains`/:meth:`get`.
        """
        payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read(key)
        if payload is None:
            return None
        states = payload.get("states")
        if states is None:
            return None
        if isinstance(states, dict):  # memory-mode native form
            return {
                coords: list(state) for coords, state in states.items()
            }
        try:
            return {tuple(coords): list(state) for coords, state in states}
        except (TypeError, ValueError):
            return None

    def get_partitions(self, key: str) -> list[dict] | None:
        """The append-partition provenance stored with *key*, if any.

        A list of ``{"digest", "n_records"}`` dicts, one per partition
        the entry's fingerprint was built from (base first).  ``None``
        for entries written without provenance.  Not a counted lookup.
        """
        payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read(key)
        if payload is None:
            return None
        partitions = payload.get("partitions")
        if not isinstance(partitions, list):
            return None
        return partitions

    # -- store ------------------------------------------------------------

    def put(
        self,
        key: str,
        table: MeasureTable,
        measure_name: str = "",
        partitions: Optional[list[dict]] = None,
        states: Optional[dict] = None,
    ) -> bool:
        """Store *table* under *key*; returns whether it was persisted.

        Existing entries are left untouched (content addressing makes
        them identical by construction).  Directory-backed stores that
        cannot serialize the rows are skipped and counted, never
        raised.  A store past *max_bytes* evicts least-recently-used
        entries until the new entry fits.

        *partitions* attaches append provenance (see
        :meth:`get_partitions`); *states* attaches per-coordinate
        accumulator states (see :meth:`get_states`).  Both are optional
        and ignored by readers that do not know about them.
        """
        if self.contains(key):
            return True
        created_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        if self.directory is None:
            # Memory mode keeps native structures -- no row flattening
            # or JSON round-trip on the hot (append-maintenance) path.
            # Size is charged from an estimate so byte-bounded eviction
            # still sees the entry; :meth:`spill_to` converts to the
            # JSON form if persistence is requested later.
            payload = {
                "key": key,
                "measure": measure_name,
                "granularity": list(table.granularity.levels),
                "rows": dict(table.values),
                "created_at": created_at,
            }
            size = 256 + 64 * len(table)
            if partitions is not None:
                payload["partitions"] = partitions
            if states is not None:
                payload["states"] = {
                    coords: list(state)
                    for coords, state in states.items()
                }
                size += 64 * len(states)
            self._memory[key] = payload
        else:
            payload = {
                "key": key,
                "measure": measure_name,
                "granularity": list(table.granularity.levels),
                "rows": [
                    [list(coords), value] for coords, value in table.items()
                ],
                "created_at": created_at,
            }
            if partitions is not None:
                payload["partitions"] = partitions
            if states is not None:
                payload["states"] = [
                    [list(coords), list(state)]
                    for coords, state in states.items()
                ]
            try:
                text = json.dumps(payload)
                size = len(text)
            except (TypeError, ValueError) as exc:
                logger.warning("cache: cannot serialize %s: %s", key, exc)
                self.stats.store_errors += 1
                return False
            self.directory.mkdir(parents=True, exist_ok=True)
            self._path(key).write_text(text)
        self._index[key] = _Entry(size=size, created=self._clock())
        self._index.move_to_end(key)
        self.stats.stores += 1
        self.telemetry.inc("cache.stores")
        self._shrink_to_fit(spare=key)
        self.telemetry.set_gauge("cache.bytes", float(self.total_bytes))
        return True

    def discard(self, key: str) -> None:
        """Drop *key* if present (tallied as an eviction when it was).

        Incremental maintenance uses this to retire superseded
        old-fingerprint entries once their successors are stored.
        """
        self._evict(key)

    def spill_to(self, directory: str | Path) -> int:
        """Persist in-memory entries as ``<key>.json`` files.

        Directory-backed caches are already durable; this is the
        graceful-drain hook for memory caches (the daemon's
        ``--cache-spill`` option).  Unserializable entries are skipped
        and counted as store errors.  Returns how many files were
        written.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = 0
        for key, payload in self._memory.items():
            try:
                text = json.dumps(self._json_ready(payload))
            except (TypeError, ValueError) as exc:
                logger.warning(
                    "cache: cannot spill %s: %s", key, exc
                )
                self.stats.store_errors += 1
                continue
            (target / f"{key}.json").write_text(text)
            written += 1
        return written

    # -- eviction ---------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Total serialized size of the indexed entries."""
        return sum(entry.size for entry in self._index.values())

    def _shrink_to_fit(self, spare: str | None = None) -> None:
        """Evict LRU entries until the cache fits *max_bytes*.

        *spare* protects the just-stored key: a single oversized entry
        stays (evicting it immediately would make the store a lie) and
        simply leaves the cache at its floor size.
        """
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes and len(self._index) > 1:
            victim = next(iter(self._index))
            if victim == spare:
                # The new entry alone exceeds the bound; everything
                # else is already gone.
                break
            logger.info(
                "cache: evicting %s under byte pressure "
                "(%d > %d bytes)",
                victim, self.total_bytes, self.max_bytes,
            )
            self._evict(victim)

    def _expire_if_stale(self, key: str) -> bool:
        """Evict *key* if its TTL has lapsed; returns whether it did."""
        if self.ttl is None:
            return False
        entry = self._index.get(key)
        if entry is None:
            return False
        if self._clock() - entry.created <= self.ttl:
            return False
        logger.info("cache: entry %s expired after ttl=%ss", key, self.ttl)
        self._evict(key)
        return True

    def _evict(self, key: str) -> None:
        """Drop one entry from memory/disk and the index; tallied."""
        removed = self._memory.pop(key, None) is not None
        self._index.pop(key, None)
        if self.directory is not None:
            try:
                os.remove(self._path(key))
                removed = True
            except OSError:
                pass
        if removed:
            self.stats.evictions += 1
            self.telemetry.inc("cache.evictions")
            self.telemetry.set_gauge("cache.bytes", float(self.total_bytes))

    def _touch(self, key: str) -> None:
        """Refresh *key*'s LRU position (most recently used)."""
        if key in self._index:
            self._index.move_to_end(key)

    # -- internals --------------------------------------------------------

    @staticmethod
    def _json_ready(payload: dict) -> dict:
        """A JSON-serializable copy of a memory-mode payload.

        Memory entries keep rows and states as native dicts keyed by
        coordinate tuples; the JSON file form flattens both to
        ``[[coords, value], ...]`` lists.
        """
        data = dict(payload)
        rows = data.get("rows")
        if isinstance(rows, dict):
            data["rows"] = [
                [list(coords), value] for coords, value in rows.items()
            ]
        states = data.get("states")
        if isinstance(states, dict):
            data["states"] = [
                [list(coords), list(state)]
                for coords, state in states.items()
            ]
        return data

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _read(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            text = path.read_text()
            payload = json.loads(text)
        except FileNotFoundError:
            self._index.pop(key, None)
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning(
                "cache: corrupt entry (unreadable) key=%s path=%s "
                "error=%r; evicting",
                key, path, exc,
            )
            self.stats.corrupt += 1
            self._evict(key)
            return None
        if key not in self._index:
            # Written by another process since we indexed the
            # directory; adopt it so eviction accounting sees it.
            self._index[key] = _Entry(
                size=len(text), created=self._clock()
            )
        return payload

    def __len__(self) -> int:
        stored = set(self._memory)
        if self.directory is not None and self.directory.exists():
            stored.update(
                path.stem for path in self.directory.glob("*.json")
            )
        return len(stored)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.directory or "memory"
        return f"MeasureCache({where}, {self.stats.to_dict()})"
