"""The cross-run measure cache.

A :class:`MeasureCache` stores materialized
:class:`~repro.local.measure_table.MeasureTable` rows under
content-addressed keys (:mod:`repro.serving.signature`): the hash of
the dataset fingerprint plus the measure's structural definition and
granularity.  Keys never mention names or paths, so cache entries
survive query renames and invalidate automatically when the data
changes (a new fingerprint simply never matches old keys).

Two backing modes share one interface:

* in-memory (``MeasureCache()``) -- entries live for the process;
* directory-backed (``MeasureCache("/path")``, the CLI's
  ``--cache-dir``) -- one JSON file per entry, persisted across runs.

Corrupt or unserializable entries degrade to misses/skipped stores and
are counted in :class:`CacheStats`; the cache never fails an
evaluation.  The batch executor stores a share group's entries only
after that group's job succeeded, so retrying or re-running a failed
group never invalidates what completed groups already cached.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.cube.regions import Granularity
from repro.local.measure_table import MeasureTable
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["CacheStats", "MeasureCache"]

logger = logging.getLogger(__name__)


@dataclass
class CacheStats:
    """Hit/miss/store accounting for one cache over its lifetime."""

    #: ``get`` calls that found a usable entry.
    hits: int = 0
    #: Lookups that found nothing: absent keys probed during planning
    #: plus ``get`` calls that came back empty or unreadable.
    misses: int = 0
    #: Entries written (in memory or to disk).
    stores: int = 0
    #: Entries that could not be read back (corrupt JSON, bad rows);
    #: each also counts as a miss.
    corrupt: int = 0
    #: Entries skipped on store because their rows are not
    #: JSON-serializable (directory-backed mode only).
    store_errors: int = 0

    def snapshot(self) -> "CacheStats":
        """An immutable copy of the current tallies."""
        return replace(self)

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "store_errors": self.store_errors,
        }


class MeasureCache:
    """Content-addressed store of materialized measure tables.

    *directory* selects the backing: ``None`` keeps entries in process
    memory; a path persists one ``<key>.json`` file per entry (created
    on first store).  Every lookup and store is tallied in
    :attr:`stats`.
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory: Optional[Path] = (
            Path(directory) if directory is not None else None
        )
        self._memory: dict[str, dict] = {}
        self.stats = CacheStats()
        self.telemetry = NULL_TELEMETRY

    def attach_telemetry(self, registry) -> None:
        """Mirror hit/miss/store traffic into a live telemetry registry.

        Live counters land under ``cache.hits`` / ``cache.misses`` /
        ``cache.stores``, which is what the ``repro top`` hit-rate line
        reads.  :attr:`stats` stays the post-mortem source of truth.
        """
        self.telemetry = registry if registry is not None else NULL_TELEMETRY

    # -- lookup -----------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether an entry exists.

        The planner probes with this while classifying components.  An
        absent key counts as a miss (the cache was consulted and could
        not help); a present key is *not* counted as a hit here -- the
        executor's later :meth:`get` tallies it once the entry is
        actually read back.
        """
        present = key in self._memory or (
            self.directory is not None and self._path(key).exists()
        )
        if not present:
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
        return present

    def get(self, key: str, granularity: Granularity) -> MeasureTable | None:
        """The cached table under *key*, or ``None`` (counted) on a miss.

        *granularity* rebuilds the table around the stored rows; the
        caller knows it from the measure whose signature produced the
        key, so it is not trusted from disk.
        """
        payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read(key)
        if payload is None:
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
            return None
        try:
            rows = {
                tuple(coords): value for coords, value in payload["rows"]
            }
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.telemetry.inc("cache.misses")
            return None
        self.stats.hits += 1
        self.telemetry.inc("cache.hits")
        return MeasureTable(granularity, rows)

    # -- store ------------------------------------------------------------

    def put(self, key: str, table: MeasureTable, measure_name: str = "") -> bool:
        """Store *table* under *key*; returns whether it was persisted.

        Existing entries are left untouched (content addressing makes
        them identical by construction).  Directory-backed stores that
        cannot serialize the rows are skipped and counted, never raised.
        """
        if self.contains(key):
            return True
        payload = {
            "key": key,
            "measure": measure_name,
            "granularity": list(table.granularity.levels),
            "rows": [[list(coords), value] for coords, value in table.items()],
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        if self.directory is None:
            self._memory[key] = payload
            self.stats.stores += 1
            self.telemetry.inc("cache.stores")
            return True
        try:
            text = json.dumps(payload)
        except (TypeError, ValueError) as exc:
            logger.warning("cache: cannot serialize %s: %s", key, exc)
            self.stats.store_errors += 1
            return False
        self.directory.mkdir(parents=True, exist_ok=True)
        self._path(key).write_text(text)
        self.stats.stores += 1
        self.telemetry.inc("cache.stores")
        return True

    # -- internals --------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _read(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("cache: unreadable entry %s: %s", path, exc)
            self.stats.corrupt += 1
            return None

    def __len__(self) -> int:
        stored = len(self._memory)
        if self.directory is not None and self.directory.exists():
            stored += sum(1 for _ in self.directory.glob("*.json"))
        return stored

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.directory or "memory"
        return f"MeasureCache({where}, {self.stats.to_dict()})"
