"""The always-on query service: ``repro serve``.

:class:`QueryService` turns the one-shot batch machinery into a
long-running daemon that accepts a *stream* of composite-aggregate
queries (many tenants, open-loop arrivals) and answers every one
bit-identically to a standalone run -- while refusing to melt when
offered load exceeds capacity.  The life of one submitted query:

1. **Quota.**  The tenant's token bucket
   (:class:`~repro.serving.quotas.TenantQuotas`) must admit it, else a
   structured :class:`Overloaded` response (``reason="quota"``).
2. **Backpressure.**  If held + queued + in-flight work already
   exceeds ``limits.max_pending`` (or the ready queue is at depth),
   the query is shed with ``reason="queue_full"`` -- explicit load
   shedding instead of unbounded latency.
3. **Cache fast path.**  Components whose measures are already
   materialized for this dataset are answered immediately from the
   :class:`~repro.serving.cache.MeasureCache` (or derived centrally
   from cached basics) -- no job, microsecond latency.
4. **Admission window.**  Execute components are held up to the
   window by the :class:`~repro.serving.admission.AdmissionController`
   looking for partners whose merged plan wins the Formula 2/4 test;
   the group dispatches when the window expires, the merge stops
   winning, or the group is full.
5. **Bounded queue -> workers.**  Dispatched groups wait in a
   :class:`~repro.serving.queueing.BoundedPriorityQueue` and run on
   one of ``limits.max_inflight`` workers, each owning its own
   simulated cluster.  Per-query deadlines propagate as a
   :class:`~repro.parallel.cancel.CancellationToken` (the group's
   latest member deadline), cancelling map/shuffle/reduce work that
   can no longer help anyone.
6. **Circuit breaker.**  Repeated backend failures open the breaker:
   groups are served by the centralized evaluator (the bit-identity
   oracle) for a cooldown instead of hammering a broken pool; a
   half-open probe closes it again.
7. **Graceful drain.**  On SIGTERM (or :meth:`QueryService.drain`) the
   daemon stops admitting, dispatches every held group, finishes the
   queue and in-flight work, persists the cache, and writes a final
   run manifest.

Answers are bit-identical to ``repro batch`` and the centralized
oracle in every path -- shared groups change where work happens, never
its inputs or fold order, and the fallback *is* the oracle.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.cube.records import Record
from repro.local.measure_table import MeasureTable, ResultSet
from repro.local.sortscan import BlockEvaluator, evaluate_centralized
from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.obs.ledger import LedgerBook
from repro.obs.telemetry import NULL_TELEMETRY
from repro.obs.tracectx import NULL_QUERY_TRACER, TraceContext
from repro.obs.tracer import Tracer
from repro.optimizer.optimizer import Optimizer, Plan, QueryPlan
from repro.parallel.cancel import CancellationToken, DeadlineExceededError
from repro.parallel.executor import ExecutionConfig, ParallelEvaluator
from repro.query.workflow import Workflow, connected_components
from repro.serving.admission import AdmissionController, PendingGroup
from repro.serving.cache import MeasureCache
from repro.serving.groups import (
    QUERY_SEPARATOR,
    BatchUnit,
    prefix_workflow,
)
from repro.serving.incremental import AppendReport, IncrementalMaintainer
from repro.serving.planner import _derivable
from repro.serving.queueing import BoundedPriorityQueue
from repro.serving.quotas import TenantQuotas
from repro.serving.signature import (
    DatasetHasher,
    cache_key,
    partition_digest,
)

__all__ = [
    "BreakerConfig",
    "Overloaded",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServeReport",
    "ServiceLimits",
    "serve_arrivals",
]

logger = logging.getLogger(__name__)

STATUS_OK = "ok"
STATUS_OVERLOADED = "overloaded"
STATUS_DEADLINE = "deadline"
STATUS_ERROR = "error"

SHED_QUEUE_FULL = "queue_full"
SHED_QUOTA = "quota"
SHED_DRAINING = "draining"


@dataclass(frozen=True)
class ServiceLimits:
    """Where the daemon starts refusing instead of queueing."""

    #: Share groups allowed to wait for a worker.
    max_queue_depth: int = 16
    #: Concurrent group executions (worker tasks, one cluster each).
    max_inflight: int = 2
    #: Queries allowed in the system at once (held + queued + running);
    #: past this, submits shed with ``queue_full``.
    max_pending: int = 64
    #: Admission window: how long a query may wait for share partners.
    admission_window_ms: float = 50.0
    #: Dispatch a held group after this many consecutive arrivals
    #: declined to join it (``None``: wait out the window).
    merge_patience: Optional[int] = 4
    #: Members per share group before immediate dispatch.
    max_group_size: int = 8


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit breaker over the group-execution backend."""

    #: Consecutive failures that open the circuit.
    threshold: int = 3
    #: Seconds the circuit stays open before a half-open probe.
    cooldown_s: float = 5.0


@dataclass(frozen=True)
class Overloaded:
    """Structured rejection attached to a shed response."""

    reason: str
    queue_depth: int = 0
    inflight: int = 0
    held: int = 0
    #: Client hint: when trying again might succeed (milliseconds).
    retry_after_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "held": self.held,
            "retry_after_ms": self.retry_after_ms,
        }


@dataclass(frozen=True)
class QueryRequest:
    """One submission to the daemon."""

    #: Catalog name of the query (reporting; need not be unique).
    name: str
    workflow: Workflow
    tenant: str = "default"
    #: Milliseconds after submission by which the answer is useless.
    deadline_ms: Optional[float] = None
    #: Lower runs first.
    priority: int = 0


@dataclass
class QueryResponse:
    """What the daemon returns for one submission."""

    name: str
    tenant: str
    #: ``ok`` | ``overloaded`` | ``deadline`` | ``error``.
    status: str
    result: Optional[ResultSet] = None
    latency_ms: float = 0.0
    #: Catalog names co-evaluated with this query (itself included)
    #: when any component ran in a share group.
    group_queries: list[str] = field(default_factory=list)
    #: Structured shed detail when ``status == "overloaded"``.
    overload: Optional[Overloaded] = None
    error: str = ""
    #: The answer arrived after the request's own deadline (still
    #: correct, merely late; cancelled queries get ``deadline``).
    late: bool = False
    #: How components were served: subset of
    #: {"cache", "derive", "group", "fallback"}.
    served_by: list[str] = field(default_factory=list)
    #: Trace id of this submission (``repro trace --query <id>``);
    #: set for every arrival, shed ones included.
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class ServeReport:
    """Post-mortem of one daemon lifetime (the manifest's serving section)."""

    arrivals: int = 0
    completed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    deadline_missed: int = 0
    late: int = 0
    errors: int = 0
    fallbacks: int = 0
    breaker_trips: int = 0
    groups_dispatched: int = 0
    grouped_queries: int = 0
    appends: int = 0
    appended_records: int = 0
    admission: dict = field(default_factory=dict)
    queue: dict = field(default_factory=dict)
    quotas: dict = field(default_factory=dict)
    cache: Optional[dict] = None
    latency_ms: dict = field(default_factory=dict)
    drained: bool = False

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def to_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "shed": dict(sorted(self.shed.items())),
            "deadline_missed": self.deadline_missed,
            "late": self.late,
            "errors": self.errors,
            "fallbacks": self.fallbacks,
            "breaker_trips": self.breaker_trips,
            "groups_dispatched": self.groups_dispatched,
            "grouped_queries": self.grouped_queries,
            "appends": self.appends,
            "appended_records": self.appended_records,
            "admission": dict(self.admission),
            "queue": dict(self.queue),
            "quotas": dict(self.quotas),
            "cache": self.cache,
            "latency_ms": dict(self.latency_ms),
            "drained": self.drained,
        }

    def summary(self) -> str:
        latency = self.latency_ms or {}
        return (
            f"serve: {self.arrivals} arrivals, {self.completed} completed, "
            f"{self.total_shed} shed, {self.deadline_missed} deadline, "
            f"{self.groups_dispatched} groups "
            f"(p50 {latency.get('p50', 0.0):.1f}ms, "
            f"p99 {latency.get('p99', 0.0):.1f}ms)"
        )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


def latency_percentiles(latencies_ms: Sequence[float]) -> dict:
    """The ``p50/p95/p99/max/count`` block benchmark and report share."""
    ordered = sorted(latencies_ms)
    return {
        "count": len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "p99": _percentile(ordered, 0.99),
        "max": ordered[-1] if ordered else 0.0,
        "mean": (sum(ordered) / len(ordered)) if ordered else 0.0,
    }


@dataclass
class _Member:
    """One pending request component riding a share group."""

    pending: "_PendingRequest"
    #: The component with original (unprefixed) measure names.
    component: Workflow
    #: Original measure name -> cache key ("" fingerprint disables).
    keys: dict[str, str]
    unit: Optional[BatchUnit] = None
    #: Daemon clock when the component entered the admission window
    #: (the ledger's admission_hold phase starts here).
    offered_at: Optional[float] = None
    #: Same instant on the trace wall clock (admission-span start).
    offer_wall: float = 0.0


class _PendingRequest:
    """Daemon-side state of one admitted query."""

    def __init__(
        self,
        request: QueryRequest,
        serial: int,
        submitted_at: float,
        deadline_at: Optional[float],
    ):
        self.request = request
        #: Unique internal id; prefixes this request's merged measures
        #: and doubles as the query's trace id.
        self.internal = f"q{serial}"
        self.submitted_at = submitted_at
        self.deadline_at = deadline_at
        #: Root trace context (set by submit when tracing is wired).
        self.ctx: Optional[TraceContext] = None
        #: Trace wall clock at submission (root-span start).
        self.trace_started = 0.0
        self.tables: dict[str, MeasureTable] = {}
        self.remaining = 0
        self.served_by: list[str] = []
        self.group_queries: list[str] = []
        self.future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )

    def component_done(self, tables: Mapping[str, MeasureTable]) -> None:
        self.tables.update(tables)
        self.remaining -= 1

    @property
    def complete(self) -> bool:
        return self.remaining <= 0


class _CircuitBreaker:
    """Closed -> open (cooldown) -> half-open -> closed."""

    def __init__(self, config: BreakerConfig, clock: Callable[[], float]):
        self.config = config
        self.clock = clock
        self.failures = 0
        self.trips = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.clock() - self.opened_at >= self.config.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether the next group may try the real backend."""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self.failures += 1
        if self.opened_at is None and (
            self.failures >= self.config.threshold
        ):
            self.trips += 1
            self.opened_at = self.clock()
            logger.warning(
                "circuit breaker OPEN after %d consecutive failures; "
                "serving centrally for %.1fs",
                self.failures, self.config.cooldown_s,
            )
        elif self.opened_at is not None:
            # Failed probe: restart the cooldown.
            self.opened_at = self.clock()


class _Worker:
    """One group-execution slot: its own cluster, evaluator and input."""

    def __init__(
        self,
        index: int,
        cluster: SimulatedCluster,
        config: ExecutionConfig,
        records: Sequence[Record],
        telemetry,
    ):
        self.index = index
        self.cluster = cluster
        self.evaluator = ParallelEvaluator(
            cluster, config, telemetry=telemetry
        )
        self.input_file = cluster.dfs.write(f"serve-input-{index}", records)

    def run_group(
        self,
        workflow: Workflow,
        plan: Plan,
        cancel: Optional[CancellationToken],
    ) -> tuple[ResultSet, dict[str, float]]:
        """Run one group; returns the result and the wall seconds of
        each execution phase (planning/map/shuffle/reduce).

        A fresh per-run :class:`~repro.obs.tracer.Tracer` marks the
        map/reduce phase boundaries (the engine already emits those
        spans); the boundaries tile the run's wall time exactly, so
        the latency ledger attributes execution exhaustively.  Each
        worker runs one group at a time, so swapping the evaluator's
        tracer per run is race-free.
        """
        tracer = Tracer()
        self.evaluator.tracer = tracer
        run_start = time.perf_counter()
        outcome = self.evaluator.evaluate(
            workflow,
            self.input_file,
            plan=QueryPlan([(workflow, plan)]),
            cancel=cancel,
        )
        run_end = time.perf_counter()
        return outcome.result, self._phase_walls(tracer, run_start, run_end)

    @staticmethod
    def _phase_walls(
        tracer: Tracer, run_start: float, run_end: float
    ) -> dict[str, float]:
        maps = tracer.find("map")
        reduces = tracer.find("reduce")
        if not maps or not reduces:
            # No phase spans (should not happen): charge it all to
            # reduce rather than lose the time.
            return {"reduce": max(0.0, run_end - run_start)}
        map_start = min(span.wall_start for span in maps)
        map_end = max(span.wall_end for span in maps)
        reduce_start = max(
            map_end, min(span.wall_start for span in reduces)
        )
        return {
            "planning": max(0.0, map_start - run_start),
            "map": max(0.0, map_end - map_start),
            "shuffle": max(0.0, reduce_start - map_end),
            "reduce": max(0.0, run_end - reduce_start),
        }


class QueryService:
    """The long-running serving daemon (see module docstring).

    *catalog* maps query names to workflows (what ``repro loadgen``
    arrival traces reference); *records* is the one dataset this
    daemon serves.  *cluster_factory* builds one simulated cluster per
    worker slot.  All answers are bit-identical to standalone runs.
    """

    def __init__(
        self,
        catalog: Mapping[str, Workflow],
        records: Sequence[Record],
        cluster_factory: Callable[[], SimulatedCluster] | None = None,
        config: ExecutionConfig | None = None,
        cache: MeasureCache | None = None,
        limits: ServiceLimits | None = None,
        quotas: TenantQuotas | None = None,
        breaker: BreakerConfig | None = None,
        telemetry=None,
        tracer=None,
        slo=None,
        flight=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not catalog:
            raise ValueError("the serving catalog needs at least one query")
        config = config or ExecutionConfig()
        if config.early_aggregation:
            raise ValueError(
                "serving requires early_aggregation=False: partial-state "
                "merging can reorder float folds, which would break the "
                "bit-identical-to-standalone guarantee"
            )
        self.catalog = dict(catalog)
        self.records = list(records)
        self.cluster_factory = cluster_factory or (
            lambda: SimulatedCluster(ClusterConfig(machines=8))
        )
        self.config = config
        self.cache = cache
        self.limits = limits or ServiceLimits()
        self.quotas = quotas or TenantQuotas(clock=clock)
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        if cache is not None:
            cache.attach_telemetry(self.telemetry)
        #: Per-query span recorder (opt-in); the ledger is always on.
        self.tracer = tracer if tracer is not None else NULL_QUERY_TRACER
        #: Per-tenant SLO burn tracking (None: untracked).
        self.slo = slo
        #: Flight recorder for triggered bundle dumps (None: off).
        self.flight = flight
        self.ledgers = LedgerBook()
        self._shed_times: deque = deque(maxlen=64)
        self.clock = clock
        self.breaker = _CircuitBreaker(
            breaker or BreakerConfig(), clock
        )
        self.queue: BoundedPriorityQueue = BoundedPriorityQueue(
            self.limits.max_queue_depth
        )
        self.optimizer = Optimizer(config.optimizer)

        schema = next(iter(self.catalog.values())).schema
        for name, workflow in self.catalog.items():
            if QUERY_SEPARATOR in name:
                raise ValueError(
                    f"query name {name!r} must not contain "
                    f"{QUERY_SEPARATOR!r}"
                )
            if workflow.schema != schema:
                raise ValueError(
                    f"query {name!r} uses a different schema; the daemon "
                    "serves one dataset"
                )
        self.schema = schema
        #: Incrementally maintained dataset identity: appends extend the
        #: hasher in O(delta) and the fingerprint stays exactly equal to
        #: a batch run's ``dataset_fingerprint`` over the same records.
        self._hasher: Optional[DatasetHasher] = None
        #: Append provenance: one ``{"digest", "n_records"}`` entry per
        #: partition applied so far (the base dataset first).
        self._partitions: list[dict] = []
        if cache is not None:
            self._hasher = DatasetHasher(schema)
            self._hasher.update(self.records)
            self._partitions.append(
                {
                    "digest": partition_digest(self.records, schema),
                    "n_records": len(self.records),
                }
            )
        self.fingerprint = (
            self._hasher.fingerprint() if self._hasher is not None else ""
        )

        self._serial = 0
        self._draining = False
        self._drained = False
        self._started = False
        self._inflight = 0
        self._workers: list[_Worker] = []
        self._worker_tasks: list[asyncio.Task] = []
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._work_available: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        #: Set (open) except while an append is installing new data;
        #: submissions wait on it so their cache keys never straddle a
        #: fingerprint change.
        self._append_gate: Optional[asyncio.Event] = None
        self._generation = 0
        self._latencies_ms: list[float] = []
        self._report = ServeReport()
        #: Catalog name -> per-component (workflow, solo plan); plans
        #: are name-free and the dataset is fixed, so price each query
        #: shape once for the daemon's lifetime.
        self._solo_plans: dict[str, list[tuple[Workflow, Plan]]] = {}
        self.admission: Optional[AdmissionController] = None
        self.num_reducers = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Build workers and background tasks; idempotent."""
        if self._started:
            return
        self._started = True
        self._work_available = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._append_gate = asyncio.Event()
        self._append_gate.set()
        for index in range(self.limits.max_inflight):
            self._workers.append(
                _Worker(
                    index,
                    self.cluster_factory(),
                    self.config,
                    self.records,
                    self.telemetry if index == 0 else NULL_TELEMETRY,
                )
            )
        self.num_reducers = (
            self.config.num_reducers
            or self._workers[0].cluster.reduce_slots
        )
        self.admission = AdmissionController(
            self.optimizer,
            n_records=len(self.records),
            num_reducers=self.num_reducers,
            window=self.limits.admission_window_ms / 1000.0,
            merge_patience=self.limits.merge_patience,
            max_group_size=self.limits.max_group_size,
            clock=self.clock,
        )
        self._dispatcher_task = asyncio.create_task(self._dispatch_loop())
        for index in range(self.limits.max_inflight):
            self._worker_tasks.append(
                asyncio.create_task(self._worker_loop(index))
            )
        logger.info(
            "serve: started (%d workers, window %.0fms, queue depth %d, "
            "%d catalog queries, %d records)",
            self.limits.max_inflight,
            self.limits.admission_window_ms,
            self.limits.max_queue_depth,
            len(self.catalog),
            len(self.records),
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (CLI entry point);
        SIGUSR2 dumps the flight recorder when one is attached."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )
        if self.flight is not None:
            loop.add_signal_handler(
                signal.SIGUSR2, lambda: self.flight.dump("sigusr2")
            )

    # -- submission -------------------------------------------------------

    async def submit(self, request: QueryRequest) -> QueryResponse:
        """Serve one query; never raises for overload/deadline/faults."""
        await self.start()
        # An in-progress append is swapping the dataset identity; wait
        # for it so this query's cache keys bind to one fingerprint.
        while not self._append_gate.is_set():
            await self._append_gate.wait()
        now = self.clock()
        self._serial += 1
        serial = self._serial
        self._report.arrivals += 1
        self.telemetry.inc("serve.arrivals")
        self.telemetry.mark("serve.arrival_rate")

        shed = self._shed_reason(request)
        if shed is not None:
            return self._overloaded(request, shed, trace_id=f"q{serial}")

        workflow = request.workflow
        deadline_at = (
            None
            if request.deadline_ms is None
            else now + request.deadline_ms / 1000.0
        )
        pending = _PendingRequest(request, serial, now, deadline_at)
        pending.ctx = self.tracer.mint(pending.internal)
        pending.trace_started = self.tracer.now()
        ledger = self.ledgers.open(
            pending.internal, request.name, request.tenant, now
        )

        components = self._components_of(request.name, workflow)
        classify_start = self.clock()
        ledger.add("planning", classify_start - now)

        fast: list[tuple[_Member, str]] = []
        execute: list[_Member] = []
        for component, solo_plan in components:
            member = _Member(
                pending,
                component,
                self._keys_for(component),
            )
            disposition = self._classify(member)
            pending.remaining += 1
            if disposition == "execute":
                prefixed = prefix_workflow(
                    component, pending.internal + QUERY_SEPARATOR
                )
                member.unit = BatchUnit(
                    pending.internal, prefixed, solo_plan
                )
                execute.append(member)
            else:
                fast.append((member, disposition))

        for member, disposition in fast:
            self._serve_fast(member, disposition)
        offer_at = self.clock()
        # Classification plus the cache fast path: lookups dominate.
        ledger.add("cache_lookup", offer_at - classify_start)
        offer_wall = self.tracer.now()
        for member in execute:
            member.offered_at = offer_at
            member.offer_wall = offer_wall
            self._idle.clear()
            self.admission.offer(member.unit, member, now=now)
        self.telemetry.set_gauge("serve.held", float(self.admission.held))

        if pending.complete and not execute:
            return self._finish(pending)
        try:
            return await pending.future
        except asyncio.CancelledError:
            raise

    def _shed_reason(self, request: QueryRequest) -> Optional[Overloaded]:
        """The structured rejection to return, or ``None`` to admit."""
        held = self.admission.held if self.admission is not None else 0
        depth = len(self.queue)
        if self._draining:
            return Overloaded(
                reason=SHED_DRAINING,
                queue_depth=depth,
                inflight=self._inflight,
                held=held,
            )
        if not self.quotas.admit(request.tenant):
            return Overloaded(
                reason=SHED_QUOTA,
                queue_depth=depth,
                inflight=self._inflight,
                held=held,
                retry_after_ms=self.quotas.retry_after(request.tenant)
                * 1000.0,
            )
        pending_load = held + depth + self._inflight
        if self.queue.full or pending_load >= self.limits.max_pending:
            return Overloaded(
                reason=SHED_QUEUE_FULL,
                queue_depth=depth,
                inflight=self._inflight,
                held=held,
                retry_after_ms=self.limits.admission_window_ms,
            )
        return None

    def _overloaded(
        self,
        request: QueryRequest,
        overload: Overloaded,
        trace_id: str = "",
    ) -> QueryResponse:
        self._report.shed[overload.reason] = (
            self._report.shed.get(overload.reason, 0) + 1
        )
        self.telemetry.inc("serve.shed")
        self.telemetry.inc(f"serve.shed.{overload.reason}")
        self._slo_record(request.tenant, None, failed=True)
        self._note_shed(request, overload.reason)
        if self.tracer.enabled and trace_id:
            # Shed queries still get a (one-span) trace carrying the
            # decision, so "what happened to q-42" always has an answer.
            ctx = self.tracer.mint(trace_id)
            wall = self.tracer.now()
            self.tracer.record(
                ctx, "shed", wall, wall,
                reason=overload.reason,
                queue_depth=overload.queue_depth,
                held=overload.held,
            )
            self.tracer.close(
                ctx, request.name, wall, wall,
                tenant=request.tenant, status=STATUS_OVERLOADED,
            )
        return QueryResponse(
            name=request.name,
            tenant=request.tenant,
            status=STATUS_OVERLOADED,
            overload=overload,
            trace_id=trace_id,
        )

    def _note_shed(self, request: QueryRequest, reason: str) -> None:
        """Feed the flight recorder; a burst of sheds dumps a bundle."""
        if self.flight is None:
            return
        self.flight.note(
            "shed", query=request.name, tenant=request.tenant,
            reason=reason,
        )
        now = self.clock()
        self._shed_times.append(now)
        recent = sum(1 for t in self._shed_times if now - t <= 1.0)
        if recent >= 10:
            self.flight.dump("shed_storm", sheds_last_second=recent)

    def _slo_record(
        self, tenant: str, latency_ms: Optional[float], failed: bool
    ) -> None:
        if self.slo is None:
            return
        good = self.slo.record(tenant, latency_ms, failed=failed)
        if good is None:
            return
        self.telemetry.inc(
            f"slo.{tenant}.good" if good else f"slo.{tenant}.bad"
        )
        self.telemetry.set_gauge(
            f"slo.{tenant}.burn", self.slo.burn_rate(tenant)
        )

    # -- classification ---------------------------------------------------

    def _components_of(
        self, name: str, workflow: Workflow
    ) -> list[tuple[Workflow, Plan]]:
        """Per-component solo plans, memoized by catalog name."""
        memo = self._solo_plans.get(name)
        if memo is not None:
            return memo
        memo = [
            (
                component,
                self.optimizer.plan(
                    component, len(self.records), self.num_reducers
                ),
            )
            for component in connected_components(workflow)
        ]
        self._solo_plans[name] = memo
        return memo

    def _keys_for(self, component: Workflow) -> dict[str, str]:
        if self.cache is None:
            return {}
        return {
            measure.name: cache_key(self.fingerprint, measure)
            for measure in component.measures
        }

    def _classify(self, member: _Member) -> str:
        """cache | derive | execute, mirroring the batch planner."""
        if self.cache is None:
            return "execute"
        cached = {
            name
            for name, key in member.keys.items()
            if self.cache.contains(key)
        }
        if cached == set(member.keys):
            return "cache"
        basics = {m.name for m in member.component.basic_measures()}
        if basics and basics <= cached and _derivable(member.component):
            return "derive"
        return "execute"

    def _serve_fast(self, member: _Member, disposition: str) -> None:
        """Answer a cached/derived component without any job.

        A vanished or corrupt entry demotes the component to a solo
        execute unit (the same degradation the batch executor uses).
        """
        component = member.component
        loaded: dict[str, MeasureTable] = {}
        measures = (
            component.measures
            if disposition == "cache"
            else component.basic_measures()
        )
        for measure in measures:
            table = self.cache.get(
                member.keys[measure.name], measure.granularity
            )
            if table is None:
                logger.warning(
                    "serve: cache entry for %s vanished; executing solo",
                    measure.name,
                )
                self._demote_to_execute(member)
                return
            loaded[measure.name] = table
        if disposition == "derive":
            result = BlockEvaluator(component).evaluate(
                basic_tables=loaded
            )
            loaded = dict(result.tables)
            for measure in component.composite_measures():
                self.cache.put(
                    member.keys[measure.name],
                    loaded[measure.name],
                    measure_name=measure.name,
                )
        member.pending.served_by.append(disposition)
        member.pending.component_done(loaded)
        self.telemetry.inc(f"serve.{disposition}_served")

    def _demote_to_execute(self, member: _Member) -> None:
        pending = member.pending
        solo = next(
            plan
            for component, plan in self._components_of(
                pending.request.name, pending.request.workflow
            )
            if component.names == member.component.names
        )
        prefixed = prefix_workflow(
            member.component, pending.internal + QUERY_SEPARATOR
        )
        member.unit = BatchUnit(pending.internal, prefixed, solo)
        member.offered_at = self.clock()
        member.offer_wall = self.tracer.now()
        self._idle.clear()
        self.admission.offer(member.unit, member)

    # -- dispatch ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        tick = max(0.001, self.limits.admission_window_ms / 4000.0)
        while True:
            try:
                await asyncio.sleep(tick)
                self._dispatch_due()
            except asyncio.CancelledError:
                return
            except Exception:  # pragma: no cover - defensive
                logger.exception("serve: dispatcher error")

    def _dispatch_due(self, flush: bool = False) -> None:
        if self.admission is None:
            return
        groups = (
            self.admission.flush() if flush else self.admission.due()
        )
        for group in groups:
            self._enqueue_group(group, force=flush)
        self.telemetry.set_gauge("serve.held", float(self.admission.held))
        self.telemetry.set_gauge("serve.queue_depth", float(len(self.queue)))

    def _enqueue_group(self, group: PendingGroup, force: bool = False) -> None:
        members = [m for m in group.members if m is not None]
        priority = min(
            (m.pending.request.priority for m in members), default=0
        )
        deadlines = [m.pending.deadline_at for m in members]
        earliest = min(
            (d for d in deadlines if d is not None), default=None
        )
        accepted = self.queue.offer(group, priority, earliest)
        if not accepted and force:
            # Drain must not lose held work; depth no longer matters.
            self.queue.max_depth = max(
                self.queue.max_depth, len(self.queue) + 1
            )
            accepted = self.queue.offer(group, priority, earliest)
        if not accepted:
            for member in members:
                self._fail_member(
                    member,
                    STATUS_OVERLOADED,
                    overload=Overloaded(
                        reason=SHED_QUEUE_FULL,
                        queue_depth=len(self.queue),
                        inflight=self._inflight,
                        held=self.admission.held,
                        retry_after_ms=self.limits.admission_window_ms,
                    ),
                    stall_phase="admission_hold",
                )
            return
        group.enqueued_at = self.clock()
        group.queued_wall = self.tracer.now()
        for member in members:
            ledger = self.ledgers.get(member.pending.internal)
            if ledger is not None and member.offered_at is not None:
                ledger.add_window(
                    "admission_hold", member.offered_at, group.enqueued_at
                )
            if self.tracer.enabled and member.pending.ctx is not None:
                self.tracer.record(
                    member.pending.ctx, "admission",
                    member.offer_wall or group.queued_wall,
                    group.queued_wall,
                    group=group.group_id, group_size=len(members),
                )
        self._report.groups_dispatched += 1
        self._report.grouped_queries += len(members)
        self.telemetry.inc("serve.groups_dispatched")
        self.telemetry.observe("serve.group_size", len(members))
        self._work_available.set()

    # -- workers ----------------------------------------------------------

    async def _worker_loop(self, index: int) -> None:
        worker = self._workers[index]
        while True:
            group = self.queue.take()
            if group is None:
                self._maybe_idle()
                self._work_available.clear()
                try:
                    await asyncio.wait_for(
                        self._work_available.wait(), timeout=0.05
                    )
                except asyncio.TimeoutError:
                    pass
                except asyncio.CancelledError:
                    return
                continue
            self._inflight += 1
            self.telemetry.set_gauge("serve.inflight", float(self._inflight))
            self.telemetry.set_gauge(
                "serve.queue_depth", float(len(self.queue))
            )
            try:
                await self._execute_group(worker, group)
            except asyncio.CancelledError:
                self._inflight -= 1
                raise
            except Exception:  # pragma: no cover - defensive
                logger.exception("serve: worker %d crashed on a group", index)
            self._inflight -= 1
            self.telemetry.set_gauge("serve.inflight", float(self._inflight))
            self._maybe_idle()

    def _maybe_idle(self) -> None:
        if (
            self._idle is not None
            and not len(self.queue)
            and self._inflight == 0
            and (self.admission is None or self.admission.held == 0)
        ):
            self._idle.set()

    def _group_token(
        self, members: list[_Member]
    ) -> Optional[CancellationToken]:
        """The group deadline: latest member deadline, if all have one.

        One member without a deadline keeps the group uncancellable --
        that member is owed an answer no matter how long it takes.
        """
        deadlines = [m.pending.deadline_at for m in members]
        if not deadlines or any(d is None for d in deadlines):
            return None
        return CancellationToken(deadline=max(deadlines), clock=self.clock)

    async def _execute_group(
        self, worker: _Worker, group: PendingGroup
    ) -> None:
        members = [m for m in group.members if m is not None]
        entry = self.clock()
        queued_end = self.tracer.now()
        for member in members:
            ledger = self.ledgers.get(member.pending.internal)
            if ledger is not None and group.enqueued_at is not None:
                ledger.add_window("queue_wait", group.enqueued_at, entry)
            if self.tracer.enabled and member.pending.ctx is not None:
                self.tracer.record(
                    member.pending.ctx, "queued",
                    group.queued_wall or queued_end, queued_end,
                    group=group.group_id,
                )
        token = self._group_token(members)
        if token is not None and token.expired:
            # Everyone's deadline passed while queued: don't run at all.
            for member in members:
                self._fail_member(
                    member, STATUS_DEADLINE, stall_phase="queue_wait"
                )
            return

        group_names = sorted(
            {m.pending.request.name for m in members}
        )
        # The group's single execution span: primary trace is the first
        # member's, every other member's root span rides along as a
        # link -- one execution subtree reachable from each query tree.
        exec_ctx: Optional[TraceContext] = None
        if self.tracer.enabled and members[0].pending.ctx is not None:
            links = [
                (m.pending.ctx.trace_id, m.pending.ctx.span_id)
                for m in members[1:]
                if m.pending.ctx is not None
            ]
            exec_ctx = self.tracer.fork(
                members[0].pending.ctx, links=links
            )
        exec_wall = self.tracer.now()
        use_backend = self.breaker.allow()
        result: Optional[ResultSet] = None
        phases: dict[str, float] = {}
        error = ""
        if use_backend:
            try:
                result, phases = await asyncio.to_thread(
                    worker.run_group, group.workflow, group.plan, token
                )
                self.breaker.record_success()
            except DeadlineExceededError:
                # The deadline cut the job somewhere inside the backend
                # pipeline; without phase walls for the cancelled run,
                # charge the truncated execution to its first phase.
                for member in members:
                    self._fail_member(
                        member, STATUS_DEADLINE, stall_phase="map"
                    )
                return
            except Exception as exc:  # noqa: BLE001 - breaker decides
                error = f"{type(exc).__name__}: {exc}"
                logger.warning(
                    "serve: group [%s] failed on backend: %s",
                    ", ".join(group_names), error,
                )
                self.breaker.record_failure()
                if self.breaker.trips > self._report.breaker_trips:
                    self._report.breaker_trips = self.breaker.trips
                self.telemetry.inc("serve.backend_failures")
                if exec_ctx is not None:
                    self.tracer.event(
                        exec_ctx, "backend-failure", error=error
                    )
                if self.flight is not None:
                    self.flight.note(
                        "backend_failure", error=error,
                        queries=",".join(group_names),
                    )
        self.telemetry.set_gauge(
            "serve.breaker_open",
            0.0 if self.breaker.state == "closed" else 1.0,
        )

        fallback = result is None
        if fallback:
            # Breaker open (or the attempt just failed): the
            # centralized oracle serves the same bit-identical answer.
            if token is not None and token.expired:
                for member in members:
                    self._fail_member(
                        member, STATUS_DEADLINE, stall_phase="map"
                    )
                return
            try:
                fallback_start = time.perf_counter()
                result = await asyncio.to_thread(
                    evaluate_centralized, group.workflow, self.records
                )
                # The oracle is one centralized fold with no
                # map/shuffle split; charge it all to reduce.
                phases = {
                    "reduce": time.perf_counter() - fallback_start
                }
            except Exception as exc:  # noqa: BLE001 - answer is lost
                for member in members:
                    self._fail_member(
                        member, STATUS_ERROR,
                        error=error or f"{type(exc).__name__}: {exc}",
                        stall_phase="map",
                    )
                return
            self._report.fallbacks += len(members)
            self.telemetry.inc("serve.fallbacks")

        exec_end = self.tracer.now()
        if exec_ctx is not None:
            # Phase children tile the execution interval sequentially
            # (the durations come from the worker's phase tracer).
            cursor = exec_wall
            for phase in ("planning", "map", "shuffle", "reduce"):
                width = phases.get(phase, 0.0)
                if width > 0:
                    self.tracer.record(
                        exec_ctx, phase, cursor, cursor + width,
                        process=f"slot{worker.index}",
                    )
                    cursor += width
            if fallback:
                self.tracer.event(
                    exec_ctx, "fallback", queries=",".join(group_names)
                )
            self.tracer.close(
                exec_ctx, "execute", exec_wall, exec_end,
                process=f"slot{worker.index}",
                queries=",".join(group_names),
                group=group.group_id,
                fallback=fallback,
            )

        # Split merged "qN/measure" tables back per member request.
        split_start = self.clock()
        by_internal: dict[str, dict[str, MeasureTable]] = {}
        for name, table in result.items():
            internal, _, original = name.partition(QUERY_SEPARATOR)
            by_internal.setdefault(internal, {})[original] = table
        for member in members:
            self._store_member(
                member, by_internal.get(member.pending.internal, {})
            )
        split_seconds = self.clock() - split_start
        for member in members:
            pending = member.pending
            ledger = self.ledgers.get(pending.internal)
            if ledger is not None:
                # Every member waited out the same shared execution
                # wall time; each query's ledger carries all of it --
                # clipped, so two of its components executing
                # concurrently cannot attribute the same wall second
                # twice.
                ledger.add_phases(phases, entry, split_start)
                ledger.add_window(
                    "result_split", split_start,
                    split_start + split_seconds,
                )
            tables = by_internal.get(pending.internal, {})
            pending.served_by.append("fallback" if fallback else "group")
            if len(members) > 1:
                pending.group_queries = group_names
            pending.component_done(tables)
            if pending.complete:
                self._finish(pending)

    def _store_member(
        self, member: _Member, tables: Mapping[str, MeasureTable]
    ) -> None:
        if self.cache is None or not member.keys:
            return
        for name, key in member.keys.items():
            if name in tables:
                self.cache.put(key, tables[name], measure_name=name)

    # -- completion -------------------------------------------------------

    def _close_ledger(self, pending: _PendingRequest, status: str) -> None:
        """Close the query's ledger and feed the phase telemetry."""
        ledger = self.ledgers.get(pending.internal)
        if ledger is None or ledger.closed:
            return
        ledger.close(self.clock(), status)
        tenant = ledger.tenant or "-"
        for phase, ms in ledger.phases.items():
            if ms:
                self.telemetry.observe(f"ledger.{phase}_ms", ms)
                self.telemetry.inc(f"ledger.sum.{tenant}.{phase}", ms)
        self.telemetry.observe("ledger.residual_ms", abs(ledger.residual_ms))
        self.telemetry.inc(f"ledger.sum.{tenant}.total", ledger.total_ms)
        self.telemetry.inc(f"ledger.n.{tenant}")

    def _close_trace(
        self, pending: _PendingRequest, status: str, latency_ms: float
    ) -> None:
        """Record the query's root span (the whole daemon residence)."""
        if not self.tracer.enabled or pending.ctx is None:
            return
        self.tracer.close(
            pending.ctx,
            pending.request.name,
            pending.trace_started,
            self.tracer.now(),
            tenant=pending.request.tenant,
            status=status,
            latency_ms=round(latency_ms, 3),
            served_by=",".join(pending.served_by),
        )

    def _fail_member(
        self,
        member: _Member,
        status: str,
        overload: Optional[Overloaded] = None,
        error: str = "",
        stall_phase: str = "",
    ) -> None:
        """One component failed terminally: resolve the whole request.

        *stall_phase* names where the query was stuck when it died
        (admission hold, queue, execution); the still-unattributed tail
        of its residence is charged there so failed queries' ledgers
        tile their latency just like successful ones.
        """
        pending = member.pending
        if pending.future.done():
            return
        now = self.clock()
        if stall_phase:
            ledger = self.ledgers.get(pending.internal)
            if ledger is not None and not ledger.closed:
                ledger.add_window(stall_phase, ledger.window_until, now)
        latency_ms = (now - pending.submitted_at) * 1000.0
        if status == STATUS_DEADLINE:
            self._report.deadline_missed += 1
            self.telemetry.inc("serve.deadline_missed")
            if self.tracer.enabled and pending.ctx is not None:
                self.tracer.event(
                    pending.ctx, "deadline-missed",
                    deadline_ms=pending.request.deadline_ms,
                )
            if self.flight is not None:
                self.flight.dump(
                    "deadline_miss", query=pending.request.name,
                    trace_id=pending.internal,
                )
        elif status == STATUS_ERROR:
            self._report.errors += 1
            self.telemetry.inc("serve.errors")
            if self.tracer.enabled and pending.ctx is not None:
                self.tracer.event(pending.ctx, "error", error=error)
            if self.flight is not None:
                self.flight.dump(
                    "error", query=pending.request.name,
                    trace_id=pending.internal, error=error,
                )
        elif status == STATUS_OVERLOADED and overload is not None:
            self._report.shed[overload.reason] = (
                self._report.shed.get(overload.reason, 0) + 1
            )
            self.telemetry.inc("serve.shed")
            self.telemetry.inc(f"serve.shed.{overload.reason}")
            if self.tracer.enabled and pending.ctx is not None:
                self.tracer.event(
                    pending.ctx, "shed", reason=overload.reason
                )
            self._note_shed(pending.request, overload.reason)
        self._close_ledger(pending, status)
        self._close_trace(pending, status, latency_ms)
        self._slo_record(pending.request.tenant, None, failed=True)
        pending.future.set_result(
            QueryResponse(
                name=pending.request.name,
                tenant=pending.request.tenant,
                status=status,
                latency_ms=latency_ms,
                overload=overload,
                error=error,
                served_by=list(pending.served_by),
                trace_id=pending.internal,
            )
        )

    def _finish(self, pending: _PendingRequest) -> QueryResponse:
        latency_ms = (self.clock() - pending.submitted_at) * 1000.0
        late = (
            pending.deadline_at is not None
            and self.clock() > pending.deadline_at
        )
        workflow = pending.request.workflow
        result = ResultSet(
            {
                name: pending.tables[name]
                for name in workflow.names
                if name in pending.tables
            }
        )
        response = QueryResponse(
            name=pending.request.name,
            tenant=pending.request.tenant,
            status=STATUS_OK,
            result=result,
            latency_ms=latency_ms,
            group_queries=list(pending.group_queries),
            late=late,
            served_by=list(pending.served_by),
            trace_id=pending.internal,
        )
        self._report.completed += 1
        if late:
            self._report.late += 1
        self._latencies_ms.append(latency_ms)
        self.telemetry.inc("serve.completed")
        self.telemetry.mark("serve.completion_rate")
        self.telemetry.observe("serve.latency_ms", latency_ms)
        self._close_ledger(pending, STATUS_OK)
        self._close_trace(pending, STATUS_OK, latency_ms)
        self._slo_record(pending.request.tenant, latency_ms, failed=late)
        if not pending.future.done():
            pending.future.set_result(response)
        return response

    # -- drain ------------------------------------------------------------

    # -- appends ----------------------------------------------------------

    async def append(self, delta: Sequence[Record]) -> Optional[AppendReport]:
        """Install an append partition, patching live cache entries.

        The daemon quiesces first: new submissions wait at the append
        gate, held groups are force-dispatched, and the queue and
        workers run dry -- so no job ever runs over mixed data or
        stores results under a stale fingerprint.  Then the incremental
        maintainer patches every cached catalog measure forward (old
        fingerprint to new), the records, worker inputs and priced
        plans are swapped to the grown dataset, and the gate reopens.
        Returns the maintenance report, or ``None`` when no cache is
        attached or the delta is empty (the data still grows; there is
        just nothing to patch).
        """
        await self.start()
        delta = list(delta)
        if not delta:
            return None
        self._append_gate.clear()
        try:
            # Anything already admitted runs over the old data and
            # stores under old-fingerprint keys -- which is only
            # correct if it finishes before the data changes.
            self._dispatch_due(flush=True)
            while (
                len(self.queue)
                or self._inflight
                or (self.admission is not None and self.admission.held)
            ):
                self._work_available.set()
                self._idle.clear()
                try:
                    await asyncio.wait_for(self._idle.wait(), timeout=0.1)
                except asyncio.TimeoutError:
                    self._dispatch_due(flush=True)

            report: Optional[AppendReport] = None
            if self.cache is not None and self._hasher is not None:
                old_fingerprint = self.fingerprint
                history = [dict(p) for p in self._partitions]
                self._hasher.update(delta)
                new_fingerprint = self._hasher.fingerprint()
                maintainer = IncrementalMaintainer(
                    self.cache, self.schema, telemetry=self.telemetry
                )
                report = await asyncio.to_thread(
                    maintainer.apply,
                    list(self.catalog.values()),
                    self.records,
                    delta,
                    old_fingerprint,
                    new_fingerprint,
                    history,
                )
                self._partitions.append(
                    {"digest": report.partition, "n_records": len(delta)}
                )
                self.fingerprint = new_fingerprint

            self.records.extend(delta)
            self._generation += 1
            for worker in self._workers:
                worker.input_file = worker.cluster.dfs.write(
                    f"serve-input-{worker.index}-g{self._generation}",
                    self.records,
                )
            # Solo plans are priced against the record count; reprice.
            self._solo_plans.clear()
            if self.admission is not None:
                self.admission.n_records = len(self.records)
            self._report.appends += 1
            self._report.appended_records += len(delta)
            self.telemetry.inc("serve.appends")
            self.telemetry.set_gauge(
                "serve.records", float(len(self.records))
            )
            logger.info(
                "serve: appended %d records (now %d); %s",
                len(delta),
                len(self.records),
                report.summary().replace("\n", " ")
                if report is not None
                else "no cache attached",
            )
            return report
        finally:
            self._append_gate.set()

    async def drain(self) -> ServeReport:
        """Graceful shutdown: finish everything in flight, then stop.

        New submissions shed with ``reason="draining"`` from the moment
        this is called.  Held groups are dispatched immediately, the
        queue and workers run dry, the cache is persisted (directory
        caches already are; ``spill`` handles memory caches via
        :meth:`MeasureCache.spill_to` when a spill directory was
        attached), and the final report is returned.
        """
        if self._drained:
            return self.report()
        self._draining = True
        await self.start()
        self._dispatch_due(flush=True)
        while len(self.queue) or self._inflight:
            self._work_available.set()
            self._idle.clear()
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                continue
        self._drained = True
        if self._dispatcher_task is not None:
            self._dispatcher_task.cancel()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(
            *self._worker_tasks,
            *( [self._dispatcher_task] if self._dispatcher_task else [] ),
            return_exceptions=True,
        )
        self._worker_tasks = []
        self._dispatcher_task = None
        logger.info("serve: drained (%s)", self.report().summary())
        return self.report()

    def report(self) -> ServeReport:
        """The current serving post-mortem (final after :meth:`drain`)."""
        report = self._report
        report.latency_ms = latency_percentiles(self._latencies_ms)
        if self.admission is not None:
            report.admission = self.admission.stats.to_dict()
        report.queue = {
            "max_depth": self.queue.max_depth,
            "peak_depth": self.queue.peak_depth,
            "rejected": self.queue.rejected,
        }
        report.quotas = self.quotas.to_dict()
        if self.cache is not None:
            report.cache = self.cache.stats.to_dict()
        report.drained = self._drained
        return report


def serve_arrivals(
    service: QueryService,
    arrivals: Sequence,
    speed: float = 1.0,
    drain: bool = True,
    install_signals: bool = False,
) -> tuple[list[QueryResponse], ServeReport]:
    """Replay a loadgen trace against *service*; returns all responses.

    Arrivals are submitted open-loop at their trace offsets scaled by
    *speed* (``speed=0`` submits as fast as possible).  Responses come
    back in arrival order.  The synchronous wrapper owns the event
    loop, which is what tests and ``tools/serve_smoke.py`` want.
    *install_signals* hooks SIGTERM/SIGINT to a graceful drain (the
    ``repro serve`` entry point) -- a signal mid-replay sheds the rest
    of the trace with ``reason="draining"`` while in-flight groups
    finish.
    """

    async def _run() -> tuple[list[QueryResponse], ServeReport]:
        await service.start()
        if install_signals:
            service.install_signal_handlers()
        started = service.clock()
        tasks: list[asyncio.Task] = []
        for arrival in arrivals:
            if speed > 0:
                offset = arrival.at / speed
                delay = offset - (service.clock() - started)
                if delay > 0:
                    await asyncio.sleep(delay)
            workflow = service.catalog.get(arrival.query)
            if workflow is None:
                raise KeyError(
                    f"arrival references unknown query {arrival.query!r}"
                )
            request = QueryRequest(
                name=arrival.query,
                workflow=workflow,
                tenant=arrival.tenant,
                deadline_ms=arrival.deadline_ms,
                priority=arrival.priority,
            )
            tasks.append(asyncio.create_task(service.submit(request)))
        responses = list(await asyncio.gather(*tasks))
        report = (await service.drain()) if drain else service.report()
        return responses, report

    return asyncio.run(_run())
