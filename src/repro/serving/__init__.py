"""Multi-query shared execution (serving layer).

The paper evaluates one aggregation workflow per MapReduce job, but its
feasibility theory composes across queries: one annotated distribution
key can satisfy Theorems 1-2 for *several* workflows at once, so a
single shuffle can serve a whole batch.  This package adds that serving
layer on top of the parallel evaluator:

* :mod:`~repro.serving.groups` -- share-group formation: which queries
  can (and should, per the Formula 2/4 cost model) ride one shuffle;
* :mod:`~repro.serving.planner` -- the batch planner: cache pruning,
  then greedy share-group formation, with a full decision trail;
* :mod:`~repro.serving.executor` -- the batch executor: one job per
  share group, per-query output splitting, group-level retries;
* :mod:`~repro.serving.cache` / :mod:`~repro.serving.signature` -- the
  content-addressed cross-run measure cache and its hashing.

Entry points: :class:`BatchEvaluator` (the ``repro batch`` engine) and
:class:`BatchPlanner` (``repro explain --batch``).  Every query's
answer is bit-identical to its standalone run.
"""

from repro.serving.cache import CacheStats, MeasureCache
from repro.serving.executor import (
    BatchEvaluator,
    BatchExecutionError,
    BatchResult,
    GroupOutcome,
)
from repro.serving.groups import (
    BatchDecision,
    BatchUnit,
    MergeDecision,
    ShareGroup,
    form_share_groups,
    prefix_workflow,
)
from repro.serving.planner import (
    BatchPlan,
    BatchPlanner,
    ComponentPlan,
    PlannedQuery,
)
from repro.serving.signature import (
    cache_key,
    dataset_fingerprint,
    measure_signature,
)

__all__ = [
    "BatchDecision",
    "BatchEvaluator",
    "BatchExecutionError",
    "BatchPlan",
    "BatchPlanner",
    "BatchResult",
    "BatchUnit",
    "CacheStats",
    "ComponentPlan",
    "GroupOutcome",
    "MeasureCache",
    "MergeDecision",
    "PlannedQuery",
    "ShareGroup",
    "cache_key",
    "dataset_fingerprint",
    "form_share_groups",
    "measure_signature",
    "prefix_workflow",
]
