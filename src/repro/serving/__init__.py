"""Multi-query shared execution (serving layer).

The paper evaluates one aggregation workflow per MapReduce job, but its
feasibility theory composes across queries: one annotated distribution
key can satisfy Theorems 1-2 for *several* workflows at once, so a
single shuffle can serve a whole batch.  This package adds that serving
layer on top of the parallel evaluator:

* :mod:`~repro.serving.groups` -- share-group formation: which queries
  can (and should, per the Formula 2/4 cost model) ride one shuffle;
* :mod:`~repro.serving.planner` -- the batch planner: cache pruning,
  then greedy share-group formation, with a full decision trail;
* :mod:`~repro.serving.executor` -- the batch executor: one job per
  share group, per-query output splitting, group-level retries;
* :mod:`~repro.serving.cache` / :mod:`~repro.serving.signature` -- the
  content-addressed cross-run measure cache and its hashing.

On top of the one-shot batch path sits the always-on daemon:

* :mod:`~repro.serving.daemon` -- :class:`QueryService`, the
  ``repro serve`` engine: admission-windowed sharing, load shedding,
  deadlines, circuit-broken fallback, graceful drain;
* :mod:`~repro.serving.admission` -- incremental share-group formation
  over a sliding window;
* :mod:`~repro.serving.queueing` / :mod:`~repro.serving.quotas` -- the
  bounded ready-queue and per-tenant token buckets;
* :mod:`~repro.serving.loadgen` -- seeded open-loop arrival traces
  (``repro loadgen``).

Entry points: :class:`BatchEvaluator` (the ``repro batch`` engine),
:class:`BatchPlanner` (``repro explain --batch``) and
:class:`QueryService` (``repro serve``).  Every query's answer is
bit-identical to its standalone run.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionStats,
    PendingGroup,
)
from repro.serving.cache import CacheStats, MeasureCache
from repro.serving.daemon import (
    BreakerConfig,
    Overloaded,
    QueryRequest,
    QueryResponse,
    QueryService,
    ServeReport,
    ServiceLimits,
    serve_arrivals,
)
from repro.serving.executor import (
    BatchEvaluator,
    BatchExecutionError,
    BatchResult,
    GroupOutcome,
)
from repro.serving.incremental import (
    AppendReport,
    DeltaClass,
    IncrementalMaintainer,
    MeasureOutcome,
    classify_measure,
)
from repro.serving.groups import (
    BatchDecision,
    BatchUnit,
    MergeDecision,
    ShareGroup,
    form_share_groups,
    prefix_workflow,
)
from repro.serving.loadgen import (
    Arrival,
    generate_arrivals,
    read_trace,
    write_trace,
)
from repro.serving.planner import (
    BatchPlan,
    BatchPlanner,
    ComponentPlan,
    PlannedQuery,
)
from repro.serving.queueing import BoundedPriorityQueue
from repro.serving.quotas import TenantQuotas, TokenBucket
from repro.serving.signature import (
    DatasetHasher,
    cache_key,
    dataset_fingerprint,
    measure_signature,
    merkle_root,
    partition_digest,
)

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AppendReport",
    "Arrival",
    "BatchDecision",
    "BatchEvaluator",
    "BatchExecutionError",
    "BatchPlan",
    "BatchPlanner",
    "BatchResult",
    "BatchUnit",
    "BoundedPriorityQueue",
    "BreakerConfig",
    "CacheStats",
    "ComponentPlan",
    "DatasetHasher",
    "DeltaClass",
    "GroupOutcome",
    "IncrementalMaintainer",
    "MeasureCache",
    "MeasureOutcome",
    "MergeDecision",
    "Overloaded",
    "PendingGroup",
    "PlannedQuery",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "ServeReport",
    "ServiceLimits",
    "ShareGroup",
    "TenantQuotas",
    "TokenBucket",
    "cache_key",
    "classify_measure",
    "dataset_fingerprint",
    "form_share_groups",
    "generate_arrivals",
    "measure_signature",
    "merkle_root",
    "partition_digest",
    "prefix_workflow",
    "read_trace",
    "serve_arrivals",
    "write_trace",
]
