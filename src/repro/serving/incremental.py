"""Incremental view maintenance: append data, patch cached answers.

An append used to be a cache massacre: any new record flips
:func:`~repro.serving.signature.dataset_fingerprint`, every key stops
matching, and the daemon re-executes full jobs over history it already
aggregated.  This module turns the measure cache into a maintained view
instead.  When a delta partition arrives, each cached measure entry is
classified by how much of it the delta can actually change:

=========  =============================================================
patchable  distributive/algebraic measures whose arithmetic is exact
           under reordering (``sum``/``count``/``min``/``max`` over
           integers, ``avg`` within float64's exact integer range):
           fold *only the delta records*, op-combine the partial states
           into the cached result (Gray et al.'s classification, as in
           the CubeGen / MapReduce-cube literature)
regional   sibling-window measures: invert the window containment test
           (the paper's Theorem 1-2 extended-range reasoning) to find
           the anchors whose windows reach a changed source region, and
           recompute exactly those
full       holistic measures (median, quantiles, distinct counts) and
           anything whose reordered arithmetic could round differently
           (variance, float sums): the delta can change every region,
           so the entry is recomputed -- or simply left to age out
=========  =============================================================

The classification is *structural* (from the measure graph) with a
*runtime exactness gate* on the actual values, mirroring the fast-path
gates in :mod:`repro.local.operators`: a structurally patchable ``sum``
over float values falls back to ``full`` rather than risk a result that
differs from cold recomputation in the last bit.  Whatever route an
entry takes, the maintained table must equal what
:func:`~repro.local.sortscan.evaluate_centralized` computes over the
concatenated dataset -- bit-identical answers are the contract, speed
is the reward.

Entries carry Merkle-style append provenance (see
:func:`~repro.serving.signature.partition_digest`): the chain of
partition digests an entry was built from.  A maintainer asked to apply
a delta on top of a history that does not match the entry's recorded
chain refuses to patch (the entry is recomputed instead), which is what
makes out-of-order and overlapping appends safe.
"""

from __future__ import annotations

import enum
import logging
import time
from dataclasses import dataclass, field

from repro.cube.records import Schema
from repro.local.measure_table import MeasureTable
from repro.local.operators import sibling_window_patch
from repro.local.sortscan import BlockEvaluator, compute_composite
from repro.obs.telemetry import NULL_TELEMETRY
from repro.query.functions import IDENTITY
from repro.query.measures import Measure, Relationship
from repro.query.workflow import Workflow, subworkflow
from repro.serving.cache import MeasureCache
from repro.serving.signature import (
    cache_key,
    measure_signature,
    merkle_root,
    partition_digest,
)

__all__ = [
    "AppendReport",
    "DeltaClass",
    "IncrementalMaintainer",
    "MeasureOutcome",
    "classify_measure",
]

logger = logging.getLogger(__name__)

#: Aggregates whose fold is exact (hence order-insensitive) on integer
#: inputs: patching folds the delta separately and merges, which only
#: preserves bit-identity when the arithmetic cannot round.  ``avg``
#: qualifies within float64's exact integer range (the same 2**53 bound
#: the operators module uses for its window fast paths); variance and
#: stddev do not (Chan's merge rounds differently than a sequential
#: Welford fold), and holistic functions have no merge at all.
_EXACT_COMBINE = frozenset({"sum", "count", "min", "max", "avg"})

#: Largest magnitude exactly representable in a float64 mantissa.
_EXACT_FLOAT_BOUND = 2**53

_MISSING = object()


class DeltaClass(enum.Enum):
    """How much of a cached measure one append partition can change."""

    PATCHABLE = "patchable"
    REGIONAL = "regional"
    FULL = "full"


def classify_measure(measure: Measure, memo: dict | None = None) -> DeltaClass:
    """Structurally classify *measure* for incremental maintenance.

    Basic measures classify by their aggregate; composites inherit the
    worst of their sources, with two graph rules layered on top: any
    sibling edge makes the measure (at best) regional, and a rollup
    edge whose aggregate cannot be exactly re-folded makes it full.
    """
    if memo is None:
        memo = {}
    cached = memo.get(id(measure))
    if cached is not None:
        return cached
    if measure.is_basic:
        result = (
            DeltaClass.PATCHABLE
            if measure.aggregate.name in _EXACT_COMBINE
            else DeltaClass.FULL
        )
    else:
        result = DeltaClass.PATCHABLE
        for edge in measure.inputs:
            source_class = classify_measure(edge.source, memo)
            if source_class is DeltaClass.FULL:
                result = DeltaClass.FULL
                break
            if edge.relationship is Relationship.ROLLUP and (
                edge.aggregate.name not in _EXACT_COMBINE
            ):
                result = DeltaClass.FULL
                break
            if (
                edge.relationship is Relationship.SIBLING
                or source_class is DeltaClass.REGIONAL
            ):
                result = DeltaClass.REGIONAL
    memo[id(measure)] = result
    return result


@dataclass
class MeasureOutcome:
    """What incremental maintenance did to one cached measure."""

    measure: str
    signature: str
    classification: str
    #: ``patched`` (delta fold + merge), ``regional`` (windowed anchor
    #: repair), ``derived`` (recombined from patched sources),
    #: ``recomputed`` (full re-evaluation), ``current`` (a fresh entry
    #: already existed), ``stale`` (full-class entry left to age out),
    #: or ``skipped`` (could not be maintained; see ``reason``).
    action: str
    reason: str = ""
    rows: int = 0
    #: Anchors re-evaluated by the regional path (0 elsewhere).
    recomputed_regions: int = 0

    def to_dict(self) -> dict:
        return {
            "measure": self.measure,
            "signature": self.signature,
            "classification": self.classification,
            "action": self.action,
            "reason": self.reason,
            "rows": self.rows,
            "recomputed_regions": self.recomputed_regions,
        }


@dataclass
class AppendReport:
    """One append's worth of maintenance, for logs and manifests."""

    old_fingerprint: str
    new_fingerprint: str
    delta_records: int
    partition: str
    outcomes: list[MeasureOutcome] = field(default_factory=list)
    duration: float = 0.0

    def count(self, action: str) -> int:
        return sum(1 for o in self.outcomes if o.action == action)

    @property
    def patched(self) -> int:
        """Entries maintained without touching historical records."""
        return sum(
            1
            for o in self.outcomes
            if o.action in ("patched", "regional", "derived")
        )

    def to_dict(self) -> dict:
        return {
            "old_fingerprint": self.old_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "delta_records": self.delta_records,
            "partition": self.partition,
            "duration": self.duration,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        parts = [
            f"append: {self.delta_records} records, "
            f"{len(self.outcomes)} cached measures",
            f"  patched={self.count('patched')} "
            f"regional={self.count('regional')} "
            f"derived={self.count('derived')} "
            f"recomputed={self.count('recomputed')} "
            f"stale={self.count('stale')} "
            f"skipped={self.count('skipped')} "
            f"current={self.count('current')}",
            f"  fingerprint {self.old_fingerprint[:12]}.. -> "
            f"{self.new_fingerprint[:12]}..  ({self.duration * 1e3:.1f} ms)",
        ]
        return "\n".join(parts)


class IncrementalMaintainer:
    """Patches cached measure entries forward across one append.

    Construct once per cache/schema pair; :meth:`apply` is called per
    append with the workflows whose measures may be cached, the base
    records (only read to rebuild missing ``avg`` states or to recompute
    full-class entries), and the delta.  *recompute_full* selects the
    policy for full-class entries: ``False`` (default) leaves the old
    entry to age out -- the next query recomputes through the normal
    execution paths -- while ``True`` re-evaluates them immediately so
    the cache is complete under the new fingerprint.
    """

    def __init__(
        self,
        cache: MeasureCache,
        schema: Schema,
        telemetry=None,
        recompute_full: bool = False,
    ):
        self.cache = cache
        self.schema = schema
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.recompute_full = recompute_full

    # -- the append ---------------------------------------------------------

    def apply(
        self,
        workflows: list[Workflow],
        base_records,
        delta_records,
        old_fingerprint: str,
        new_fingerprint: str,
        history: list[dict] | None = None,
    ) -> AppendReport:
        """Maintain every cached measure of *workflows* across one append.

        *history* is the caller's record of the partitions already
        applied (base first), as ``{"digest", "n_records"}`` dicts; when
        given, entries whose stored provenance disagrees are refused
        (recomputed or left stale) instead of patched -- the defense
        against out-of-order replays.  Returns the per-measure report;
        the cache afterwards holds new-fingerprint entries for
        everything that could be maintained.
        """
        started = time.perf_counter()
        delta = (
            delta_records
            if isinstance(delta_records, list)
            else list(delta_records)
        )
        digest = partition_digest(delta, self.schema)
        report = AppendReport(
            old_fingerprint=old_fingerprint,
            new_fingerprint=new_fingerprint,
            delta_records=len(delta),
            partition=digest,
        )
        chain = list(history) if history is not None else None
        new_chain = (chain or []) + [
            {"digest": digest, "n_records": len(delta)}
        ]

        done: set[str] = set()
        new_tables: dict[str, MeasureTable] = {}
        dirty_sets: dict[str, set] = {}
        memo: dict = {}
        for workflow in workflows:
            for measure in workflow.topological_order():
                signature = measure_signature(measure)
                if signature in done:
                    continue
                done.add(signature)
                outcome = self._maintain(
                    measure,
                    workflow,
                    signature,
                    base_records,
                    delta,
                    old_fingerprint,
                    new_fingerprint,
                    chain,
                    new_chain,
                    new_tables,
                    dirty_sets,
                    memo,
                )
                report.outcomes.append(outcome)
                self.telemetry.inc(f"cache.append.{outcome.action}")
        report.duration = time.perf_counter() - started
        self.telemetry.inc("cache.appends")
        return report

    # -- per-measure maintenance -------------------------------------------

    def _maintain(
        self,
        measure: Measure,
        workflow: Workflow,
        signature: str,
        base_records,
        delta,
        old_fingerprint: str,
        new_fingerprint: str,
        chain,
        new_chain,
        new_tables: dict[str, MeasureTable],
        dirty_sets: dict[str, set],
        memo: dict,
    ) -> MeasureOutcome:
        classification = classify_measure(measure, memo)
        old_key = cache_key(old_fingerprint, measure)
        new_key = cache_key(new_fingerprint, measure)

        def outcome(action, reason="", rows=0, regions=0):
            return MeasureOutcome(
                measure=measure.name,
                signature=signature,
                classification=classification.value,
                action=action,
                reason=reason,
                rows=rows,
                recomputed_regions=regions,
            )

        old_table = self.cache.get(old_key, measure.granularity)

        # Another workflow (or a racing maintainer) already produced the
        # new-fingerprint entry; adopt it and derive the dirty set so
        # dependents can still take the regional path.
        if self.cache.contains(new_key):
            new_table = self.cache.get(new_key, measure.granularity)
            if new_table is not None:
                new_tables[signature] = new_table
                if old_table is not None:
                    dirty_sets[signature] = _table_diff(old_table, new_table)
                return outcome("current", rows=len(new_table))

        if old_table is None:
            # Nothing cached to maintain.  Full-class measures may still
            # be recomputed below when asked; everything else is simply
            # not in the cache's care.
            if classification is not DeltaClass.FULL:
                return outcome("skipped", reason="not cached")

        if chain is not None and old_table is not None:
            stored = self.cache.get_partitions(old_key)
            if stored is not None and merkle_root(
                [p.get("digest", "") for p in stored]
            ) != merkle_root([p.get("digest", "") for p in chain]):
                logger.warning(
                    "incremental: provenance mismatch for %s (key=%s); "
                    "refusing to patch",
                    measure.name, old_key,
                )
                classification = DeltaClass.FULL
                old_table = None

        if classification is DeltaClass.FULL:
            return self._handle_full(
                measure, workflow, outcome, base_records, delta,
                new_key, new_chain, new_tables, dirty_sets,
            )

        if measure.is_basic:
            return self._patch_basic(
                measure, outcome, base_records, delta,
                old_key, old_table, new_key, new_chain,
                new_tables, dirty_sets, signature,
            )
        return self._patch_composite(
            measure, outcome, delta, old_table, new_key, new_chain,
            new_tables, dirty_sets, signature,
        )

    # -- patchable basics ---------------------------------------------------

    def _patch_basic(
        self, measure, outcome, base_records, delta,
        old_key, old_table, new_key, new_chain,
        new_tables, dirty_sets, signature,
    ):
        aggregate = measure.aggregate
        mapper = measure.granularity.coordinate_mapper()
        field_index = self.schema.field_index(measure.field)
        delta_values: dict[tuple, list] = {}
        for record in delta:
            delta_values.setdefault(mapper(record), []).append(
                record[field_index]
            )

        states = None
        if aggregate.name == "avg":
            states = self.cache.get_states(old_key)
            if states is None:
                states = self._rebuild_avg_states(
                    measure, base_records, mapper, field_index
                )
                if states is None:
                    return self._handle_full_fallback(
                        measure, outcome,
                        reason="avg entry has no states and no base "
                        "records to rebuild them from",
                    )

        new_values = dict(old_table.values)
        new_states = (
            {coords: list(state) for coords, state in states.items()}
            if states is not None
            else None
        )
        dirty: set = set()
        for coords, values in delta_values.items():
            old_value = old_table.get(coords, _MISSING)
            patched = _fold_exact(
                aggregate.name,
                old_value,
                new_states.get(coords) if new_states is not None else None,
                values,
            )
            if patched is None:
                return self._handle_full_fallback(
                    measure, outcome,
                    reason="delta or cached values outside the exact "
                    f"range for {aggregate.name}",
                )
            value, state = patched
            new_values[coords] = value
            if value != old_value:
                # Untouched coordinates keep their cached value, so the
                # fold loop is the whole diff -- no full-table scan.
                dirty.add(coords)
            if new_states is not None:
                new_states[coords] = state

        new_table = MeasureTable(measure.granularity, new_values)
        self.cache.put(
            new_key, new_table, measure.name,
            partitions=new_chain, states=new_states,
        )
        new_tables[signature] = new_table
        dirty_sets[signature] = dirty
        self.telemetry.inc("cache.patched")
        return outcome("patched", rows=len(new_table))

    def _rebuild_avg_states(self, measure, base_records, mapper, field_index):
        """Re-fold base records into ``[sum, count]`` states, once.

        Entries written by batch/serve flows carry finalized values
        only; the first append pays one scan of the base data for this
        measure and stores the states so every later append is
        O(delta).
        """
        if base_records is None:
            return None
        states: dict[tuple, list] = {}
        for record in base_records:
            coords = mapper(record)
            state = states.get(coords)
            if state is None:
                state = [0.0, 0]
                states[coords] = state
            state[0] += record[field_index]
            state[1] += 1
        return states

    # -- patchable/regional composites --------------------------------------

    def _patch_composite(
        self, measure, outcome, delta, old_table, new_key, new_chain,
        new_tables, dirty_sets, signature,
    ):
        sources = {}
        for edge in measure.inputs:
            source_signature = measure_signature(edge.source)
            table = new_tables.get(source_signature)
            if table is None:
                return outcome(
                    "skipped",
                    reason=f"source {edge.source.name!r} has no "
                    "maintained table",
                )
            sources[edge.source.name] = (table, source_signature)
            if edge.relationship is Relationship.ROLLUP and not (
                _exact_table_values(edge.aggregate.name, table.values)
            ):
                return self._handle_full_fallback(
                    measure, outcome,
                    reason="rollup source values outside the exact "
                    f"range for {edge.aggregate.name}",
                )

        # Single identity sibling window: the regional fast path.
        # Anchors whose extended range misses every dirty source region
        # keep their cached value; the rest are re-folded.
        only = measure.inputs[0]
        if (
            len(measure.inputs) == 1
            and only.relationship is Relationship.SIBLING
            and measure.effective_combine is IDENTITY
            and old_table is not None
        ):
            table, source_signature = sources[only.source.name]
            dirty = dirty_sets.get(source_signature)
            if dirty is not None:
                new_table, touched = sibling_window_patch(
                    table, only.window, only.aggregate, dirty, old_table
                )
                self.cache.put(
                    new_key, new_table, measure.name, partitions=new_chain
                )
                new_tables[signature] = new_table
                # Untouched anchors were copied verbatim, so the dirty
                # set only needs a scan of the touched ones.
                dirty_sets[signature] = {
                    coords
                    for coords in touched
                    if new_table.get(coords, _MISSING)
                    != old_table.get(coords, _MISSING)
                }
                self.telemetry.inc("cache.regional")
                return outcome(
                    "regional", rows=len(new_table), regions=len(touched)
                )

        anchors = None
        restricted = None
        relationships = {edge.relationship for edge in measure.inputs}
        if relationships <= {Relationship.SELF, Relationship.ALIGN}:
            if Relationship.SELF in relationships:
                # SELF edges anchor the candidate set themselves: the
                # intersection of their (already maintained) tables,
                # exactly :func:`align_candidates`' choice.
                for edge in measure.inputs:
                    if edge.relationship is not Relationship.SELF:
                        continue
                    coords = set(sources[edge.source.name][0].coords())
                    anchors = (
                        coords if anchors is None else anchors & coords
                    )
            elif old_table is None:
                return outcome(
                    "skipped", reason="pure-align measure without a "
                    "cached anchor set",
                )
            else:
                mapper = measure.granularity.coordinate_mapper()
                anchors = set(old_table.coords())
                anchors.update(mapper(record) for record in delta)
            if old_table is not None:
                restricted = self._dirty_anchors(
                    measure, sources, dirty_sets, anchors, old_table
                )

        tables = {name: table for name, (table, _) in sources.items()}
        if restricted is not None:
            # Only anchors reading a dirty source coordinate (or new to
            # the anchor set) can have moved; every other anchor keeps
            # its cached value verbatim -- its sources are unchanged
            # there -- so the copy is exact by construction.
            patched = compute_composite(
                measure, tables, candidates=restricted
            )
            values = dict(old_table.values)
            for coords in old_table.values.keys() - anchors:
                del values[coords]  # no longer anchored: vanished
            for coords in restricted - patched.values.keys():
                values.pop(coords, None)  # re-derived to no value
            values.update(patched.values)
            new_table = MeasureTable(measure.granularity, values)
            dirty = {
                coords
                for coords in restricted
                if patched.get(coords, _MISSING)
                != old_table.get(coords, _MISSING)
            }
            # Anchor sets only grow under appends, but guard exactness:
            # a cached coordinate no longer anchored has vanished.
            dirty.update(old_table.values.keys() - anchors)
            dirty_sets[signature] = dirty
        else:
            new_table = compute_composite(measure, tables, anchors)
            if old_table is not None:
                dirty_sets[signature] = _table_diff(old_table, new_table)
            else:
                dirty_sets[signature] = set(new_table.coords())
        self.cache.put(new_key, new_table, measure.name, partitions=new_chain)
        new_tables[signature] = new_table
        self.telemetry.inc("cache.derived")
        return outcome("derived", rows=len(new_table))

    def _dirty_anchors(self, measure, sources, dirty_sets, anchors, old_table):
        """Anchors whose recombination can differ from the cached value.

        An anchor re-reads each SELF source at its own coordinates and
        each ALIGN source at the anchor's rolled-up coordinates, so its
        value can only move when one of those coordinates is in the
        source's dirty set -- or when the anchor is new to the set.
        Returns ``None`` (recompute every anchor) when any source's
        dirty set is unknown.
        """
        per_edge = []
        target = measure.granularity
        for edge in measure.inputs:
            table, source_signature = sources[edge.source.name]
            dirty = dirty_sets.get(source_signature)
            if dirty is None:
                return None
            per_edge.append((edge, table.granularity, dirty))
        restricted = anchors - old_table.values.keys()
        for edge, grain, dirty in per_edge:
            if not dirty:
                continue
            if (
                edge.relationship is Relationship.SELF
                or grain.levels == target.levels
            ):
                restricted |= dirty & anchors
                continue
            # Expand each dirty coarse region into the fine coordinates
            # it covers and intersect with the anchor set -- O(dirty x
            # fanout) instead of rolling every anchor upward.  Falls
            # back to the full scan when a hierarchy cannot enumerate
            # children or the expansion outgrows the anchor set.
            expanded = self._expand_dirty(grain, target, dirty, anchors)
            if expanded is not None:
                restricted |= expanded & anchors
            else:
                roll_up = target.coords_mapper(grain)
                restricted.update(
                    a for a in anchors if roll_up(a) in dirty
                )
        return restricted

    @staticmethod
    def _expand_dirty(grain, target, dirty, anchors):
        """Refine dirty *grain*-level coords down to *target* coords.

        Returns ``None`` (scan instead) when children cannot be
        enumerated or the expansion exceeds twice the anchor count --
        past that the upward scan is the cheaper direction.
        """
        budget = 2 * len(anchors)
        expanded: set = set()
        for coords in dirty:
            fine = grain.refinements(coords, target, limit=budget)
            if fine is None:
                return None
            expanded.update(fine)
            if len(expanded) > budget:
                return None
        return expanded

    # -- full-class measures -------------------------------------------------

    def _handle_full(
        self, measure, workflow, outcome, base_records, delta,
        new_key, new_chain, new_tables, dirty_sets,
    ):
        if not self.recompute_full or base_records is None:
            self.telemetry.inc("cache.full")
            return outcome(
                "stale",
                reason="holistic/inexact measure; old entry left to "
                "age out",
            )
        evaluator = BlockEvaluator(subworkflow(workflow, [measure.name]))
        result = evaluator.evaluate(list(base_records) + list(delta))
        new_table = result[measure.name]
        self.cache.put(new_key, new_table, measure.name, partitions=new_chain)
        new_tables[measure_signature(measure)] = new_table
        dirty_sets[measure_signature(measure)] = set(new_table.coords())
        self.telemetry.inc("cache.full")
        return outcome("recomputed", rows=len(new_table))

    def _handle_full_fallback(self, measure, outcome, reason):
        """A runtime exactness gate tripped: demote to the full policy."""
        logger.info(
            "incremental: %s falls back to full recompute (%s)",
            measure.name, reason,
        )
        self.telemetry.inc("cache.full")
        if not self.recompute_full:
            return outcome("stale", reason=reason)
        return outcome("skipped", reason=reason)


# -- exactness gates ---------------------------------------------------------

def _is_exact_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _fold_exact(aggregate_name, old_value, state, values):
    """Fold *values* onto a cached value/state, or ``None`` if inexact.

    Returns ``(new_value, new_state)``.  The gates mirror the operator
    fast paths: integer arithmetic is exact at any magnitude in Python,
    ``avg`` additionally keeps its float sum inside the 2**53 mantissa
    range so the single finalize division sees the same operands a cold
    fold would.
    """
    if aggregate_name == "count":
        base = old_value if old_value is not _MISSING else 0
        return base + len(values), None
    if aggregate_name == "sum":
        if old_value is not _MISSING and not _is_exact_int(old_value):
            return None
        if not all(_is_exact_int(v) for v in values):
            return None
        base = old_value if old_value is not _MISSING else 0
        return base + sum(values), None
    if aggregate_name in ("min", "max"):
        pick = min if aggregate_name == "min" else max
        folded = pick(values)
        if old_value is _MISSING:
            return folded, None
        return pick(old_value, folded), None
    if aggregate_name == "avg":
        if state is None:
            if old_value is not _MISSING:
                return None
            state = [0.0, 0]
        if not all(_is_exact_int(v) for v in values):
            return None
        total = abs(state[0]) + sum(abs(v) for v in values)
        if total > _EXACT_FLOAT_BOUND or not float(state[0]).is_integer():
            return None
        new_state = [state[0], state[1]]
        for value in values:
            new_state[0] += value
            new_state[1] += 1
        return new_state[0] / new_state[1], new_state
    return None


def _exact_table_values(aggregate_name, values: dict) -> bool:
    """Whether re-folding a table is exact for *aggregate_name*.

    Patched tables iterate in a different order than cold-evaluated
    ones; a rollup over them is only bit-identical when the fold cannot
    round (exact integers, or pure selection/counting).
    """
    if aggregate_name == "count":
        return True
    if aggregate_name in ("min", "max"):
        return True
    if aggregate_name == "sum":
        return all(_is_exact_int(v) for v in values.values())
    if aggregate_name == "avg":
        total = 0
        for value in values.values():
            if not _is_exact_int(value):
                return False
            total += abs(value)
        return total <= _EXACT_FLOAT_BOUND
    return False


def _table_diff(old: MeasureTable, new: MeasureTable) -> set:
    """Coordinates whose value changed, appeared, or vanished."""
    changed = {
        coords
        for coords, value in new.items()
        if old.get(coords, _MISSING) != value
    }
    changed.update(coords for coords in old.coords() if coords not in new)
    return changed
