"""Content addressing for measures and datasets.

The measure cache (:mod:`repro.serving.cache`) stores materialized
measure tables under keys derived from *what was computed over which
data*, never from names or paths:

* :func:`measure_signature` hashes a measure's full defining subgraph --
  granularity, aggregate, combine expression, and every edge
  (relationship, window, per-edge aggregate) down to the basic measures.
  Measure **names never enter the hash**, so two queries defining the
  same computation under different names share one cache entry.
* :func:`dataset_fingerprint` hashes the schema shape plus every record,
  so any change to the data (or to the hierarchy levels coordinates are
  derived through) invalidates all entries for that dataset.
* :func:`cache_key` combines the two into the entry's address.

Append-only growth gets two extra primitives.  :class:`DatasetHasher`
maintains the same stream hash incrementally: feeding it the base
records and then a delta yields exactly the fingerprint of their
concatenation, so a daemon can track its dataset's identity in O(delta)
per append instead of rehashing history.  :func:`partition_digest`
hashes one append partition on its own; the per-partition digests chain
into a Merkle-style :func:`merkle_root` that cache entries carry as
provenance, letting incremental maintenance detect out-of-order or
overlapping appends (a mismatched history is recomputed, never patched).

Signatures identify aggregate functions and combine expressions by
their registered names (``sum``, ``ratio``, ...), which is exact for
the built-ins; user-defined functions must keep a name's semantics
stable for cache hits to be sound.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.cube.records import Record, Schema
from repro.mapreduce.dfs import DistributedFile
from repro.query.measures import Measure

__all__ = [
    "DatasetHasher",
    "cache_key",
    "dataset_fingerprint",
    "measure_signature",
    "merkle_root",
    "partition_digest",
]


def measure_signature(measure: Measure) -> str:
    """A name-independent structural hash of one measure's definition.

    Two measures get the same signature exactly when they compute the
    same thing: same granularity, same aggregate/combine functions, and
    structurally identical source subgraphs (recursively, ignoring every
    measure name along the way).
    """
    return _signature(measure, {})


def _signature(measure: Measure, memo: dict[int, str]) -> str:
    cached = memo.get(id(measure))
    if cached is not None:
        return cached
    levels = ",".join(measure.granularity.levels)
    if measure.is_basic:
        text = (
            f"basic|{levels}|{measure.field}|{measure.aggregate.name}"
        )
    else:
        edges = []
        for edge in measure.inputs:
            window = (
                f"{edge.window.attribute}:{edge.window.low}:"
                f"{edge.window.high}"
                if edge.window is not None
                else "-"
            )
            aggregate = (
                edge.aggregate.name if edge.aggregate is not None else "-"
            )
            edges.append(
                f"{edge.relationship.value}|{window}|{aggregate}|"
                f"{_signature(edge.source, memo)}"
            )
        combine = measure.effective_combine
        text = (
            f"composite|{levels}|{combine.name}/{combine.arity}|"
            + ";".join(edges)
        )
    digest = hashlib.sha256(text.encode()).hexdigest()[:32]
    memo[id(measure)] = digest
    return digest


def _schema_descriptor(schema: Schema) -> str:
    """The schema shape that region coordinates depend on."""
    parts = []
    for attribute in schema.attributes:
        levels = ",".join(
            f"{level.name}@{level.depth}"
            for level in attribute.hierarchy.levels
        )
        parts.append(f"{attribute.name}({levels})")
    return "|".join(parts) + "|facts:" + ",".join(schema.facts)


def dataset_fingerprint(
    data: Sequence[Record] | Iterable[Record] | DistributedFile,
    schema: Schema,
) -> str:
    """A content hash of *data* under *schema*.

    Streams every record through SHA-256 (records are plain tuples with
    stable ``repr``), prefixed by the schema's attribute/level shape, so
    the fingerprint changes whenever the records or the hierarchy
    structure coordinates are computed through change.
    """
    hasher = hashlib.sha256()
    hasher.update(_schema_descriptor(schema).encode())
    records = data.records() if isinstance(data, DistributedFile) else data
    count = 0
    for record in records:
        hasher.update(repr(record).encode())
        count += 1
    hasher.update(f"|n={count}".encode())
    return hasher.hexdigest()[:32]


class DatasetHasher:
    """Incrementally maintained :func:`dataset_fingerprint`.

    The batch fingerprint streams ``schema descriptor, record reprs,
    |n=count`` through one SHA-256.  That shape is deliberately
    append-friendly: the count lands only in the *final* block, so a
    hasher fed the base records and then a delta finalizes -- via a
    throwaway ``copy()`` -- to exactly ``dataset_fingerprint(base +
    delta)``.  The daemon keeps one of these per dataset and pays
    O(len(delta)) per append while its cache keys stay interchangeable
    with every batch and cold-start flow.
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self.count = 0
        self._hasher = hashlib.sha256()
        self._hasher.update(_schema_descriptor(schema).encode())

    def update(self, records: Iterable[Record]) -> int:
        """Absorb *records*; returns how many were absorbed."""
        absorbed = 0
        for record in records:
            self._hasher.update(repr(record).encode())
            absorbed += 1
        self.count += absorbed
        return absorbed

    def fingerprint(self) -> str:
        """The fingerprint of everything absorbed so far.

        Non-destructive: finalizes a copy, so more records may still be
        absorbed afterwards.
        """
        final = self._hasher.copy()
        final.update(f"|n={self.count}".encode())
        return final.hexdigest()[:32]


def partition_digest(
    records: Sequence[Record] | Iterable[Record], schema: Schema
) -> str:
    """A content hash of one append partition on its own.

    Unlike :func:`dataset_fingerprint` this identifies a *slice* of the
    dataset independent of everything before it; cache entries record
    the digest chain of the partitions they were built from.
    """
    hasher = hashlib.sha256()
    hasher.update(b"partition|")
    hasher.update(_schema_descriptor(schema).encode())
    count = 0
    for record in records:
        hasher.update(repr(record).encode())
        count += 1
    hasher.update(f"|n={count}".encode())
    return hasher.hexdigest()[:32]


def merkle_root(digests: Sequence[str]) -> str:
    """Chain per-partition digests into one provenance root.

    Order-sensitive by construction (appends are ordered events):
    ``merkle_root([a, b])`` differs from ``merkle_root([b, a])``, and
    any replayed or dropped partition changes the root.  The empty
    chain has a fixed root so "no partitions recorded" is itself a
    verifiable statement.
    """
    root = hashlib.sha256(b"merkle|").hexdigest()[:32]
    for digest in digests:
        root = hashlib.sha256(f"{root}|{digest}".encode()).hexdigest()[:32]
    return root


def cache_key(fingerprint: str, measure: Measure) -> str:
    """The cache address of *measure* materialized over *fingerprint*."""
    text = f"{fingerprint}|{measure_signature(measure)}"
    return hashlib.sha256(text.encode()).hexdigest()[:32]
