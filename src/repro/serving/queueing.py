"""The daemon's bounded priority ready-queue.

Dispatched share groups wait here for a worker slot.  The queue is
deliberately *bounded*: accepting more work than the service can finish
only converts overload into unbounded latency, so past ``max_depth``
the daemon sheds instead of queueing (the explicit-backpressure half of
the robustness story -- see :mod:`repro.serving.daemon`).

Ordering is ``(priority, deadline, arrival sequence)``: lower priority
values run first, earlier deadlines break ties, and FIFO breaks the
rest, so two equal-priority groups never starve each other.  The queue
is a plain in-process structure -- the daemon touches it only from the
event-loop thread.
"""

from __future__ import annotations

import heapq
import math
from typing import Generic, Optional, TypeVar

__all__ = ["BoundedPriorityQueue"]

T = TypeVar("T")


class BoundedPriorityQueue(Generic[T]):
    """A depth-bounded min-heap of ``(priority, deadline, seq, item)``."""

    def __init__(self, max_depth: int):
        if max_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.max_depth = max_depth
        self._heap: list[tuple[float, float, int, T]] = []
        self._seq = 0
        #: Offers rejected because the queue was at depth.
        self.rejected = 0
        #: High-water mark of the depth, for the serve report.
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.max_depth

    def offer(
        self,
        item: T,
        priority: float = 0.0,
        deadline: Optional[float] = None,
    ) -> bool:
        """Enqueue *item*; ``False`` (counted) when at depth."""
        if self.full:
            self.rejected += 1
            return False
        self._seq += 1
        heapq.heappush(
            self._heap,
            (
                priority,
                math.inf if deadline is None else deadline,
                self._seq,
                item,
            ),
        )
        self.peak_depth = max(self.peak_depth, len(self._heap))
        return True

    def take(self) -> Optional[T]:
        """Pop the most urgent item, or ``None`` when empty."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def drain(self) -> list[T]:
        """Pop everything, most urgent first."""
        items = []
        while self._heap:
            items.append(heapq.heappop(self._heap)[3])
        return items
