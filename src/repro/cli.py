"""Command-line interface.

Ten subcommands, most operating on workflow scripts in the textual
query language (see :mod:`repro.query.parser`):

* ``repro demo`` -- run the paper's weblog example end to end;
* ``repro plan QUERY.cq`` -- show the derived distribution keys, the
  candidate schemes and the optimizer's choice, without evaluating;
* ``repro explain QUERY.cq`` -- the optimizer's full decision trail:
  per-measure key derivation, every candidate with its provenance and
  rejection reason, the clustering-factor cost curve, and the sampled
  dispatch tallies; rendered as text, JSON, or Graphviz DOT.  With
  ``--batch A.cq B.cq ...`` it instead shows the batch planner's
  share-group formation trail: which queries share one shuffle and why;
* ``repro run QUERY.cq`` -- evaluate the query over generated data on
  the simulated cluster, printing the execution report (optionally
  exporting results to CSV);
* ``repro batch A.cq B.cq ...`` -- co-evaluate several queries: the
  batch planner partitions them into share groups, each group runs as
  ONE map/shuffle/reduce, and ``--cache-dir DIR`` persists materialized
  measures across runs so repeated batches skip already-computed work;
  per-query answers are bit-identical to standalone ``run``s;
* ``repro append`` -- incremental view maintenance: generate the data
  as watermarked partitions, warm the measure cache on the first, then
  *append* the rest one at a time, patching cached answers forward
  (delta fold for distributive/algebraic measures, bounded regional
  repair for sibling windows) instead of recomputing; ``--verify``
  asserts every maintained table is bit-identical to a cold recompute,
  and ``--manifest`` records the per-measure maintenance report
  (schema v8 ``incremental`` section);
* ``repro trace QUERY.cq --out trace.json`` -- evaluate with full
  tracing: writes a Chrome trace-event file (open in Perfetto or
  ``chrome://tracing``), a run manifest (including the cost-model
  calibration report), and optionally the raw span events as JSONL;
  ``repro trace --spans SPANS.jsonl --query TRACE_ID`` instead views
  per-query span trees recorded by ``serve --trace-spans`` (or a
  flight-recorder bundle), rendering one query's causal tree as ASCII
  or exporting it as Chrome trace JSON with ``--chrome``;
* ``repro stats MANIFEST.json`` -- summarize a previously written run
  manifest (schemas v1-v8, including batch/cache/worker/serving/
  tracing/slo/incremental sections; manifests newer than the reader
  degrade to the known fields with a one-line warning);
  ``repro stats --watch TELEMETRY.jsonl`` instead tails a live
  telemetry log and re-renders the dashboard until the final frame;
* ``repro diff A.json B.json`` -- compare two run manifests field by
  field and flag regressions beyond a threshold (exit status 1 when
  any are found);
* ``repro top`` -- the live dashboard over a telemetry JSONL log:
  ``--follow LOG`` tails a log a concurrent ``run --telemetry LOG`` is
  writing (refreshing in place on a tty), ``--replay LOG`` renders a
  finished log frame by frame.

``run`` and ``trace`` also take ``--chaos SEED`` (inject a seeded
random :class:`~repro.faults.FaultPlan` -- crashes, task failures,
stragglers, lost partitions -- and print the per-phase recovery
accounting) and ``--fail-machines 0,3`` (mark machines dead before the
run; if every replica of a block lands on dead machines the run aborts
with an actionable one-line error).  ``run``/``trace``/``batch`` take
``--telemetry FILE`` (stream live telemetry frames to a JSONL log that
``repro top`` can follow), ``--prom FILE`` (write a Prometheus
text-format snapshot of the final telemetry state), and ``run``/
``trace`` take ``--profile FILE`` (sample the driver's wall-clock
stacks and write collapsed stacks for flame graphs).

Every subcommand takes ``--verbose``/``-v`` (repeatable) and
``--quiet``/``-q`` to control the ``repro.*`` log level.  Built-in
schemas: ``weblog`` (Keyword/PageCount/AdCount/Time, Table I) and
``paper`` (the Section VI synthetic schema); ``append`` also accepts
``streaming`` (the weblog schema at minute resolution, paired with the
built-in S1-S4 maintainable query suite).  Invoke as
``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import Optional, Sequence

from repro.cube.records import Schema
from repro.distribution.derive import candidate_keys, minimal_feasible_key
from repro.faults import FaultPlan, FaultPlanError, RetriesExhaustedError
from repro.io.serialize import write_result_csv
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.dfs import DataUnavailableError
from repro.mapreduce.timing import ClusterConfig
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    configure_logging,
    diff_manifests,
    explain_plan,
    progress_sink,
    render_dot,
    render_text,
    write_chrome_trace,
    write_jsonl,
)
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.parallel.executor import ExecutionConfig, ParallelEvaluator
from repro.parallel.naive import NaiveEvaluator
from repro.query.parser import QueryParseError, parse_workflow
from repro.query.workflow import Workflow, connected_components


def _build_schema(name: str, days: int) -> Schema:
    if name == "weblog":
        from repro.workload.weblog import weblog_schema

        return weblog_schema(days=days)
    if name == "paper":
        from repro.workload.generator import paper_schema

        return paper_schema(days=days, temporal_base="minute")
    raise SystemExit(f"unknown schema {name!r}; choose 'weblog' or 'paper'")


def _generate_records(schema_name: str, schema: Schema, n: int, seed: int,
                      skew: bool):
    if schema_name == "weblog":
        from repro.workload.weblog import generate_sessions

        if skew:
            print(
                "note: --skew only applies to the 'paper' schema; "
                "generating regular weblog sessions",
                file=sys.stderr,
            )
        return generate_sessions(schema, n, seed=seed)
    from repro.workload.generator import generate_skewed, generate_uniform

    if skew:
        return generate_skewed(schema, n, seed=seed)
    return generate_uniform(schema, n, seed=seed)


def _load_workflow(path: str, schema: Schema) -> Workflow:
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read query file: {exc}")
    try:
        return parse_workflow(text, schema)
    except QueryParseError as exc:
        raise SystemExit(f"{path}: {exc}")


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress (-v: info, -vv: debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors",
    )


def _configure_logging(args) -> None:
    """Apply the ``-v``/``-q`` flags to the ``repro`` logger tree."""
    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    configure_logging(level)


def _add_common_arguments(
    parser: argparse.ArgumentParser,
    multi: bool = False,
    optional_query: bool = False,
) -> None:
    _add_logging_arguments(parser)
    if multi:
        parser.add_argument(
            "query", nargs="+", help="workflow script file(s) (.cq)"
        )
    elif optional_query:
        parser.add_argument(
            "query", nargs="?",
            help="workflow script file (.cq); omit with --spans",
        )
    else:
        parser.add_argument("query", help="workflow script file (.cq)")
    parser.add_argument(
        "--schema", default="weblog", choices=("weblog", "paper"),
        help="built-in schema to parse the query against",
    )
    parser.add_argument(
        "--days", type=int, default=2,
        help="temporal range of the schema, in days",
    )
    parser.add_argument(
        "--records", type=int, default=50_000,
        help="number of synthetic records to generate",
    )
    parser.add_argument(
        "--machines", type=int, default=20,
        help="machines in the simulated cluster",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--skew", action="store_true",
        help="use the skewed data distribution (paper schema only)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chaos", type=int, metavar="SEED",
        help=(
            "inject a seeded random fault plan (machine crashes, task "
            "failures, stragglers, lost partitions); same seed, same chaos"
        ),
    )
    parser.add_argument(
        "--fail-machines", metavar="LIST", default="",
        help="comma-separated machine ids to mark dead before the run",
    )


def _parse_fail_machines(spec: str) -> list[int]:
    if not spec.strip():
        return []
    try:
        return [int(part) for part in spec.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(
            f"--fail-machines: expected comma-separated integers, got {spec!r}"
        )


def _build_cluster(args) -> SimulatedCluster:
    """Cluster for ``run``/``trace``, with static failures and chaos."""
    cluster = SimulatedCluster(ClusterConfig(machines=args.machines))
    for machine in _parse_fail_machines(args.fail_machines):
        try:
            cluster.fail_machine(machine)
        except (ValueError, RuntimeError) as exc:
            raise SystemExit(f"--fail-machines: {exc}")
    if args.chaos is not None:
        plan = FaultPlan.random(args.chaos, args.machines)
        try:
            cluster.install_faults(plan)
        except FaultPlanError as exc:
            raise SystemExit(f"--chaos: {exc}")
        print(f"chaos: {plan.describe()}")
    return cluster


def _evaluate_or_die(evaluator, workflow, records, cluster):
    """Evaluate, turning unrecoverable failures into actionable errors."""
    try:
        return evaluator.evaluate(workflow, records)
    except DataUnavailableError as exc:
        down = sorted(cluster.failed_machines)
        raise SystemExit(
            f"error: data unavailable -- {exc} "
            f"(machines down: {down or 'none'}; replication factor is "
            f"{cluster.config.replication}: restore a machine with fewer "
            f"failures, or rebuild the DFS with higher replication)"
        )
    except RetriesExhaustedError as exc:
        raise SystemExit(
            f"error: fault injection exceeded the retry budget -- {exc} "
            f"(raise RetryPolicy.max_attempts, pick a tamer --chaos seed, "
            f"or use on_exhaustion='degrade')"
        )


def _print_fault_report(job) -> None:
    """One recovery line per phase when the run executed under chaos."""
    faults = getattr(job, "faults", None)
    if not faults:
        return
    for phase in ("map", "reduce"):
        stats = faults.get(phase)
        if not stats:
            continue
        print(
            f"recovery[{phase}]: {stats['attempts']} attempts for "
            f"{stats['tasks']} tasks, {stats['retries']} retries, "
            f"{stats['crash_kills']} crash kills, "
            f"{stats['speculative_launched']} speculative "
            f"({stats['speculative_wins']} won), "
            f"{stats['exhausted_tasks']} exhausted"
        )


#: ``--columnar`` choice -> ExecutionConfig/OptimizerConfig value.
_COLUMNAR_CHOICES = {"auto": None, "on": True, "off": False}


def _add_kernels_argument(parser: argparse.ArgumentParser) -> None:
    from repro.kernels import KERNEL_MODES

    parser.add_argument(
        "--kernels", choices=KERNEL_MODES, default="auto",
        help="compiled inner-loop kernels: 'auto' uses numba when "
             "installed, 'on' requires it, 'off' forces the NumPy "
             "fallback (results are bit-identical either way)",
    )


def _kernels_mode(args: argparse.Namespace) -> str:
    from repro.kernels import NUMBA_AVAILABLE

    if args.kernels == "on" and not NUMBA_AVAILABLE:
        raise SystemExit(
            "--kernels on requires the optional numba backend "
            "(pip install 'repro[kernels]'); use 'auto' or 'off'"
        )
    return args.kernels


def _add_telemetry_arguments(
    parser: argparse.ArgumentParser, profile: bool = True
) -> None:
    parser.add_argument(
        "--telemetry", metavar="FILE",
        help="stream live telemetry frames to this JSONL log "
             "(follow it with 'repro top --follow FILE')",
    )
    parser.add_argument(
        "--prom", metavar="FILE",
        help="write a Prometheus text-format snapshot of the final "
             "telemetry state (requires --telemetry)",
    )
    if profile:
        parser.add_argument(
            "--profile", metavar="FILE",
            help="sample driver wall-clock stacks during evaluation and "
                 "write collapsed stacks (flamegraph.pl/speedscope input)",
        )


def _make_telemetry(args):
    """``(registry, log_writer)`` for the run, or ``(None, None)``."""
    if getattr(args, "prom", None) and not getattr(args, "telemetry", None):
        raise SystemExit("--prom requires --telemetry")
    if not getattr(args, "telemetry", None):
        return None, None
    from repro.obs.exposition import TelemetryLogWriter
    from repro.obs.telemetry import TelemetryRegistry

    registry = TelemetryRegistry()
    try:
        writer = TelemetryLogWriter(args.telemetry)
    except OSError as exc:
        raise SystemExit(f"cannot write telemetry log: {exc}")
    registry.attach(writer)
    return registry, writer


def _finish_telemetry(args, registry, writer) -> None:
    """Write the terminal frame and the optional Prometheus snapshot."""
    if registry is None:
        return
    writer.close(registry)
    print(f"wrote {writer.frames_written} telemetry frames to "
          f"{args.telemetry}")
    if getattr(args, "prom", None):
        from repro.obs.exposition import prometheus_text

        try:
            with open(args.prom, "w") as handle:
                handle.write(prometheus_text(registry))
        except OSError as exc:
            raise SystemExit(f"cannot write Prometheus snapshot: {exc}")
        print(f"wrote Prometheus snapshot to {args.prom}")


class _MaybeProfiler:
    """Context manager running the wall profiler when ``--profile`` asks."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._profiler = None

    def __enter__(self):
        if self.path:
            from repro.obs.sampler import WallProfiler

            self._profiler = WallProfiler().__enter__()
        return self

    def __exit__(self, *exc):
        if self._profiler is None:
            return
        self._profiler.stop()
        try:
            self._profiler.write_collapsed(self.path)
        except OSError as error:
            raise SystemExit(f"cannot write profile: {error}")
        print(
            f"wrote {self._profiler.samples} profile samples "
            f"({len(self._profiler.collapsed())} stacks) to {self.path}"
        )


def _cmd_plan(args) -> int:
    schema = _build_schema(args.schema, args.days)
    workflow = _load_workflow(args.query, schema)
    print("Workflow:")
    print(workflow.describe())

    if args.tree:
        from repro.query.render import to_ascii

        print("\nDependency tree:")
        print(to_ascii(workflow))
    if args.dot:
        from repro.query.render import to_dot

        with open(args.dot, "w") as handle:
            handle.write(to_dot(workflow))
        print(f"\nwrote Graphviz source to {args.dot}")
    if args.explain:
        from repro.query.render import explain_derivation

        print()
        print(explain_derivation(workflow))

    components = connected_components(workflow)
    optimizer = Optimizer(OptimizerConfig())
    for index, component in enumerate(components):
        if len(components) > 1:
            print(f"\nComponent {index}: {list(component.names)}")
        minimal = minimal_feasible_key(component)
        print(f"\nminimal feasible key: {minimal!r}")
        print("candidates:")
        for key in candidate_keys(component):
            scheme, load = optimizer.cost_candidate(
                key, args.records, args.machines
            )
            factors = scheme.clustering_factors or "-"
            print(
                f"  {key!r}: cf={factors} blocks={scheme.num_blocks()} "
                f"predicted max load={load:.0f}"
            )
        plan = optimizer.plan(component, args.records, args.machines)
        print("chosen:", plan.describe())
    return 0


def _load_batch_queries(paths: Sequence[str], schema: Schema) -> dict:
    """Parse each file; query names are the file stems, which must be
    unique within one batch."""
    queries: dict[str, Workflow] = {}
    for path in paths:
        name = os.path.splitext(os.path.basename(path))[0]
        if name in queries:
            raise SystemExit(
                f"duplicate query name {name!r}: batch query files need "
                "distinct base names"
            )
        queries[name] = _load_workflow(path, schema)
    return queries


def _explain_batch(args, schema: Schema) -> str:
    """The batch planner's decision trail for ``explain --batch``."""
    from repro.serving import BatchPlanner, MeasureCache

    queries = _load_batch_queries(args.query, schema)
    records = _generate_records(
        args.schema, schema, args.records, args.seed, args.skew
    )
    cluster = SimulatedCluster(ClusterConfig(machines=args.machines))
    columnar = _COLUMNAR_CHOICES[args.columnar]
    cache = MeasureCache(args.cache_dir) if args.cache_dir else None
    planner = BatchPlanner(
        Optimizer(OptimizerConfig(columnar=columnar)), cache
    )
    plan = planner.plan(queries, records, cluster.reduce_slots)
    if args.format == "json":
        return json.dumps(plan.to_dict(), indent=2, sort_keys=True)
    return plan.describe()


def _cmd_explain(args) -> int:
    if args.machines < 1:
        raise SystemExit("--machines must be at least 1")
    if args.records < 0:
        raise SystemExit("--records must be non-negative")
    schema = _build_schema(args.schema, args.days)
    if len(args.query) > 1 and not args.batch:
        raise SystemExit(
            "several query files given; use --batch to explain how they "
            "would share jobs"
        )
    if args.batch:
        if args.format == "dot":
            raise SystemExit("--format dot is not supported with --batch")
        payload = _explain_batch(args, schema)
    else:
        query_path = args.query[0]
        workflow = _load_workflow(query_path, schema)
        cluster = SimulatedCluster(ClusterConfig(machines=args.machines))
        columnar = _COLUMNAR_CHOICES[args.columnar]
        config = OptimizerConfig(
            use_sampling=args.sampling, columnar=columnar
        )
        records = None
        if args.sampling:
            # Sampled dispatch judges candidates on real data; generate
            # the same dataset 'run' would use for these arguments.
            records = _generate_records(
                args.schema, schema, args.records, args.seed, args.skew
            )
        explanation = explain_plan(
            workflow,
            n_records=args.records,
            num_reducers=cluster.reduce_slots,
            config=config,
            records=records,
            query=query_path,
        )
        if args.format == "json":
            payload = json.dumps(
                explanation.to_dict(), indent=2, sort_keys=True
            )
        elif args.format == "dot":
            payload = render_dot(explanation)
        else:
            payload = render_text(explanation)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(payload + "\n")
        except OSError as exc:
            raise SystemExit(f"cannot write {args.out}: {exc}")
        print(f"wrote {args.format} explanation to {args.out}")
    else:
        print(payload)
    return 0


def _cmd_run(args) -> int:
    if args.machines < 1:
        raise SystemExit("--machines must be at least 1")
    if args.records < 0:
        raise SystemExit("--records must be non-negative")
    schema = _build_schema(args.schema, args.days)
    workflow = _load_workflow(args.query, schema)
    records = _generate_records(
        args.schema, schema, args.records, args.seed, args.skew
    )
    cluster = _build_cluster(args)
    telemetry, telemetry_writer = _make_telemetry(args)

    if args.naive:
        if telemetry is not None or args.profile:
            raise SystemExit(
                "--telemetry/--profile are not supported with --naive"
            )
        outcome = _evaluate_or_die(
            NaiveEvaluator(cluster), workflow, records, cluster
        )
        print(outcome.describe())
        result = outcome.result
    else:
        columnar = _COLUMNAR_CHOICES[args.columnar]
        config = ExecutionConfig(
            early_aggregation=args.early_aggregation,
            columnar=columnar,
            kernels=_kernels_mode(args),
            optimizer=OptimizerConfig(
                use_sampling=args.sampling, columnar=columnar
            ),
        )
        with _MaybeProfiler(args.profile):
            outcome = _evaluate_or_die(
                ParallelEvaluator(cluster, config, telemetry=telemetry),
                workflow, records, cluster,
            )
        _finish_telemetry(args, telemetry, telemetry_writer)
        print(outcome.describe())
        _print_fault_report(outcome.job)
        bars = outcome.breakdown.cumulative()
        print(
            "breakdown:",
            "  ".join(f"{stage}={value:.4f}s" for stage, value in bars.items()),
        )
        if args.gantt:
            from repro.mapreduce.trace import render_gantt

            print()
            print(render_gantt(
                outcome.job.map_trace, cluster.map_slots,
                title="map phase:",
            ))
            print()
            print(render_gantt(
                outcome.job.reduce_trace, cluster.reduce_slots,
                title="reduce phase:",
            ))
        result = outcome.result

    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            rows = write_result_csv(result, handle)
        print(f"wrote {rows} rows to {args.csv}")
    return 0


def _cmd_batch(args) -> int:
    if args.machines < 1:
        raise SystemExit("--machines must be at least 1")
    if args.records < 0:
        raise SystemExit("--records must be non-negative")
    if args.group_retries < 0:
        raise SystemExit("--group-retries must be non-negative")
    from repro.serving import (
        BatchEvaluator,
        BatchExecutionError,
        MeasureCache,
    )

    schema = _build_schema(args.schema, args.days)
    queries = _load_batch_queries(args.query, schema)
    records = _generate_records(
        args.schema, schema, args.records, args.seed, args.skew
    )
    cluster = _build_cluster(args)
    cache = MeasureCache(args.cache_dir) if args.cache_dir else None
    columnar = _COLUMNAR_CHOICES[args.columnar]
    config = ExecutionConfig(
        columnar=columnar,
        kernels=_kernels_mode(args),
        optimizer=OptimizerConfig(columnar=columnar),
    )
    metrics = MetricsRegistry()
    telemetry, telemetry_writer = _make_telemetry(args)
    evaluator = BatchEvaluator(
        cluster,
        config,
        metrics=metrics,
        cache=cache,
        group_retries=args.group_retries,
        telemetry=telemetry,
    )
    try:
        outcome = evaluator.evaluate(queries, records)
    except BatchExecutionError as exc:
        if exc.partial is not None:
            print(exc.partial.describe())
        raise SystemExit(f"error: {exc}")
    except DataUnavailableError as exc:
        down = sorted(cluster.failed_machines)
        raise SystemExit(
            f"error: data unavailable -- {exc} "
            f"(machines down: {down or 'none'})"
        )

    _finish_telemetry(args, telemetry, telemetry_writer)
    print(outcome.describe())
    for name in sorted(outcome.results):
        result = outcome.results[name]
        print(f"  {name}: {result.total_rows()} result rows")
    for job in outcome.jobs:
        _print_fault_report(job.job)

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)
        for name in sorted(outcome.results):
            path = os.path.join(args.csv_dir, f"{name}.csv")
            with open(path, "w", newline="") as handle:
                rows = write_result_csv(outcome.results[name], handle)
            print(f"wrote {rows} rows to {path}")
    if args.manifest:
        manifest = RunManifest.from_batch(
            outcome,
            cluster_config=cluster.config,
            execution_config=config,
            metrics=metrics,
        )
        try:
            manifest.write(args.manifest)
        except OSError as exc:
            raise SystemExit(f"cannot write manifest: {exc}")
        print(f"wrote run manifest to {args.manifest}")
    return 0


def _append_partitions(args, schema: Schema) -> list:
    """The append flow's data, as a list of record partitions.

    The ``streaming`` schema uses the watermarked session stream (each
    partition confined to its own time slice); the batch schemas
    generate one dataset and cut it into contiguous chunks, which still
    exercises every maintenance path -- just with unbounded dirty
    regions.
    """
    if args.schema == "streaming":
        from repro.workload.streaming import session_stream

        per_partition = max(1, args.records // args.partitions)
        return list(
            session_stream(
                schema, args.partitions, per_partition, seed=args.seed
            )
        )
    records = _generate_records(
        args.schema, schema, args.records, args.seed, args.skew
    )
    size = max(1, len(records) // args.partitions)
    chunks = [
        records[start:start + size]
        for start in range(0, len(records), size)
    ]
    # Fold a short tail chunk into the last full partition.
    if len(chunks) > args.partitions:
        chunks[args.partitions - 1].extend(
            record for chunk in chunks[args.partitions:] for record in chunk
        )
        del chunks[args.partitions:]
    return chunks


def _cmd_append(args) -> int:
    if args.machines < 1:
        raise SystemExit("--machines must be at least 1")
    if args.records < 1:
        raise SystemExit("--records must be positive")
    if args.partitions < 2:
        raise SystemExit(
            "--partitions must be at least 2 (one base + one append)"
        )
    from repro.local.sortscan import evaluate_centralized
    from repro.serving import (
        BatchEvaluator,
        BatchExecutionError,
        DatasetHasher,
        IncrementalMaintainer,
        MeasureCache,
        cache_key,
        partition_digest,
    )

    if args.schema == "streaming":
        from repro.workload.streaming import streaming_schema

        schema = streaming_schema(days=args.days)
    else:
        schema = _build_schema(args.schema, args.days)
    if args.query:
        queries = _load_batch_queries(args.query, schema)
    elif args.schema == "streaming":
        from repro.workload.streaming import streaming_query

        queries = {"stream": streaming_query(schema)}
    else:
        raise SystemExit(
            "a query file is required unless --schema streaming "
            "(which has a built-in maintainable query suite)"
        )

    partitions = _append_partitions(args, schema)
    base = partitions[0]
    cache = MeasureCache(args.cache_dir or None)
    columnar = _COLUMNAR_CHOICES[args.columnar]
    config = ExecutionConfig(
        columnar=columnar,
        kernels=_kernels_mode(args),
        optimizer=OptimizerConfig(columnar=columnar),
    )
    cluster_config = ClusterConfig(machines=args.machines)
    telemetry, telemetry_writer = _make_telemetry(args)

    if not args.no_warm:
        cluster = SimulatedCluster(cluster_config)
        evaluator = BatchEvaluator(
            cluster, config, cache=cache, telemetry=telemetry
        )
        try:
            evaluator.evaluate(queries, base)
        except BatchExecutionError as exc:
            raise SystemExit(f"error warming the cache: {exc}")
        print(
            f"warmed cache on partition 0 "
            f"({len(base)} records, {cache.stats.stores} stores)"
        )

    maintainer = IncrementalMaintainer(
        cache, schema, telemetry=telemetry,
        recompute_full=args.recompute_full,
    )
    workflows = list(queries.values())
    hasher = DatasetHasher(schema)
    hasher.update(base)
    fingerprint = hasher.fingerprint()
    history = [
        {"digest": partition_digest(base, schema), "n_records": len(base)}
    ]
    records = list(base)
    report = None
    for index, delta in enumerate(partitions[1:], start=1):
        old_fingerprint = fingerprint
        hasher.update(delta)
        fingerprint = hasher.fingerprint()
        report = maintainer.apply(
            workflows, records, delta,
            old_fingerprint, fingerprint, history=history,
        )
        print(f"partition {index}:")
        print(report.summary())
        history.append({
            "digest": report.partition, "n_records": len(delta),
        })
        records.extend(delta)
    _finish_telemetry(args, telemetry, telemetry_writer)

    verified = None
    if args.verify:
        verified = True
        compared = absent = 0
        for name, workflow in queries.items():
            cold = evaluate_centralized(workflow, records)
            for measure in workflow.measures:
                cached = cache.get(
                    cache_key(fingerprint, measure), measure.granularity
                )
                if cached is None:
                    absent += 1
                    continue
                compared += 1
                if cached.values != cold[measure.name].values:
                    verified = False
                    print(
                        f"VERIFY FAILED: {name}.{measure.name} diverges "
                        f"from the cold recompute"
                    )
        if verified:
            print(
                f"verify: {compared} maintained tables bit-identical to "
                f"a cold recompute over {len(records)} records"
                + (f" ({absent} not maintained)" if absent else "")
            )

    if args.manifest and report is not None:
        manifest = RunManifest.from_append(
            report,
            cluster_config=cluster_config,
            execution_config=config,
            partitions=len(history),
            verified=verified,
            telemetry=(
                telemetry.snapshot(final=True)
                if telemetry is not None
                else None
            ),
        )
        try:
            manifest.write(args.manifest)
        except OSError as exc:
            raise SystemExit(f"cannot write manifest: {exc}")
        print(f"wrote run manifest to {args.manifest}")
    return 1 if verified is False else 0


def _cmd_loadgen(args) -> int:
    if args.rate <= 0:
        raise SystemExit("--rate must be positive")
    if args.duration <= 0:
        raise SystemExit("--duration must be positive")
    from repro.serving import generate_arrivals, write_trace

    schema = _build_schema(args.schema, args.days)
    queries = _load_batch_queries(args.query, schema)
    arrivals = generate_arrivals(
        sorted(queries),
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        tenants=args.tenants,
        deadline_ms=args.deadline_ms,
        deadline_jitter=args.deadline_jitter,
    )
    try:
        write_trace(arrivals, args.out)
    except OSError as exc:
        raise SystemExit(f"cannot write trace: {exc}")
    tenants = sorted({arrival.tenant for arrival in arrivals})
    print(
        f"wrote {len(arrivals)} arrivals over {args.duration:g}s "
        f"({len(tenants)} tenants, rate {args.rate:g}/s, "
        f"seed {args.seed}) to {args.out}"
    )
    return 0


def _cmd_serve(args) -> int:
    if args.machines < 1:
        raise SystemExit("--machines must be at least 1")
    if args.records < 0:
        raise SystemExit("--records must be non-negative")
    if args.speed < 0:
        raise SystemExit("--speed must be non-negative (0 = no pacing)")
    from repro.serving import (
        MeasureCache,
        QueryService,
        ServiceLimits,
        TenantQuotas,
        generate_arrivals,
        read_trace,
        serve_arrivals,
    )

    schema = _build_schema(args.schema, args.days)
    catalog = _load_batch_queries(args.query, schema)
    records = _generate_records(
        args.schema, schema, args.records, args.seed, args.skew
    )

    if args.trace:
        try:
            arrivals = read_trace(args.trace)
        except OSError as exc:
            raise SystemExit(f"cannot read trace: {exc}")
    else:
        arrivals = generate_arrivals(
            sorted(catalog),
            rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            tenants=args.tenants,
            deadline_ms=args.deadline_ms,
        )
    if args.arrival_chaos is not None:
        from repro.faults import ArrivalChaos, apply_arrival_chaos

        arrivals = apply_arrival_chaos(
            arrivals,
            ArrivalChaos.storm(
                args.arrival_chaos, intensity=args.storm_intensity
            ),
        )
    unknown = sorted(
        {arrival.query for arrival in arrivals} - set(catalog)
    )
    if unknown:
        raise SystemExit(
            f"trace references queries not in the catalog: "
            f"{', '.join(unknown)}"
        )

    cache = None
    if args.cache_dir or args.max_cache_bytes or args.cache_ttl:
        cache = MeasureCache(
            args.cache_dir or None,
            max_bytes=args.max_cache_bytes,
            ttl=args.cache_ttl,
        )
    limits = ServiceLimits(
        max_queue_depth=args.queue_depth,
        max_inflight=args.max_inflight,
        max_pending=args.max_pending,
        admission_window_ms=args.window_ms,
        merge_patience=args.merge_patience,
        max_group_size=args.max_group_size,
    )
    quotas = TenantQuotas(
        capacity=args.quota_capacity, rate=args.quota_rate
    )
    columnar = _COLUMNAR_CHOICES[args.columnar]
    config = ExecutionConfig(
        columnar=columnar,
        kernels=_kernels_mode(args),
        optimizer=OptimizerConfig(columnar=columnar),
    )
    cluster_config = ClusterConfig(machines=args.machines)
    telemetry, telemetry_writer = _make_telemetry(args)

    # The trace plane: per-query span trees (JSONL sink), the flight
    # recorder, and per-tenant SLO burn tracking.
    query_tracer = None
    flight = None
    span_handle = None
    if args.trace_spans or args.flight_dir:
        from repro.obs.flight import FlightRecorder
        from repro.obs.tracectx import QueryTracer

        flight = FlightRecorder(directory=args.flight_dir or None)
        sink = None
        if args.trace_spans:
            try:
                span_handle = open(
                    args.trace_spans, "w", encoding="utf-8"
                )
            except OSError as exc:
                raise SystemExit(f"cannot write span file: {exc}")

            def sink(span: dict, _handle=span_handle) -> None:
                _handle.write(json.dumps(span) + "\n")
                _handle.flush()

        query_tracer = QueryTracer(
            sink=sink, flight=flight, process="daemon"
        )
    slo = None
    if args.slo_ms is not None or args.slo:
        from repro.obs.slo import SloPolicy, SloTracker

        per_tenant = {}
        for spec in args.slo or []:
            tenant, _, objective = spec.partition("=")
            try:
                per_tenant[tenant] = SloPolicy(float(objective))
            except ValueError:
                raise SystemExit(
                    f"bad --slo spec {spec!r}; expected TENANT=MS"
                )
        default = None
        if args.slo_ms is not None:
            try:
                default = SloPolicy(args.slo_ms)
            except ValueError as exc:
                raise SystemExit(f"bad --slo-ms: {exc}")
        slo = SloTracker(default=default, per_tenant=per_tenant)

    service = QueryService(
        catalog,
        records,
        cluster_factory=lambda: SimulatedCluster(cluster_config),
        config=config,
        cache=cache,
        limits=limits,
        quotas=quotas,
        telemetry=telemetry,
        tracer=query_tracer,
        slo=slo,
        flight=flight,
    )
    try:
        responses, report = serve_arrivals(
            service,
            arrivals,
            speed=args.speed,
            install_signals=True,
        )
    finally:
        if span_handle is not None:
            span_handle.close()
    _finish_telemetry(args, telemetry, telemetry_writer)

    print(report.summary())
    by_status: dict[str, int] = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    print(
        "statuses: "
        + ", ".join(
            f"{status}={count}"
            for status, count in sorted(by_status.items())
        )
    )
    latency = report.latency_ms
    if latency.get("count"):
        print(
            f"latency: p50 {latency['p50']:.1f}ms, "
            f"p95 {latency['p95']:.1f}ms, p99 {latency['p99']:.1f}ms, "
            f"max {latency['max']:.1f}ms"
        )
    ledgers = service.ledgers.to_dict()
    if ledgers.get("total"):
        print(
            f"ledger: {ledgers['total']} queries attributed, "
            f"{ledgers['complete']} within tolerance"
        )
    if slo is not None:
        for tenant, section in sorted(
            slo.snapshot()["tenants"].items()
        ):
            print(
                f"slo {tenant}: {section['good']} good / "
                f"{section['bad']} bad, "
                f"burn {section['burn_rate']:.2f}x"
            )
    if args.trace_spans:
        print(f"wrote per-query spans to {args.trace_spans}")
    if flight is not None and flight.dump_paths:
        print(
            f"flight recorder dumped {len(flight.dump_paths)} "
            f"bundle(s): {', '.join(flight.dump_paths)}"
        )
    if cache is not None and args.cache_spill and cache.directory is None:
        spilled = cache.spill_to(args.cache_spill)
        print(f"spilled {spilled} cache entries to {args.cache_spill}")
    if args.manifest:
        manifest = RunManifest.from_serve(
            report,
            cluster_config=cluster_config,
            execution_config=config,
            telemetry=(
                telemetry.snapshot(final=True)
                if telemetry is not None
                else None
            ),
            tracing=ledgers,
            slo=slo.snapshot() if slo is not None else None,
        )
        try:
            manifest.write(args.manifest)
        except OSError as exc:
            raise SystemExit(f"cannot write manifest: {exc}")
        print(f"wrote run manifest to {args.manifest}")
    return 0


def _default_manifest_path(out: str) -> str:
    """Derive the manifest path from the trace path.

    ``/tmp/trace.json`` becomes ``/tmp/trace.manifest.json``; paths
    without a ``.json`` suffix just get ``.manifest.json`` appended.
    """
    if out.endswith(".json"):
        return out[: -len(".json")] + ".manifest.json"
    return out + ".manifest.json"


def _cmd_trace_view(args) -> int:
    """View mode: read spans from disk instead of running a query."""
    from repro.obs.traceview import (
        collect_trace,
        find_orphans,
        iter_spans,
        list_traces,
        render_trace,
        write_trace_chrome,
    )

    try:
        spans = list(iter_spans(args.spans, tail=args.tail))
    except OSError as exc:
        raise SystemExit(f"cannot read span file: {exc}")
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"{args.spans}: not a span file ({exc})")
    if not spans:
        print("(no spans)")
        return 0
    if args.query_id is None:
        traces = list_traces(spans)
        orphans = find_orphans(spans)
        line = f"{len(spans)} spans across {len(traces)} traces"
        if orphans:
            line += f", {len(orphans)} orphaned"
        print(line)
        for trace_id, entry in sorted(traces.items()):
            print(
                f"  {trace_id:<20} {entry['spans']:>4} spans"
                f"  root={entry['root'] or '?'}"
            )
        print(
            f"render one with: repro trace --spans {args.spans} "
            "--query <trace-id>"
        )
        return 0
    print(render_trace(spans, args.query_id))
    if args.chrome:
        tree = collect_trace(spans, args.query_id)
        if not tree:
            raise SystemExit(f"no spans for trace {args.query_id}")
        try:
            n_events = write_trace_chrome(tree, args.chrome)
        except OSError as exc:
            raise SystemExit(f"cannot write chrome trace: {exc}")
        print(
            f"wrote {n_events} trace events to {args.chrome} "
            "(open at https://ui.perfetto.dev or chrome://tracing)"
        )
    return 0


def _cmd_trace(args) -> int:
    if args.spans:
        return _cmd_trace_view(args)
    if not args.query:
        raise SystemExit(
            "a query file is required unless --spans is given"
        )
    if args.machines < 1:
        raise SystemExit("--machines must be at least 1")
    if args.records < 0:
        raise SystemExit("--records must be non-negative")
    schema = _build_schema(args.schema, args.days)
    workflow = _load_workflow(args.query, schema)
    records = _generate_records(
        args.schema, schema, args.records, args.seed, args.skew
    )
    cluster = _build_cluster(args)

    tracer = Tracer(
        on_event=progress_sink() if args.verbose else None
    )
    metrics = MetricsRegistry()
    columnar = _COLUMNAR_CHOICES[args.columnar]
    config = ExecutionConfig(
        early_aggregation=args.early_aggregation,
        columnar=columnar,
        kernels=_kernels_mode(args),
        optimizer=OptimizerConfig(
            use_sampling=args.sampling, columnar=columnar
        ),
    )
    telemetry, telemetry_writer = _make_telemetry(args)
    evaluator = ParallelEvaluator(
        cluster, config, tracer=tracer, metrics=metrics,
        telemetry=telemetry,
    )
    with _MaybeProfiler(args.profile):
        outcome = _evaluate_or_die(evaluator, workflow, records, cluster)
    _finish_telemetry(args, telemetry, telemetry_writer)
    print(outcome.describe())
    _print_fault_report(outcome.job)

    try:
        with open(args.query) as handle:
            query_text = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read query file: {exc}")
    try:
        n_events = write_chrome_trace(tracer.events, args.out)
    except OSError as exc:
        raise SystemExit(f"cannot write trace: {exc}")
    print(
        f"wrote {n_events} trace events to {args.out} "
        "(open at https://ui.perfetto.dev or chrome://tracing)"
    )
    manifest_path = args.manifest or _default_manifest_path(args.out)
    manifest = RunManifest.from_result(
        outcome,
        query=query_text,
        cluster_config=cluster.config,
        execution_config=config,
        metrics=metrics,
        telemetry=telemetry.snapshot(final=True) if telemetry else {},
    )
    try:
        manifest.write(manifest_path)
    except OSError as exc:
        raise SystemExit(f"cannot write manifest: {exc}")
    print(f"wrote run manifest to {manifest_path}")
    if args.events:
        try:
            n_spans = write_jsonl(tracer.events, args.events)
        except OSError as exc:
            raise SystemExit(f"cannot write span events: {exc}")
        print(f"wrote {n_spans} span events to {args.events}")
    return 0


def _load_manifest_or_die(path: str) -> RunManifest:
    """Load a manifest, turning any bad input into a one-line error."""
    try:
        return RunManifest.load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read manifest: {exc}")
    except (ValueError, TypeError, KeyError) as exc:
        raise SystemExit(f"{path}: not a run manifest ({exc})")


def _cmd_stats(args) -> int:
    if args.watch:
        return _follow_telemetry(
            args.manifest, interval=0.5, title="repro stats --watch"
        )
    manifest = _load_manifest_or_die(args.manifest)
    print(manifest.summary())
    return 0


def _follow_telemetry(
    path: str, interval: float = 0.5, title: str = "repro top"
) -> int:
    """Tail a telemetry JSONL log, re-rendering on every new frame.

    Stops when the writer emits its terminal ``final`` frame or on
    Ctrl-C.  A missing file is not an error: the run may not have
    started yet, so we keep polling.
    """
    from repro.obs.exposition import read_telemetry_frames
    from repro.obs.top import render_frame

    last_seq = None
    try:
        while True:
            newest = None
            try:
                for frame in read_telemetry_frames(path):
                    newest = frame
            except OSError:
                newest = None
            if newest is not None:
                key = (newest.get("seq"), bool(newest.get("final")))
                if key != last_seq:
                    last_seq = key
                    if sys.stdout.isatty():  # pragma: no cover - terminal
                        sys.stdout.write("\x1b[2J\x1b[H")
                    print(render_frame(newest, title=title))
                    sys.stdout.flush()
                if newest.get("final"):
                    return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def _cmd_top(args) -> int:
    if args.interval <= 0:
        raise SystemExit("--interval must be positive")
    if args.replay:
        from repro.obs.exposition import read_telemetry_frames
        from repro.obs.top import render_replay

        try:
            frames = list(read_telemetry_frames(args.replay))
        except OSError as exc:
            raise SystemExit(f"cannot read telemetry log: {exc}")
        print(render_replay(frames, last_only=args.last))
        return 0
    return _follow_telemetry(args.follow, interval=args.interval)


def _cmd_diff(args) -> int:
    if args.threshold < 0:
        raise SystemExit("--threshold must be non-negative")
    manifest_a = _load_manifest_or_die(args.run_a)
    manifest_b = _load_manifest_or_die(args.run_b)
    diff = diff_manifests(
        manifest_a,
        manifest_b,
        threshold=args.threshold,
        a_label=args.run_a,
        b_label=args.run_b,
    )
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.describe())
    return 1 if diff.has_regressions else 0


def _run_demo() -> int:
    """The quickstart weblog run, inline (no dependency on examples/)."""
    from repro.workload.weblog import (
        generate_sessions,
        weblog_query,
        weblog_schema,
    )

    schema = weblog_schema(days=1)
    workflow = weblog_query(schema)
    records = generate_sessions(schema, 50_000, seed=42)
    cluster = SimulatedCluster(ClusterConfig(machines=10))
    outcome = ParallelEvaluator(cluster).evaluate(workflow, records)
    print(workflow.describe())
    print()
    print(outcome.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel evaluation of composite aggregate queries "
            "(ICDE 2008 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="derive and cost distribution schemes")
    _add_common_arguments(plan)
    plan.add_argument(
        "--explain", action="store_true",
        help="show the per-measure key derivation steps",
    )
    plan.add_argument(
        "--tree", action="store_true",
        help="print the workflow as a dependency tree",
    )
    plan.add_argument(
        "--dot", metavar="FILE",
        help="write Graphviz source of the workflow to FILE",
    )
    plan.set_defaults(handler=_cmd_plan)

    explain = sub.add_parser(
        "explain", help="show the optimizer's full decision trail"
    )
    _add_common_arguments(explain, multi=True)
    explain.add_argument(
        "--batch", action="store_true",
        help="explain batch planning over several query files: share-"
             "group formation, merge verdicts, and cache pruning",
    )
    explain.add_argument(
        "--cache-dir", metavar="DIR",
        help="measure-cache directory to probe for --batch pruning",
    )
    explain.add_argument(
        "--sampling", action="store_true",
        help="include the skew handler's sampled-dispatch decision",
    )
    explain.add_argument(
        "--columnar", choices=sorted(_COLUMNAR_CHOICES), default="auto",
        help="columnar mode for sampled dispatch (matches 'run')",
    )
    explain.add_argument(
        "--format", choices=("text", "json", "dot"), default="text",
        help="output rendering (default: text)",
    )
    explain.add_argument(
        "--out", metavar="FILE",
        help="write the explanation to FILE instead of stdout",
    )
    explain.set_defaults(handler=_cmd_explain)

    run = sub.add_parser("run", help="evaluate a query on the simulator")
    _add_common_arguments(run)
    _add_fault_arguments(run)
    run.add_argument(
        "--naive", action="store_true",
        help="use the Section I per-measure baseline",
    )
    run.add_argument(
        "--early-aggregation", action="store_true",
        help="pre-aggregate basic measures in the mappers",
    )
    run.add_argument(
        "--sampling", action="store_true",
        help="pick the plan by sampled simulated dispatch",
    )
    run.add_argument(
        "--columnar", choices=sorted(_COLUMNAR_CHOICES), default="auto",
        help="batched map side: 'auto' enables it when every aggregate "
             "is vectorized, 'on'/'off' force it (results are identical)",
    )
    _add_kernels_argument(run)
    run.add_argument("--csv", help="export results to this CSV file")
    run.add_argument(
        "--gantt", action="store_true",
        help="draw slot-utilization charts of the map and reduce phases",
    )
    _add_telemetry_arguments(run)
    run.set_defaults(handler=_cmd_run)

    batch = sub.add_parser(
        "batch",
        help="co-evaluate several queries, sharing shuffles and a "
             "cross-run measure cache",
    )
    _add_common_arguments(batch, multi=True)
    _add_fault_arguments(batch)
    batch.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist materialized measures here; a second run against "
             "the same data reuses them and skips the computation",
    )
    batch.add_argument(
        "--columnar", choices=sorted(_COLUMNAR_CHOICES), default="auto",
        help="batched map side: 'auto' enables it when every aggregate "
             "is vectorized, 'on'/'off' force it (results are identical)",
    )
    _add_kernels_argument(batch)
    batch.add_argument(
        "--group-retries", type=int, default=1, metavar="N",
        help="in-line retries per failing share group (default: 1)",
    )
    batch.add_argument(
        "--csv-dir", metavar="DIR",
        help="export each query's results as DIR/<query>.csv",
    )
    batch.add_argument(
        "--manifest", metavar="FILE",
        help="write a run manifest (share groups, cache stats)",
    )
    _add_telemetry_arguments(batch, profile=False)
    batch.set_defaults(handler=_cmd_batch)

    append = sub.add_parser(
        "append",
        help="incremental view maintenance: warm the cache on one "
             "partition, append the rest, patch cached answers forward",
    )
    _add_logging_arguments(append)
    append.add_argument(
        "query", nargs="*",
        help="workflow script file(s) (.cq); optional with "
             "--schema streaming (built-in S1-S4 suite)",
    )
    append.add_argument(
        "--schema", default="streaming",
        choices=("weblog", "paper", "streaming"),
        help="built-in schema; 'streaming' is the weblog schema at "
             "minute resolution with watermarked partitions "
             "(default: streaming)",
    )
    append.add_argument(
        "--days", type=int, default=1,
        help="temporal range of the schema, in days",
    )
    append.add_argument(
        "--records", type=int, default=20_000,
        help="total records across all partitions",
    )
    append.add_argument(
        "--partitions", type=int, default=4,
        help="data partitions: the first warms the cache, the rest "
             "arrive as appends (default: 4)",
    )
    append.add_argument(
        "--machines", type=int, default=20,
        help="machines in the simulated cluster (cache warm-up only)",
    )
    append.add_argument("--seed", type=int, default=42)
    append.add_argument(
        "--skew", action="store_true",
        help="use the skewed data distribution (paper schema only)",
    )
    append.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist the measure cache here (default: in-memory)",
    )
    append.add_argument(
        "--no-warm", action="store_true",
        help="skip the warm-up batch run; appends then only report "
             "classifications (nothing is cached to patch)",
    )
    append.add_argument(
        "--recompute-full", action="store_true",
        help="re-evaluate holistic (full-class) measures immediately "
             "instead of leaving their entries to age out",
    )
    append.add_argument(
        "--verify", action="store_true",
        help="after the last append, recompute every query cold and "
             "assert the maintained tables are bit-identical "
             "(exit status 1 on divergence)",
    )
    append.add_argument(
        "--columnar", choices=sorted(_COLUMNAR_CHOICES), default="auto",
        help="batched map side for the warm-up run",
    )
    _add_kernels_argument(append)
    append.add_argument(
        "--manifest", metavar="FILE",
        help="write a run manifest with the last append's maintenance "
             "report (schema v8 'incremental' section)",
    )
    _add_telemetry_arguments(append, profile=False)
    append.set_defaults(handler=_cmd_append)

    loadgen = sub.add_parser(
        "loadgen",
        help="generate a seeded open-loop multi-tenant arrival trace "
             "for 'repro serve'",
    )
    _add_logging_arguments(loadgen)
    loadgen.add_argument(
        "query", nargs="+", help="workflow script file(s) (.cq)"
    )
    loadgen.add_argument(
        "--schema", default="weblog", choices=("weblog", "paper"),
        help="built-in schema to parse the queries against",
    )
    loadgen.add_argument(
        "--days", type=int, default=2,
        help="temporal range of the schema, in days",
    )
    loadgen.add_argument(
        "--rate", type=float, default=20.0,
        help="mean arrivals per second (Poisson)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0,
        help="trace length in seconds",
    )
    loadgen.add_argument("--seed", type=int, default=42)
    loadgen.add_argument(
        "--tenants", type=int, default=4,
        help="number of simulated tenants (uniform weights)",
    )
    loadgen.add_argument(
        "--deadline-ms", type=float, default=None,
        help="attach this per-query deadline to every arrival",
    )
    loadgen.add_argument(
        "--deadline-jitter", type=float, default=0.0,
        help="fuzz deadlines by up to this fraction (+/-)",
    )
    loadgen.add_argument(
        "--out", metavar="FILE", required=True,
        help="write the JSONL arrival trace here",
    )
    loadgen.set_defaults(handler=_cmd_loadgen)

    serve = sub.add_parser(
        "serve",
        help="run the always-on query daemon against an arrival trace: "
             "admission-windowed sharing, shedding, deadlines, drain",
    )
    _add_common_arguments(serve, multi=True)
    serve.add_argument(
        "--trace", metavar="FILE",
        help="replay this loadgen JSONL trace (default: generate one "
             "from --rate/--duration)",
    )
    serve.add_argument(
        "--rate", type=float, default=20.0,
        help="arrival rate when generating the trace inline",
    )
    serve.add_argument(
        "--duration", type=float, default=3.0,
        help="trace length when generating inline, seconds",
    )
    serve.add_argument(
        "--tenants", type=int, default=4,
        help="tenants when generating the trace inline",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query deadline when generating the trace inline",
    )
    serve.add_argument(
        "--speed", type=float, default=1.0,
        help="replay speed multiplier (0 submits as fast as possible)",
    )
    serve.add_argument(
        "--window-ms", type=float, default=50.0,
        help="admission window: how long a query may wait for share "
             "partners (default: 50)",
    )
    serve.add_argument(
        "--merge-patience", type=int, default=4,
        help="dispatch a held group after this many consecutive "
             "arrivals declined to join it",
    )
    serve.add_argument(
        "--max-group-size", type=int, default=8,
        help="members per share group before immediate dispatch",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="bounded ready-queue depth (past it: shed)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=2,
        help="concurrent group executions (worker slots)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="queries in the system before submits shed",
    )
    serve.add_argument(
        "--quota-capacity", type=float, default=None,
        help="per-tenant token-bucket burst capacity (default: "
             "quotas off)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=10.0,
        help="per-tenant token refill rate per second",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="persist materialized measures here across runs",
    )
    serve.add_argument(
        "--cache-spill", metavar="DIR",
        help="persist a memory-backed cache here on drain",
    )
    serve.add_argument(
        "--max-cache-bytes", type=int, default=None,
        help="evict least-recently-used cache entries past this size",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=None,
        help="expire cache entries older than this many seconds",
    )
    serve.add_argument(
        "--arrival-chaos", type=int, metavar="SEED", default=None,
        help="perturb the trace with a seeded arrival storm (bursts, "
             "tenant floods, duplicate submissions)",
    )
    serve.add_argument(
        "--storm-intensity", type=float, default=0.2,
        help="probability scale of the arrival storm (default: 0.2)",
    )
    serve.add_argument(
        "--columnar", choices=sorted(_COLUMNAR_CHOICES), default="auto",
        help="batched map side; results are identical either way",
    )
    _add_kernels_argument(serve)
    serve.add_argument(
        "--manifest", metavar="FILE",
        help="write the drain manifest (serving + tracing + slo "
             "sections, schema v8)",
    )
    serve.add_argument(
        "--trace-spans", metavar="FILE",
        help="write every query's trace spans as JSONL to FILE "
             "(view them with 'repro trace --spans FILE')",
    )
    serve.add_argument(
        "--flight-dir", metavar="DIR",
        help="enable the flight recorder: dump span bundles here on "
             "error, shed storm, deadline miss, or SIGUSR2",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=None, metavar="MS",
        help="default per-tenant latency objective (p99-style target "
             "0.99); enables SLO burn tracking",
    )
    serve.add_argument(
        "--slo", action="append", metavar="TENANT=MS",
        help="per-tenant latency objective override (repeatable)",
    )
    _add_telemetry_arguments(serve, profile=False)
    serve.set_defaults(handler=_cmd_serve)

    trace = sub.add_parser(
        "trace",
        help="evaluate a query with tracing and export the trace; or, "
             "with --spans, view per-query span trees from a serve run",
    )
    _add_common_arguments(trace, optional_query=True)
    _add_fault_arguments(trace)
    trace.add_argument(
        "--spans", metavar="FILE",
        help="view mode: read spans (serve --trace-spans JSONL, or a "
             "flight-recorder bundle) instead of running a query",
    )
    trace.add_argument(
        "--query", dest="query_id", metavar="TRACE_ID",
        help="with --spans: render this query's causal span tree",
    )
    trace.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="with --spans: only consider the last N spans "
             "(bounded memory on huge span files)",
    )
    trace.add_argument(
        "--chrome", metavar="FILE",
        help="with --spans --query: also export the collected tree "
             "as Chrome trace JSON",
    )
    trace.add_argument(
        "--out", default="trace.json",
        help="Chrome trace-event output file (default: trace.json)",
    )
    trace.add_argument(
        "--manifest", metavar="FILE",
        help="run-manifest output file (default: <out>.manifest.json)",
    )
    trace.add_argument(
        "--events", metavar="FILE",
        help="also dump the raw span events as JSONL to FILE",
    )
    trace.add_argument(
        "--early-aggregation", action="store_true",
        help="pre-aggregate basic measures in the mappers",
    )
    trace.add_argument(
        "--sampling", action="store_true",
        help="pick the plan by sampled simulated dispatch",
    )
    trace.add_argument(
        "--columnar", choices=sorted(_COLUMNAR_CHOICES), default="auto",
        help="batched map side: 'auto' enables it when every aggregate "
             "is vectorized, 'on'/'off' force it (results are identical)",
    )
    _add_kernels_argument(trace)
    _add_telemetry_arguments(trace)
    trace.set_defaults(handler=_cmd_trace)

    stats = sub.add_parser(
        "stats", help="summarize a run manifest written by 'trace'"
    )
    _add_logging_arguments(stats)
    stats.add_argument(
        "manifest",
        help="manifest JSON file to summarize (telemetry JSONL log "
             "with --watch)",
    )
    stats.add_argument(
        "--watch", action="store_true",
        help="treat the argument as a telemetry JSONL log and tail it, "
             "re-rendering the live dashboard until the final frame",
    )
    stats.set_defaults(handler=_cmd_stats)

    top = sub.add_parser(
        "top",
        help="live dashboard over a telemetry JSONL log "
             "(written by run/trace/batch --telemetry)",
    )
    _add_logging_arguments(top)
    top_source = top.add_mutually_exclusive_group(required=True)
    top_source.add_argument(
        "--follow", metavar="LOG",
        help="tail LOG while a run writes it, refreshing in place",
    )
    top_source.add_argument(
        "--replay", metavar="LOG",
        help="render a finished LOG frame by frame",
    )
    top.add_argument(
        "--last", action="store_true",
        help="with --replay, render only the final frame",
    )
    top.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="with --follow, polling interval (default: 0.5)",
    )
    top.set_defaults(handler=_cmd_top)

    diff = sub.add_parser(
        "diff", help="compare two run manifests and flag regressions"
    )
    _add_logging_arguments(diff)
    diff.add_argument("run_a", help="baseline manifest JSON file")
    diff.add_argument("run_b", help="candidate manifest JSON file")
    diff.add_argument(
        "--threshold", type=float, default=0.05, metavar="FRACTION",
        help="relative slack on lower-is-better fields before a change "
             "counts as a regression (default: 0.05; 0 for exact)",
    )
    diff.add_argument(
        "--json", action="store_true",
        help="emit the full delta table as JSON instead of text",
    )
    diff.set_defaults(handler=_cmd_diff)

    demo = sub.add_parser("demo", help="run the paper's weblog example")
    _add_logging_arguments(demo)
    demo.set_defaults(handler=lambda _args: _run_demo())

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # A downstream pager/head closed our stdout; exit quietly like
        # standard Unix tools instead of dumping a traceback.  Point
        # stdout at devnull so interpreter shutdown does not re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
