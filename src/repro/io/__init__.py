"""Serialization of workflows and results; CSV data loading."""

from repro.io.csv_loader import (
    CsvFormatError,
    LoadReport,
    dump_csv,
    load_csv,
)
from repro.io.serialize import (
    SerializationError,
    result_from_dict,
    result_to_dict,
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
    workflow_to_script,
    write_result_csv,
)

__all__ = [
    "CsvFormatError",
    "LoadReport",
    "SerializationError",
    "dump_csv",
    "load_csv",
    "result_from_dict",
    "result_to_dict",
    "workflow_from_dict",
    "workflow_from_json",
    "workflow_to_dict",
    "workflow_to_json",
    "workflow_to_script",
    "write_result_csv",
]
