"""Loading record bags from CSV files.

Real deployments read fact tables, not synthetic generators.  The loader
maps each CSV column onto a schema field: numeric dimensions and facts
parse as numbers; nominal dimensions (mapping hierarchies) are encoded
through the hierarchy's value table, so the CSV can carry the original
strings (``java``, ``store-03``) rather than integer codes.

Rejected rows (wrong arity, unknown nominal values, out-of-range
numerics) raise by default or are counted and skipped with
``on_error="skip"``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import IO, Callable

from repro.cube.domains import MappingHierarchy
from repro.cube.records import Record, Schema


class CsvFormatError(ValueError):
    """A CSV row cannot be mapped onto the schema."""


@dataclass
class LoadReport:
    """Outcome of one CSV load."""

    loaded: int
    skipped: int
    errors: list[str]


def _column_decoder(schema: Schema, name: str) -> Callable[[str], object]:
    """Decoder for one schema field, by name."""
    for index, attr in enumerate(schema.attributes):
        if attr.name != name:
            continue
        hierarchy = attr.hierarchy
        if isinstance(hierarchy, MappingHierarchy):
            encode = hierarchy.encode

            def decode_nominal(text: str, encode=encode, name=name):
                try:
                    return encode[text]
                except KeyError:
                    raise CsvFormatError(
                        f"unknown {name} value {text!r}"
                    ) from None

            return decode_nominal
        cardinality = hierarchy.base.cardinality

        def decode_numeric(text: str, cardinality=cardinality, name=name):
            try:
                value = int(text)
            except ValueError:
                raise CsvFormatError(
                    f"{name} value {text!r} is not an integer"
                ) from None
            if not 0 <= value < cardinality:
                raise CsvFormatError(
                    f"{name} value {value} outside [0, {cardinality})"
                )
            return value

        return decode_numeric

    if name in schema.facts:

        def decode_fact(text: str, name=name):
            try:
                return int(text)
            except ValueError:
                pass
            try:
                return float(text)  # covers 1.5, 1e5, +2E3, inf
            except ValueError:
                raise CsvFormatError(
                    f"fact {name} value {text!r} is not numeric"
                ) from None

        return decode_fact
    raise CsvFormatError(f"schema has no field {name!r}")


def load_csv(
    stream: IO[str],
    schema: Schema,
    on_error: str = "raise",
) -> tuple[list[Record], LoadReport]:
    """Read records from a CSV with a header row naming schema fields.

    Columns may appear in any order but must cover every schema field.
    ``on_error="skip"`` drops bad rows (recorded in the report) instead
    of raising.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError("on_error must be 'raise' or 'skip'")
    reader = csv.reader(stream)
    try:
        header = next(reader)
    except StopIteration:
        raise CsvFormatError("empty CSV: no header row") from None

    field_order = [attr.name for attr in schema.attributes] + list(
        schema.facts
    )
    missing = set(field_order) - set(header)
    if missing:
        raise CsvFormatError(f"CSV header is missing fields {sorted(missing)}")
    decoders = [
        (header.index(name), _column_decoder(schema, name))
        for name in field_order
    ]

    records: list[Record] = []
    skipped = 0
    errors: list[str] = []
    for line_number, row in enumerate(reader, start=2):
        try:
            if len(row) != len(header):
                raise CsvFormatError(
                    f"expected {len(header)} columns, got {len(row)}"
                )
            records.append(
                tuple(decode(row[index]) for index, decode in decoders)
            )
        except CsvFormatError as exc:
            if on_error == "raise":
                raise CsvFormatError(f"line {line_number}: {exc}") from None
            skipped += 1
            if len(errors) < 20:
                errors.append(f"line {line_number}: {exc}")
    return records, LoadReport(
        loaded=len(records), skipped=skipped, errors=errors
    )


def dump_csv(records, schema: Schema, stream: IO[str]) -> int:
    """Write records as CSV (nominal dimensions decoded to strings)."""
    writer = csv.writer(stream)
    names = [attr.name for attr in schema.attributes] + list(schema.facts)
    writer.writerow(names)
    decoders = []
    for attr in schema.attributes:
        hierarchy = attr.hierarchy
        if isinstance(hierarchy, MappingHierarchy):
            table = hierarchy.decode[0]
            decoders.append(lambda value, table=table: table[value])
        else:
            decoders.append(lambda value: value)
    decoders.extend([lambda value: value] * len(schema.facts))
    for record in records:
        writer.writerow(
            [decode(value) for decode, value in zip(decoders, record)]
        )
    return len(records) if isinstance(records, list) else -1
