"""Serialization of workflows and results.

Workflows round-trip through three representations:

* a plain dict (:func:`workflow_to_dict` / :func:`workflow_from_dict`),
  suitable for JSON transport and tooling;
* the textual query language (:func:`workflow_to_script`), which
  :func:`repro.query.parser.parse_workflow` reads back;
* the in-memory :class:`~repro.query.workflow.Workflow` itself.

Aggregate functions serialize by registry name, so parameterized ones
(quantiles, sketches) must have been instantiated in the target process
before loading.  Combine expressions serialize by name and resolve
against the parser's built-ins plus a user-supplied mapping; anonymous
lambdas are rejected at save time rather than silently dropped.

Result sets export to JSON (with granularity metadata) and CSV rows.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Mapping

from repro.cube.records import Schema
from repro.cube.regions import Granularity
from repro.local.measure_table import MeasureTable, ResultSet
from repro.query.builder import WorkflowBuilder
from repro.query.functions import Expression, get_function
from repro.query.measures import Measure, Relationship
from repro.query.parser import BUILTIN_EXPRESSIONS
from repro.query.workflow import Workflow


class SerializationError(ValueError):
    """A workflow or result cannot be (de)serialized faithfully."""


# ---------------------------------------------------------------------------
# Workflow <-> dict
# ---------------------------------------------------------------------------

def _grain_to_dict(granularity: Granularity) -> dict[str, str]:
    return {
        attr: granularity.level_of(attr)
        for attr in granularity.non_all_attributes()
    }


def _expression_name(measure: Measure, known: Mapping[str, Expression]) -> str | None:
    if measure.combine is None:
        return None
    name = measure.combine.name
    if name not in known:
        raise SerializationError(
            f"measure {measure.name!r} combines with {name!r}, which is "
            "not a named expression; register it in the expressions "
            "mapping to serialize this workflow"
        )
    return name


def workflow_to_dict(
    workflow: Workflow,
    expressions: Mapping[str, Expression] | None = None,
) -> dict:
    """A JSON-safe description of *workflow* (schema not included)."""
    known = dict(BUILTIN_EXPRESSIONS)
    if expressions:
        known.update(expressions)
    measures = []
    for measure in workflow.topological_order():
        entry: dict = {
            "name": measure.name,
            "over": _grain_to_dict(measure.granularity),
        }
        if measure.is_basic:
            entry["field"] = measure.field
            entry["aggregate"] = measure.aggregate.name
        else:
            entry["inputs"] = [
                {
                    "source": edge.source.name,
                    "relationship": edge.relationship.value,
                    **(
                        {
                            "window": {
                                "attribute": edge.window.attribute,
                                "low": edge.window.low,
                                "high": edge.window.high,
                            }
                        }
                        if edge.window is not None
                        else {}
                    ),
                    **(
                        {"aggregate": edge.aggregate.name}
                        if edge.aggregate is not None
                        else {}
                    ),
                }
                for edge in measure.inputs
            ]
            combine = _expression_name(measure, known)
            if combine is not None:
                entry["combine"] = combine
        measures.append(entry)
    return {"measures": measures}


def workflow_from_dict(
    data: Mapping,
    schema: Schema,
    expressions: Mapping[str, Expression] | None = None,
) -> Workflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output."""
    known = dict(BUILTIN_EXPRESSIONS)
    if expressions:
        known.update(expressions)
    relationships = {rel.value: rel for rel in Relationship}
    builder = WorkflowBuilder(schema)
    for entry in data["measures"]:
        name, over = entry["name"], entry["over"]
        if "field" in entry:
            builder.basic(
                name, over=over, field=entry["field"],
                aggregate=get_function(entry["aggregate"]),
            )
            continue
        draft = builder.composite(name, over=over)
        for edge in entry["inputs"]:
            relationship = relationships.get(edge["relationship"])
            if relationship is None:
                raise SerializationError(
                    f"unknown relationship {edge['relationship']!r}"
                )
            source = edge["source"]
            if relationship is Relationship.SELF:
                draft.from_self(source)
            elif relationship is Relationship.ALIGN:
                draft.from_parent(source)
            elif relationship is Relationship.ROLLUP:
                draft.from_children(
                    source, aggregate=get_function(edge["aggregate"])
                )
            else:
                window = edge["window"]
                draft.window(
                    source,
                    attribute=window["attribute"],
                    low=window["low"],
                    high=window["high"],
                    aggregate=get_function(edge["aggregate"]),
                )
        combine = entry.get("combine")
        if combine is not None:
            expression = known.get(combine)
            if expression is None:
                raise SerializationError(
                    f"unknown combine expression {combine!r}; pass it in "
                    "the expressions mapping"
                )
            draft.combine(expression)
    return builder.build()


def workflow_to_json(workflow: Workflow, **kwargs) -> str:
    """:func:`workflow_to_dict`, rendered as indented JSON text."""
    return json.dumps(workflow_to_dict(workflow, **kwargs), indent=2)


def workflow_from_json(
    text: str,
    schema: Schema,
    expressions: Mapping[str, Expression] | None = None,
) -> Workflow:
    """Parse JSON text saved by :func:`workflow_to_json`."""
    return workflow_from_dict(json.loads(text), schema, expressions)


# ---------------------------------------------------------------------------
# Workflow -> query-language script
# ---------------------------------------------------------------------------

def _edge_to_text(edge) -> str:
    if edge.relationship is Relationship.SELF:
        return f"self({edge.source.name})"
    if edge.relationship is Relationship.ALIGN:
        return f"parent({edge.source.name})"
    if edge.relationship is Relationship.ROLLUP:
        return f"{edge.aggregate.name}(children({edge.source.name}))"
    window = edge.window
    return (
        f"{edge.aggregate.name}(window({edge.source.name}, "
        f"{window.attribute}, {window.low}, {window.high}))"
    )


def workflow_to_script(
    workflow: Workflow,
    expressions: Mapping[str, Expression] | None = None,
) -> str:
    """Render *workflow* in the textual query language.

    The output parses back (with the same expressions mapping) to a
    structurally identical workflow.
    """
    known = dict(BUILTIN_EXPRESSIONS)
    if expressions:
        known.update(expressions)
    lines = []
    for measure in workflow.topological_order():
        grain = ", ".join(
            f"{attr}:{level}"
            for attr, level in _grain_to_dict(measure.granularity).items()
        ) or "ALL"
        if measure.is_basic:
            body = f"{measure.aggregate.name}({measure.field})"
        else:
            parts = [_edge_to_text(edge) for edge in measure.inputs]
            combine = _expression_name(measure, known)
            if combine is None:
                body = parts[0]
            else:
                body = f"{combine}({', '.join(parts)})"
        lines.append(f"measure {measure.name} over {grain} = {body}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

def result_to_dict(result: ResultSet) -> dict:
    """A JSON-safe dump of a result set, granularities included."""
    return {
        "measures": {
            name: {
                "granularity": _grain_to_dict(table.granularity),
                "rows": [
                    {"coords": list(coords), "value": value}
                    for coords, value in sorted(table.items())
                ],
            }
            for name, table in result.items()
        }
    }


def result_from_dict(data: Mapping, schema: Schema) -> ResultSet:
    """Rebuild a result set saved by :func:`result_to_dict`."""
    tables = {}
    for name, entry in data["measures"].items():
        granularity = Granularity.of(schema, entry["granularity"])
        tables[name] = MeasureTable(
            granularity,
            {
                tuple(row["coords"]): row["value"]
                for row in entry["rows"]
            },
        )
    return ResultSet(tables)


def write_result_csv(result: ResultSet, stream: IO[str]) -> int:
    """Write ``measure, attr=coord..., value`` rows; returns row count."""
    writer = csv.writer(stream)
    writer.writerow(["measure", "region", "value"])
    count = 0
    for name, table in sorted(result.items()):
        names = table.granularity.schema.attribute_names
        levels = table.granularity.levels
        for coords, value in sorted(table.items()):
            region = ";".join(
                f"{attr}={coord}"
                for attr, coord, level in zip(names, coords, levels)
                if level != "ALL"
            )
            writer.writerow([name, region, value])
            count += 1
    return count
